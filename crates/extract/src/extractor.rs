//! The simulated LLM extractor.
//!
//! DESIGN.md substitution #1: GPT-4o is replaced by a deterministic
//! extractor plus a seeded *error model* calibrated to §4.1's qualitative
//! findings:
//!
//! * structured spec sheets extract at 100% accuracy ("The highly
//!   structured and specific nature of the spec sheets was a crucial
//!   factor");
//! * paper prose: plain requirements are mostly recovered, but
//!   **conditional** requirements ("under what conditions can a system not
//!   be deployed") and **resource quantities** ("how much of a resource is
//!   needed") are frequently missed;
//! * numbers that are recovered are occasionally *wrong* (transcribed with
//!   the wrong magnitude) — feeding §4.2's checking study;
//! * the adversarial prompt ("find requirements without which the
//!   mechanism cannot work") recovers a large share of the conditionals a
//!   naive prompt misses.

use crate::docs::{DocKind, Document, Fact};
use netarch_rt::Rng;

/// Per-fact-class recovery probabilities.
#[derive(Clone, Copy, Debug)]
pub struct ErrorModel {
    /// P(recover a `solves` capability from prose).
    pub solves_recall: f64,
    /// P(recover a plain requirement from prose).
    pub plain_requirement_recall: f64,
    /// P(recover a conditional requirement from prose, naive prompt).
    pub conditional_recall: f64,
    /// P(recover a conditional requirement with the adversarial prompt).
    pub conditional_recall_adversarial: f64,
    /// P(recover a resource quantity from prose).
    pub quantity_recall: f64,
    /// P(a recovered number is transcribed wrong).
    pub number_corruption: f64,
}

impl Default for ErrorModel {
    fn default() -> ErrorModel {
        // Calibrated to the paper's qualitative report (§4.1): hardware
        // ≈ perfect; systems mostly right but nuance-lossy.
        ErrorModel {
            solves_recall: 0.97,
            plain_requirement_recall: 0.90,
            conditional_recall: 0.45,
            conditional_recall_adversarial: 0.80,
            quantity_recall: 0.60,
            number_corruption: 0.12,
        }
    }
}

/// Prompting strategy (§4.1 found the adversarial phrasing "more
/// productive").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prompt {
    /// "Create an encoding capturing all requirements and nuances."
    Naive,
    /// "Find requirements without which the mechanism cannot work."
    Adversarial,
}

/// One extracted fact, possibly corrupted.
#[derive(Clone, Debug, PartialEq)]
pub struct Extracted {
    /// The ground-truth fact this extraction corresponds to.
    pub fact: Fact,
    /// Whether the extracted content is faithful (false = e.g. a number
    /// transcribed at the wrong magnitude).
    pub faithful: bool,
}

/// Extraction output for one document.
#[derive(Clone, Debug, Default)]
pub struct Extraction {
    /// Facts the extractor produced.
    pub extracted: Vec<Extracted>,
    /// Ground-truth facts it silently dropped.
    pub missed: Vec<Fact>,
}

impl Extraction {
    /// Recall over all facts.
    pub fn recall(&self) -> f64 {
        let total = self.extracted.len() + self.missed.len();
        if total == 0 {
            return 1.0;
        }
        self.extracted.len() as f64 / total as f64
    }

    /// Fraction of extracted facts that are faithful.
    pub fn precision(&self) -> f64 {
        if self.extracted.is_empty() {
            return 1.0;
        }
        self.extracted.iter().filter(|e| e.faithful).count() as f64
            / self.extracted.len() as f64
    }

    /// Recall restricted to one fact class.
    pub fn recall_of(&self, class: impl Fn(&Fact) -> bool) -> Option<f64> {
        let hit = self.extracted.iter().filter(|e| class(&e.fact)).count();
        let miss = self.missed.iter().filter(|f| class(f)).count();
        let total = hit + miss;
        (total > 0).then(|| hit as f64 / total as f64)
    }
}

/// The simulated LLM extractor.
pub struct Extractor {
    model: ErrorModel,
    rng: Rng,
}

impl Extractor {
    /// Creates an extractor with the default calibration and a seed.
    pub fn new(seed: u64) -> Extractor {
        Extractor::with_model(ErrorModel::default(), seed)
    }

    /// Creates an extractor with an explicit error model.
    pub fn with_model(model: ErrorModel, seed: u64) -> Extractor {
        Extractor { model, rng: Rng::seed_from_u64(seed) }
    }

    /// Extracts facts from one document under a prompting strategy.
    pub fn extract(&mut self, doc: &Document, prompt: Prompt) -> Extraction {
        let mut out = Extraction::default();
        for sentence in &doc.sentences {
            let (recall_p, corruptible) = match (&doc.kind, &sentence.fact) {
                // Structured sheets: deterministic parse, 100% (§4.1).
                (DocKind::SpecSheet, _) => (1.0, false),
                (DocKind::PaperProse, Fact::Solves(_)) => (self.model.solves_recall, false),
                (DocKind::PaperProse, Fact::PlainRequirement { .. }) => {
                    (self.model.plain_requirement_recall, false)
                }
                (DocKind::PaperProse, Fact::ConditionalRequirement { .. }) => {
                    let p = match prompt {
                        Prompt::Naive => self.model.conditional_recall,
                        Prompt::Adversarial => self.model.conditional_recall_adversarial,
                    };
                    (p, false)
                }
                (DocKind::PaperProse, Fact::ResourceQuantity { .. }) => {
                    (self.model.quantity_recall, true)
                }
                // Numeric hardware facts inside prose (rare): corruptible.
                (DocKind::PaperProse, Fact::HardwareNumeric { .. }) => {
                    (self.model.plain_requirement_recall, true)
                }
                (DocKind::PaperProse, Fact::HardwareFeature { .. }) => {
                    (self.model.plain_requirement_recall, false)
                }
            };
            if self.rng.gen_bool(recall_p) {
                let faithful = !(corruptible && self.rng.gen_bool(self.model.number_corruption));
                out.extracted.push(Extracted { fact: sentence.fact.clone(), faithful });
            } else {
                out.missed.push(sentence.fact.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::{render_paper_prose, render_spec_sheet};
    use netarch_core::prelude::*;

    fn hardware() -> HardwareSpec {
        HardwareSpec::builder("SW", HardwareKind::Switch)
            .numeric("ports", 48.0)
            .numeric("port_bandwidth_gbps", 100.0)
            .feature("ECN")
            .feature("PFC")
            .build()
    }

    fn system() -> SystemSpec {
        SystemSpec::builder("ANNULUS", Category::CongestionControl)
            .name("Annulus")
            .solves("bandwidth_allocation")
            .requires("needs-qcn", Condition::switches_have("QCN"))
            .requires("wan-only", Condition::workload("wan_traffic"))
            .consumes(Resource::Cores, AmountExpr::constant(4))
            .build()
    }

    #[test]
    fn spec_sheets_extract_perfectly() {
        let doc = render_spec_sheet(&hardware());
        let mut ex = Extractor::new(1);
        for _ in 0..20 {
            let result = ex.extract(&doc, Prompt::Naive);
            assert_eq!(result.recall(), 1.0);
            assert_eq!(result.precision(), 1.0);
        }
    }

    #[test]
    fn prose_misses_conditionals_more_than_plain() {
        let doc = render_paper_prose(&system());
        let mut ex = Extractor::new(42);
        let mut cond_hits = 0;
        let mut plain_hits = 0;
        const RUNS: usize = 400;
        for _ in 0..RUNS {
            let result = ex.extract(&doc, Prompt::Naive);
            if let Some(r) = result.recall_of(|f| matches!(f, Fact::ConditionalRequirement { .. })) {
                if r == 1.0 {
                    cond_hits += 1;
                }
            }
            if let Some(r) = result.recall_of(|f| matches!(f, Fact::PlainRequirement { .. })) {
                if r == 1.0 {
                    plain_hits += 1;
                }
            }
        }
        assert!(
            plain_hits > cond_hits + RUNS / 10,
            "plain {plain_hits} vs conditional {cond_hits}"
        );
    }

    #[test]
    fn adversarial_prompt_recovers_more_conditionals() {
        let doc = render_paper_prose(&system());
        let mut naive_hits = 0;
        let mut adv_hits = 0;
        const RUNS: usize = 400;
        let mut ex = Extractor::new(7);
        for _ in 0..RUNS {
            let r = ex.extract(&doc, Prompt::Naive);
            if r.recall_of(|f| matches!(f, Fact::ConditionalRequirement { .. })) == Some(1.0) {
                naive_hits += 1;
            }
        }
        let mut ex = Extractor::new(7);
        for _ in 0..RUNS {
            let r = ex.extract(&doc, Prompt::Adversarial);
            if r.recall_of(|f| matches!(f, Fact::ConditionalRequirement { .. })) == Some(1.0) {
                adv_hits += 1;
            }
        }
        assert!(adv_hits > naive_hits + RUNS / 10, "adv {adv_hits} vs naive {naive_hits}");
    }

    #[test]
    fn quantities_are_sometimes_corrupted() {
        let doc = render_paper_prose(&system());
        let mut ex = Extractor::new(11);
        let mut corrupted = 0;
        for _ in 0..400 {
            let r = ex.extract(&doc, Prompt::Naive);
            corrupted += r.extracted.iter().filter(|e| !e.faithful).count();
        }
        assert!(corrupted > 0, "number corruption never fired");
    }

    #[test]
    fn extraction_is_seed_deterministic() {
        let doc = render_paper_prose(&system());
        let a = Extractor::new(99).extract(&doc, Prompt::Naive);
        let b = Extractor::new(99).extract(&doc, Prompt::Naive);
        assert_eq!(a.extracted, b.extracted);
        assert_eq!(a.missed.len(), b.missed.len());
    }
}
