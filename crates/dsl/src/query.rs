//! Query blocks: the §5.1 query forms as declarative values.

use netarch_core::prelude::*;

/// A lowered `query` block — one engine invocation the document asks for.
#[derive(Clone, PartialEq, Debug)]
pub enum QuerySpec {
    /// `query "check" { }` — feasibility + design or minimal conflict.
    Check,
    /// `query "optimize" { }` — lexicographic optimization.
    Optimize,
    /// `query "capacity" { max = N }` — minimal fleet size up to `max`.
    Capacity {
        /// Upper bound on the fleet-size binary search.
        max: u64,
    },
    /// `query "enumerate" { limit = N }` — design equivalence classes.
    Enumerate {
        /// Maximum number of classes to produce.
        limit: u64,
    },
    /// `query "questions" { budget = N }` — disambiguation plan.
    Questions {
        /// Question-planning budget (default 256).
        budget: u64,
    },
    /// `query "compare" { a = X  b = Y  dimension = D }` — rule-of-thumb
    /// comparison of two systems.
    Compare {
        /// First system.
        a: SystemId,
        /// Second system.
        b: SystemId,
        /// Dimension compared along.
        dimension: Dimension,
    },
}

impl QuerySpec {
    /// The query's block label (`check`, `optimize`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::Check => "check",
            QuerySpec::Optimize => "optimize",
            QuerySpec::Capacity { .. } => "capacity",
            QuerySpec::Enumerate { .. } => "enumerate",
            QuerySpec::Questions { .. } => "questions",
            QuerySpec::Compare { .. } => "compare",
        }
    }
}
