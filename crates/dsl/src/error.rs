//! Span-carrying frontend diagnostics.

use netarch_rt::text::{Span, TextError};
use std::fmt;

/// A frontend error: what went wrong, where, and in which source.
#[derive(Clone, PartialEq, Debug)]
pub struct DslError {
    /// Human-readable description.
    pub message: String,
    /// Source position, when attributable to one.
    pub span: Option<Span>,
    /// Name of the source the error occurred in (file name or synthetic
    /// label), when loading through a [`crate::Loader`].
    pub source: Option<String>,
}

impl DslError {
    /// An error at a span.
    pub fn at(span: Span, message: impl Into<String>) -> DslError {
        DslError { message: message.into(), span: Some(span), source: None }
    }

    /// An error with no source position (e.g. a missing block).
    pub fn plain(message: impl Into<String>) -> DslError {
        DslError { message: message.into(), span: None, source: None }
    }

    /// Attributes the error to a named source.
    pub fn in_source(mut self, name: &str) -> DslError {
        if self.source.is_none() {
            self.source = Some(name.to_string());
        }
        self
    }
}

impl From<TextError> for DslError {
    fn from(err: TextError) -> DslError {
        DslError::at(err.span, err.message)
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(source) = &self.source {
            write!(f, "{source}:")?;
        }
        if let Some(span) = &self.span {
            write!(f, "{}: ", span.start)?;
        } else if self.source.is_some() {
            write!(f, " ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;
    use netarch_rt::text::Pos;

    #[test]
    fn display_includes_source_and_position() {
        let span = Span::at(Pos { line: 3, col: 7 });
        let err = DslError::at(span, "unknown attribute `frob`").in_source("x.narch");
        assert_eq!(err.to_string(), "x.narch:3:7: unknown attribute `frob`");
        let plain = DslError::plain("no scenario block").in_source("y.narch");
        assert_eq!(plain.to_string(), "y.narch: no scenario block");
        let bare = DslError::plain("no scenario block");
        assert_eq!(bare.to_string(), "no scenario block");
    }
}
