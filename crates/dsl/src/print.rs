//! Pretty-printer: core values → canonical `.narch` text.
//!
//! The printer is the inverse of [`crate::lower`]: for any value built
//! through the core builders, `lower(parse(print(x))) == x`. It emits the
//! *canonical* form — defaults omitted, names bare when they lex as
//! identifiers and quoted (or escaped into labelled sub-blocks) otherwise —
//! so printing is also a formatter: `parse → print` is a fixpoint.

use crate::lower::ScenarioDoc;
use crate::query::QuerySpec;
use crate::sweep::{AltRef, ChoiceKind, SweepConstraint, SweepSpec};
use crate::vocab;
use netarch_core::component::{HardwareSpec, SystemSpec};
use netarch_core::prelude::*;
use netarch_rt::text::{is_bare_ident, quote};
use std::fmt::Write as _;

/// Prints a whole document: catalog, workloads, scenario, queries.
pub fn print_doc(doc: &ScenarioDoc) -> String {
    let mut p = Printer::new();
    p.catalog(&doc.catalog);
    for w in &doc.workloads {
        p.workload(w);
    }
    if let Some(scenario) = &doc.scenario {
        p.scenario_block(scenario);
    }
    for q in &doc.queries {
        p.query(q);
    }
    for s in &doc.sweeps {
        p.sweep(s);
    }
    p.out
}

/// Prints a catalog: `system`, `hardware`, and `ordering` blocks.
pub fn print_catalog(catalog: &Catalog) -> String {
    let mut p = Printer::new();
    p.catalog(catalog);
    p.out
}

/// Prints a runnable scenario: its catalog, workloads, and `scenario`
/// block (no queries).
pub fn print_scenario(scenario: &Scenario) -> String {
    let mut p = Printer::new();
    p.catalog(&scenario.catalog);
    for w in &scenario.workloads {
        p.workload(w);
    }
    p.scenario_block(scenario);
    p.out
}

/// Prints `system` blocks only — for splitting a catalog across files.
pub fn print_systems<'a>(specs: impl IntoIterator<Item = &'a SystemSpec>) -> String {
    let mut p = Printer::new();
    for spec in specs {
        p.system(spec);
    }
    p.out
}

/// Prints `hardware` blocks only.
pub fn print_hardware<'a>(specs: impl IntoIterator<Item = &'a HardwareSpec>) -> String {
    let mut p = Printer::new();
    for spec in specs {
        p.hardware(spec);
    }
    p.out
}

/// Prints `ordering` blocks only. A file of bare orderings loads through
/// [`crate::Loader`] alongside the files defining the endpoints.
pub fn print_orderings<'a>(edges: impl IntoIterator<Item = &'a OrderingEdge>) -> String {
    let mut p = Printer::new();
    for edge in edges {
        p.ordering(edge);
    }
    p.out
}

/// Prints a scenario's *inputs* — `workload` blocks and the `scenario`
/// block, without the catalog — for documents that merge with separately
/// maintained catalog files.
pub fn print_scenario_inputs(scenario: &Scenario) -> String {
    let mut p = Printer::new();
    for w in &scenario.workloads {
        p.workload(w);
    }
    p.scenario_block(scenario);
    p.out
}

/// Prints `query` blocks only.
pub fn print_queries<'a>(queries: impl IntoIterator<Item = &'a QuerySpec>) -> String {
    let mut p = Printer::new();
    for q in queries {
        p.query(q);
    }
    p.out
}

/// Prints `sweep` blocks only.
pub fn print_sweeps<'a>(sweeps: impl IntoIterator<Item = &'a SweepSpec>) -> String {
    let mut p = Printer::new();
    for s in sweeps {
        p.sweep(s);
    }
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Printer {
        Printer { out: String::new(), indent: 0 }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, header: &str) {
        // Blank line between top-level blocks.
        if self.indent == 0 && !self.out.is_empty() {
            self.out.push('\n');
        }
        self.line(&format!("{header} {{"));
        self.indent += 1;
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    fn attr(&mut self, key: &str, value: &str) {
        self.line(&format!("{key} = {value}"));
    }

    fn catalog(&mut self, catalog: &Catalog) {
        for spec in catalog.systems() {
            self.system(spec);
        }
        for spec in catalog.hardware_specs() {
            self.hardware(spec);
        }
        for edge in catalog.order().edges() {
            self.ordering(edge);
        }
    }

    fn system(&mut self, spec: &SystemSpec) {
        self.open(&format!("system {}", quote(spec.id.as_str())));
        if spec.name != spec.id.as_str() {
            self.attr("name", &quote(&spec.name));
        }
        self.attr("category", &category_text(&spec.category));
        if !spec.solves.is_empty() {
            let names = name_list(spec.solves.iter().map(|c| c.as_str()));
            self.attr("solves", &names);
        }
        for req in &spec.requires {
            self.open(&format!("requires {}", quote(&req.label)));
            self.attr("condition", &condition_text(&req.condition));
            if let Some(citation) = &req.citation {
                self.attr("citation", &quote(citation));
            }
            self.close();
        }
        if !spec.conflicts.is_empty() {
            let names = name_list(spec.conflicts.iter().map(|s| s.as_str()));
            self.attr("conflicts", &names);
        }
        if !spec.resources.is_empty() {
            self.open("consumes");
            for demand in &spec.resources {
                match resource_ident(&demand.resource) {
                    Some(ident) => self.attr(ident, &amount_text(&demand.amount)),
                    None => {
                        let Resource::Custom(name) = &demand.resource else {
                            unreachable!("built-in resources always have idents");
                        };
                        self.open(&format!("demand {}", quote(name)));
                        self.attr("amount", &amount_text(&demand.amount));
                        self.close();
                    }
                }
            }
            self.close();
        }
        if !spec.provides.is_empty() {
            let names = name_list(spec.provides.iter().map(|f| f.as_str()));
            self.attr("provides", &names);
        }
        if spec.cost_usd != 0 {
            self.attr("cost_usd", &spec.cost_usd.to_string());
        }
        if let Some(notes) = &spec.notes {
            self.attr("notes", &quote(notes));
        }
        self.close();
    }

    fn hardware(&mut self, spec: &HardwareSpec) {
        self.open(&format!("hardware {}", quote(spec.id.as_str())));
        self.attr("kind", vocab::hardware_kind_name(spec.kind));
        if spec.model_name != spec.id.as_str() {
            self.attr("model", &quote(&spec.model_name));
        }
        if !spec.features.is_empty() {
            let names = name_list(spec.features.iter().map(|f| f.as_str()));
            self.attr("features", &names);
        }
        if spec.cost_usd != 0 {
            self.attr("cost_usd", &spec.cost_usd.to_string());
        }
        if !spec.numeric.is_empty() {
            self.open("attrs");
            for (key, value) in &spec.numeric {
                if is_bare_ident(key) {
                    self.attr(key, &number_text(*value));
                } else {
                    self.open(&format!("attr {}", quote(key)));
                    self.attr("value", &number_text(*value));
                    self.close();
                }
            }
            self.close();
        }
        self.close();
    }

    fn ordering(&mut self, edge: &OrderingEdge) {
        self.open("ordering");
        self.attr("better", &name_text(edge.better.as_str()));
        self.attr("worse", &name_text(edge.worse.as_str()));
        self.attr("dimension", &dimension_text(&edge.dimension));
        if edge.kind != EdgeKind::Strict {
            self.attr("kind", vocab::edge_kind_name(edge.kind));
        }
        if edge.condition != Condition::True {
            self.attr("when", &condition_text(&edge.condition));
        }
        if let Some(citation) = &edge.citation {
            self.attr("citation", &quote(citation));
        }
        self.close();
    }

    fn workload(&mut self, w: &Workload) {
        self.open(&format!("workload {}", quote(w.id.as_str())));
        if w.name != w.id.as_str() {
            self.attr("name", &quote(&w.name));
        }
        if !w.properties.is_empty() {
            let names = name_list(w.properties.iter().map(|p| p.as_str()));
            self.attr("properties", &names);
        }
        if w.racks != (0..0) {
            self.attr("racks", &format!("{}..{}", w.racks.start, w.racks.end));
        }
        if w.peak_cores != 0 {
            self.attr("peak_cores", &w.peak_cores.to_string());
        }
        if w.peak_bandwidth_gbps != 0 {
            self.attr("peak_bandwidth_gbps", &w.peak_bandwidth_gbps.to_string());
        }
        if w.num_flows != 0 {
            self.attr("num_flows", &w.num_flows.to_string());
        }
        if !w.needs.is_empty() {
            let names = name_list(w.needs.iter().map(|c| c.as_str()));
            self.attr("needs", &names);
        }
        for bound in &w.bounds {
            self.open("bound");
            self.attr("dimension", &dimension_text(&bound.dimension));
            self.attr("better_than", &name_text(bound.better_than.as_str()));
            self.close();
        }
        self.close();
    }

    fn scenario_block(&mut self, s: &Scenario) {
        self.open("scenario");
        if !s.params.is_empty() {
            self.open("params");
            for (name, value) in &s.params {
                if is_bare_ident(name.as_str()) {
                    self.attr(name.as_str(), &number_text(*value));
                } else {
                    self.open(&format!("param {}", quote(name.as_str())));
                    self.attr("value", &number_text(*value));
                    self.close();
                }
            }
            self.close();
        }
        if s.inventory != Inventory::default() {
            self.open("inventory");
            let inv = &s.inventory;
            if !inv.server_candidates.is_empty() {
                self.attr("servers", &name_list(inv.server_candidates.iter().map(|h| h.as_str())));
            }
            if !inv.nic_candidates.is_empty() {
                self.attr("nics", &name_list(inv.nic_candidates.iter().map(|h| h.as_str())));
            }
            if !inv.switch_candidates.is_empty() {
                self.attr(
                    "switches",
                    &name_list(inv.switch_candidates.iter().map(|h| h.as_str())),
                );
            }
            if inv.num_servers != 0 {
                self.attr("num_servers", &inv.num_servers.to_string());
            }
            if inv.num_switches != 0 {
                self.attr("num_switches", &inv.num_switches.to_string());
            }
            self.close();
        }
        if !s.roles.is_empty() {
            self.open("roles");
            for (category, rule) in &s.roles {
                match vocab::category_name(category) {
                    Some(name) => self.attr(name, vocab::role_rule_name(*rule)),
                    None => {
                        self.open("role");
                        self.attr("category", &category_text(category));
                        self.attr("rule", vocab::role_rule_name(*rule));
                        self.close();
                    }
                }
            }
            self.close();
        }
        if !s.objectives.is_empty() {
            let entries: Vec<String> = s.objectives.iter().map(objective_text).collect();
            self.attr("objectives", &format!("[{}]", entries.join(", ")));
        }
        if !s.pins.is_empty() {
            let entries: Vec<String> = s.pins.iter().map(pin_text).collect();
            self.attr("pins", &format!("[{}]", entries.join(", ")));
        }
        if let Some(budget) = s.budget_usd {
            self.attr("budget_usd", &budget.to_string());
        }
        self.close();
    }

    fn query(&mut self, q: &QuerySpec) {
        self.open(&format!("query {}", quote(q.kind())));
        match q {
            QuerySpec::Check | QuerySpec::Optimize => {}
            QuerySpec::Capacity { max } => self.attr("max", &max.to_string()),
            QuerySpec::Enumerate { limit } => self.attr("limit", &limit.to_string()),
            QuerySpec::Questions { budget } => self.attr("budget", &budget.to_string()),
            QuerySpec::Compare { a, b, dimension } => {
                self.attr("a", &name_text(a.as_str()));
                self.attr("b", &name_text(b.as_str()));
                self.attr("dimension", &dimension_text(dimension));
            }
        }
        self.close();
    }

    fn sweep(&mut self, s: &SweepSpec) {
        self.open(&format!("sweep {}", quote(&s.name)));
        if s.seed != 0 {
            self.attr("seed", &s.seed.to_string());
        }
        if s.limit != 256 {
            self.attr("limit", &s.limit.to_string());
        }
        for group in &s.groups {
            self.open(&format!("choose {}", quote(&group.name)));
            match &group.kind {
                ChoiceKind::Systems { candidates, optional } => {
                    self.attr("systems", &name_list(candidates.iter().map(|s| s.as_str())));
                    if *optional {
                        self.attr("optional", "true");
                    }
                }
                ChoiceKind::Nics(ids) => {
                    self.attr("nics", &name_list(ids.iter().map(|h| h.as_str())));
                }
                ChoiceKind::Servers(ids) => {
                    self.attr("servers", &name_list(ids.iter().map(|h| h.as_str())));
                }
                ChoiceKind::Switches(ids) => {
                    self.attr("switches", &name_list(ids.iter().map(|h| h.as_str())));
                }
                ChoiceKind::NumServers(counts) => {
                    let parts: Vec<String> = counts.iter().map(u64::to_string).collect();
                    self.attr("num_servers", &format!("[{}]", parts.join(", ")));
                }
                ChoiceKind::Param { name, values } => {
                    self.attr("param", &param_ref_text(name));
                    let parts: Vec<String> = values.iter().map(|v| number_text(*v)).collect();
                    self.attr("values", &format!("[{}]", parts.join(", ")));
                }
            }
            self.close();
        }
        if !s.require.is_empty() {
            let entries: Vec<String> = s.require.iter().map(sweep_constraint_text).collect();
            self.attr("require", &format!("[{}]", entries.join(", ")));
        }
        if !s.forbid.is_empty() {
            let entries: Vec<String> = s.forbid.iter().map(sweep_constraint_text).collect();
            self.attr("forbid", &format!("[{}]", entries.join(", ")));
        }
        self.close();
    }
}

fn alt_ref_text(alt: &AltRef) -> String {
    match alt {
        AltRef::Name(n) => name_text(n),
        AltRef::Number(v) => number_text(*v),
    }
}

fn sweep_constraint_text(constraint: &SweepConstraint) -> String {
    match constraint {
        SweepConstraint::Picked { group, alternative } => {
            format!("picked({}, {})", name_text(group), alt_ref_text(alternative))
        }
        SweepConstraint::Not(inner) => format!("not({})", sweep_constraint_text(inner)),
        SweepConstraint::All(parts) => {
            let inner: Vec<String> = parts.iter().map(sweep_constraint_text).collect();
            format!("all({})", inner.join(", "))
        }
        SweepConstraint::Any(parts) => {
            let inner: Vec<String> = parts.iter().map(sweep_constraint_text).collect();
            format!("any({})", inner.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Value printers
// ---------------------------------------------------------------------------

/// A name in expression position: bare when it lexes as one identifier.
fn name_text(name: &str) -> String {
    if is_bare_ident(name) {
        name.to_string()
    } else {
        quote(name)
    }
}

fn name_list<'a>(names: impl Iterator<Item = &'a str>) -> String {
    let parts: Vec<String> = names.map(name_text).collect();
    format!("[{}]", parts.join(", "))
}

/// A number that re-lexes as the same `f64`: integral values in `i64`
/// range print bare; anything whose `Display` form would lex as an
/// out-of-range integer gets a `.0` suffix to force the float path.
pub(crate) fn number_text(value: f64) -> String {
    let text = format!("{value}");
    if text.contains('.') || text.parse::<i64>().is_ok() {
        text
    } else {
        format!("{text}.0")
    }
}

pub(crate) fn category_text(category: &Category) -> String {
    match vocab::category_name(category) {
        Some(name) => name.to_string(),
        None => {
            let Category::Custom(name) = category else {
                unreachable!("built-in categories always have names");
            };
            format!("custom({})", quote(name))
        }
    }
}

pub(crate) fn dimension_text(dimension: &Dimension) -> String {
    match vocab::dimension_name(dimension) {
        Some(name) => name.to_string(),
        None => {
            let Dimension::Custom(name) = dimension else {
                unreachable!("built-in dimensions always have names");
            };
            format!("custom({})", quote(name))
        }
    }
}

/// The bare-ident spelling of a resource, when one lowers back to it:
/// built-ins always do; a custom resource only when its name is an
/// identifier that does not shadow a built-in.
fn resource_ident(resource: &Resource) -> Option<&str> {
    if let Some(name) = vocab::resource_name(resource) {
        return Some(name);
    }
    let Resource::Custom(name) = resource else {
        unreachable!("built-in resources always have names");
    };
    if is_bare_ident(name) && vocab::resource_from_ident(name) == *resource {
        Some(name)
    } else {
        None
    }
}

fn param_ref_text(name: &ParamName) -> String {
    if is_bare_ident(name.as_str()) {
        name.as_str().to_string()
    } else {
        format!("param({})", quote(name.as_str()))
    }
}

fn objective_text(objective: &Objective) -> String {
    match objective {
        Objective::MaximizeDimension(d) => format!("maximize({})", dimension_text(d)),
        Objective::MinimizeCost => "minimize_cost".to_string(),
        Objective::PreferCapability(c) => format!("prefer({})", name_text(c.as_str())),
    }
}

fn pin_text(pin: &Pin) -> String {
    match pin {
        Pin::Require(id) => format!("require({})", name_text(id.as_str())),
        Pin::Forbid(id) => format!("forbid({})", name_text(id.as_str())),
    }
}

pub(crate) fn condition_text(condition: &Condition) -> String {
    match condition {
        Condition::True => "true".to_string(),
        Condition::False => "false".to_string(),
        Condition::SystemSelected(id) => format!("deployed({})", name_text(id.as_str())),
        Condition::CategoryFilled(c) => format!("filled({})", category_text(c)),
        Condition::NicFeature(f) => format!("nics.have({})", name_text(f.as_str())),
        Condition::SwitchFeature(f) => format!("switches.have({})", name_text(f.as_str())),
        Condition::ServerFeature(f) => format!("servers.have({})", name_text(f.as_str())),
        Condition::ProvidedFeature(f) => format!("provided({})", name_text(f.as_str())),
        Condition::WorkloadProperty(p) => format!("workload.has({})", name_text(p.as_str())),
        Condition::Param(name, op, value) => format!(
            "{} {} {}",
            param_ref_text(name),
            vocab::cmp_op_text(*op),
            number_text(*value)
        ),
        Condition::Not(inner) => format!("not({})", condition_text(inner)),
        Condition::All(parts) => {
            let inner: Vec<String> = parts.iter().map(condition_text).collect();
            format!("all({})", inner.join(", "))
        }
        Condition::Any(parts) => {
            let inner: Vec<String> = parts.iter().map(condition_text).collect();
            format!("any({})", inner.join(", "))
        }
    }
}

pub(crate) fn amount_text(amount: &AmountExpr) -> String {
    match amount {
        AmountExpr::Const(n) => n.to_string(),
        AmountExpr::ParamScaled { param, factor } => {
            format!("{} * {}", number_text(*factor), param_ref_text(param))
        }
        AmountExpr::Sum(parts) => {
            let mut text = String::new();
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    text.push_str(" + ");
                }
                let _ = write!(text, "{}", amount_text(part));
            }
            text
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_text_relexes() {
        assert_eq!(number_text(100.0), "100");
        assert_eq!(number_text(0.001), "0.001");
        assert_eq!(number_text(-1.5), "-1.5");
        // Too big for i64 — forced onto the float path.
        assert_eq!(number_text(1e19), "10000000000000000000.0");
    }

    #[test]
    fn names_quote_only_when_needed() {
        assert_eq!(name_text("NIC_TIMESTAMPS"), "NIC_TIMESTAMPS");
        assert_eq!(name_text("Cisco 9500"), "\"Cisco 9500\"");
    }

    #[test]
    fn custom_resource_shadowing_builtin_loses_its_ident() {
        assert_eq!(resource_ident(&Resource::Cores), Some("cores"));
        assert_eq!(resource_ident(&Resource::Custom("fpga_luts".into())), Some("fpga_luts"));
        assert_eq!(resource_ident(&Resource::Custom("cores".into())), None);
        assert_eq!(resource_ident(&Resource::Custom("fpga-luts".into())), None);
    }

    #[test]
    fn condition_text_nested() {
        let c = Condition::any([
            Condition::nics_have("NIC_TIMESTAMPS"),
            Condition::all([
                Condition::system("SONATA"),
                Condition::Param(ParamName::new("link_speed_gbps"), CmpOp::Ge, 40.0),
            ]),
        ]);
        assert_eq!(
            condition_text(&c),
            "any(nics.have(NIC_TIMESTAMPS), all(deployed(SONATA), link_speed_gbps >= 40))"
        );
    }
}
