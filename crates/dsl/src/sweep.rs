//! Sweep blocks: a combinatorial scenario universe as declarative values.
//!
//! A `sweep "name" { … }` block describes a small constraint program over
//! *choice atoms*: each `choose` group contributes exactly one alternative
//! (systems to pin, hardware candidate lists, fleet sizes, numeric
//! parameter values), and `require` / `forbid` prune combinations. The
//! sweep crate compiles this to CNF and enumerates every admissible
//! assignment through the projected-model enumerator, so the lowered form
//! here stays purely syntactic — names are resolved against the document's
//! catalog only when the sweep is compiled.

use netarch_core::prelude::*;

/// A lowered `sweep` block — one scenario universe the document defines.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepSpec {
    /// The sweep's label.
    pub name: String,
    /// Seed for the deterministic stream shuffle (default 0).
    pub seed: u64,
    /// Cap on enumerated variants (default 256).
    pub limit: u64,
    /// Choice groups, in document order.
    pub groups: Vec<ChoiceGroup>,
    /// Constraints every variant must satisfy.
    pub require: Vec<SweepConstraint>,
    /// Constraints no variant may satisfy.
    pub forbid: Vec<SweepConstraint>,
}

/// One `choose "name" { … }` group: exactly one alternative is picked.
#[derive(Clone, PartialEq, Debug)]
pub struct ChoiceGroup {
    /// The group's label, referenced by `picked(group, alt)` constraints.
    pub name: String,
    /// What the group varies.
    pub kind: ChoiceKind,
}

/// The axis a choice group sweeps over.
#[derive(Clone, PartialEq, Debug)]
pub enum ChoiceKind {
    /// Pick one system to pin in (the rest are pinned out). With
    /// `optional = true` an implicit extra `none` alternative pins every
    /// candidate out instead.
    Systems {
        /// Candidate systems.
        candidates: Vec<SystemId>,
        /// Whether the implicit `none` alternative exists.
        optional: bool,
    },
    /// Pick the NIC candidate list down to one model.
    Nics(Vec<HardwareId>),
    /// Pick the server candidate list down to one SKU.
    Servers(Vec<HardwareId>),
    /// Pick the switch candidate list down to one model.
    Switches(Vec<HardwareId>),
    /// Pick the fleet size.
    NumServers(Vec<u64>),
    /// Pick a numeric parameter's value.
    Param {
        /// The parameter set.
        name: ParamName,
        /// Values swept over.
        values: Vec<f64>,
    },
}

impl ChoiceGroup {
    /// Alternative labels in pick-index order, matching the CNF variable
    /// layout the sweep compiler uses. For an optional systems group the
    /// final label is `none`.
    pub fn alternative_labels(&self) -> Vec<String> {
        match &self.kind {
            ChoiceKind::Systems { candidates, optional } => {
                let mut labels: Vec<String> =
                    candidates.iter().map(|s| s.as_str().to_string()).collect();
                if *optional {
                    labels.push("none".to_string());
                }
                labels
            }
            ChoiceKind::Nics(ids) | ChoiceKind::Servers(ids) | ChoiceKind::Switches(ids) => {
                ids.iter().map(|h| h.as_str().to_string()).collect()
            }
            ChoiceKind::NumServers(counts) => counts.iter().map(u64::to_string).collect(),
            ChoiceKind::Param { values, .. } => {
                values.iter().map(|v| crate::print::number_text(*v)).collect()
            }
        }
    }

    /// Resolves an alternative reference to its pick index, or `None`
    /// when the reference names nothing in this group.
    pub fn resolve(&self, alt: &AltRef) -> Option<usize> {
        match (&self.kind, alt) {
            (ChoiceKind::Systems { candidates, optional }, AltRef::Name(n)) => candidates
                .iter()
                .position(|s| s.as_str() == n)
                .or((*optional && n == "none").then_some(candidates.len())),
            (
                ChoiceKind::Nics(ids) | ChoiceKind::Servers(ids) | ChoiceKind::Switches(ids),
                AltRef::Name(n),
            ) => ids.iter().position(|h| h.as_str() == n),
            (ChoiceKind::NumServers(counts), AltRef::Number(v)) => {
                counts.iter().position(|c| *c as f64 == *v)
            }
            (ChoiceKind::Param { values, .. }, AltRef::Number(v)) => {
                values.iter().position(|x| x == v)
            }
            _ => None,
        }
    }

    /// Number of alternatives (including the implicit `none`).
    pub fn arity(&self) -> usize {
        match &self.kind {
            ChoiceKind::Systems { candidates, optional } => {
                candidates.len() + usize::from(*optional)
            }
            ChoiceKind::Nics(ids) | ChoiceKind::Servers(ids) | ChoiceKind::Switches(ids) => {
                ids.len()
            }
            ChoiceKind::NumServers(counts) => counts.len(),
            ChoiceKind::Param { values, .. } => values.len(),
        }
    }
}

/// How a constraint names one alternative of a group.
#[derive(Clone, PartialEq, Debug)]
pub enum AltRef {
    /// By name (`SONATA`, `NIC_A`, `none`).
    Name(String),
    /// By numeric value (`100`, `4`).
    Number(f64),
}

/// A boolean combination over `picked(group, alt)` atoms.
#[derive(Clone, PartialEq, Debug)]
pub enum SweepConstraint {
    /// True when `group` picked `alternative`.
    Picked {
        /// The choice group's label.
        group: String,
        /// The alternative within it.
        alternative: AltRef,
    },
    /// Negation.
    Not(Box<SweepConstraint>),
    /// Conjunction.
    All(Vec<SweepConstraint>),
    /// Disjunction.
    Any(Vec<SweepConstraint>),
}

impl SweepSpec {
    /// Upper bound on the unconstrained universe size (product of group
    /// arities), saturating at `u64::MAX`.
    pub fn universe_bound(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.arity() as u64)
            .try_fold(1u64, |acc, n| acc.checked_mul(n.max(1)))
            .unwrap_or(u64::MAX)
    }
}
