//! # netarch-dsl
//!
//! The declarative `.narch` scenario frontend: the paper's whole interface
//! is text the architect writes (Listings 1–3 describe systems, hardware,
//! workloads, conditional orderings, and queries as blocks), and this
//! crate is that surface syntax for the `netarch` engine.
//!
//! A `.narch` document is a sequence of HCL-ish blocks:
//!
//! ```text
//! system "SIMON" {
//!   category = monitoring
//!   solves   = [capture_delays, detect_queue_length]
//!   requires "simon-needs-nic-timestamps" {
//!     condition = nics.have(NIC_TIMESTAMPS)
//!     citation  = "Geng et al., NSDI 2019"
//!   }
//!   consumes { cores = 0.001 * num_flows }
//! }
//!
//! hardware "CISCO_CATALYST_9500_40X" {
//!   kind     = switch
//!   model    = "Cisco Catalyst 9500-40X"
//!   features = [ECN]
//!   cost_usd = 24000
//!   attrs { port_bandwidth_gbps = 10  ports = 40 }
//! }
//!
//! ordering {
//!   better    = NETCHANNEL
//!   worse     = LINUX
//!   dimension = throughput
//!   when      = link_speed_gbps >= 40
//! }
//!
//! workload "inference_app" {
//!   properties = [dc_flows, short_flows, high_priority]
//!   racks      = 0..3
//!   peak_cores = 2800
//!   needs      = [load_balancing]
//!   bound { dimension = load_balancing_quality  better_than = PACKET_SPRAY }
//! }
//!
//! scenario {
//!   params     { link_speed_gbps = 100 }
//!   roles      { monitoring = required }
//!   objectives = [maximize(latency), minimize_cost]
//! }
//!
//! query "check" { }
//! ```
//!
//! The *syntax* layer (lexer, spans, generic block parser) lives in
//! [`netarch_rt::text`]; this crate assigns meaning: [`lower`] turns
//! blocks into [`netarch_core`] `Catalog` / `Scenario` / [`QuerySpec`]
//! values with span-carrying diagnostics, and [`print`] pretty-prints
//! those values back to canonical `.narch` text. The two are inverse:
//! `lower(parse(print(x))) == x`, which the corpus conformance suite and
//! the crate's property tests enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod lower;
pub mod print;
pub mod query;
pub mod sweep;
mod vocab;

pub use error::DslError;
pub use lower::{load_str, Loader, ScenarioDoc};
pub use print::{
    print_catalog, print_doc, print_hardware, print_orderings, print_queries, print_scenario,
    print_scenario_inputs, print_sweeps, print_systems,
};
pub use query::QuerySpec;
pub use sweep::{AltRef, ChoiceGroup, ChoiceKind, SweepConstraint, SweepSpec};
