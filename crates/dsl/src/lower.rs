//! Lowering: generic [`netarch_rt::text`] blocks → typed core values.
//!
//! Every rejection carries the span of the offending token, so a CLI can
//! render `file.narch:12:9: unknown category \`monitring\``-style
//! diagnostics. Lowering is *strict*: unknown block keywords, unknown
//! attributes, duplicate attributes, and missing required attributes are
//! all errors — a typo in a scenario must never silently change its
//! meaning.

use crate::error::DslError;
use crate::query::QuerySpec;
use crate::sweep::{AltRef, ChoiceGroup, ChoiceKind, SweepConstraint, SweepSpec};
use crate::vocab;
use netarch_core::component::{HardwareSpec, Requirement, ResourceDemand, SystemSpec};
use netarch_core::prelude::*;
use netarch_rt::text::{self, Attr, Block, Document, Expr, Span, Spanned};
use std::collections::BTreeMap;

/// A lowered `.narch` document (possibly merged from several sources).
#[derive(Clone, Debug)]
pub struct ScenarioDoc {
    /// The catalog assembled from `system` / `hardware` / `ordering`
    /// blocks.
    pub catalog: Catalog,
    /// Workloads in document order.
    pub workloads: Vec<Workload>,
    /// The complete scenario, when a `scenario` block is present. Its
    /// `catalog` and `workloads` fields duplicate the ones above.
    pub scenario: Option<Scenario>,
    /// Queries in document order.
    pub queries: Vec<QuerySpec>,
    /// Sweeps in document order.
    pub sweeps: Vec<SweepSpec>,
}

impl ScenarioDoc {
    /// The scenario, or an error naming what a runnable document needs.
    pub fn require_scenario(&self) -> Result<&Scenario, DslError> {
        self.scenario.as_ref().ok_or_else(|| {
            DslError::plain(
                "document has no `scenario` block; add one (even empty: `scenario { }`) \
                 to make it runnable",
            )
        })
    }
}

/// Multi-source loader: parse each `.narch` source, then [`Loader::finish`]
/// merges them into one [`ScenarioDoc`]. Systems from all sources are
/// registered before orderings, so a file of ordering edges may precede
/// the files defining its endpoints.
#[derive(Default)]
pub struct Loader {
    sources: Vec<(String, Document)>,
}

impl Loader {
    /// An empty loader.
    pub fn new() -> Loader {
        Loader::default()
    }

    /// Parses one source; `name` labels its diagnostics.
    pub fn add_source(&mut self, name: &str, content: &str) -> Result<(), DslError> {
        let doc = text::parse(content).map_err(|e| DslError::from(e).in_source(name))?;
        self.sources.push((name.to_string(), doc));
        Ok(())
    }

    /// Merges every source into one document.
    pub fn finish(self) -> Result<ScenarioDoc, DslError> {
        // Partition blocks by keyword, preserving source order per kind.
        let mut systems: Vec<(&str, &Block)> = Vec::new();
        let mut hardware: Vec<(&str, &Block)> = Vec::new();
        let mut orderings: Vec<(&str, &Block)> = Vec::new();
        let mut workload_blocks: Vec<(&str, &Block)> = Vec::new();
        let mut scenario_blocks: Vec<(&str, &Block)> = Vec::new();
        let mut query_blocks: Vec<(&str, &Block)> = Vec::new();
        let mut sweep_blocks: Vec<(&str, &Block)> = Vec::new();
        for (name, doc) in &self.sources {
            for block in &doc.blocks {
                let bucket = match block.keyword.value.as_str() {
                    "system" => &mut systems,
                    "hardware" => &mut hardware,
                    "ordering" => &mut orderings,
                    "workload" => &mut workload_blocks,
                    "scenario" => &mut scenario_blocks,
                    "query" => &mut query_blocks,
                    "sweep" => &mut sweep_blocks,
                    other => {
                        return Err(DslError::at(
                            block.keyword.span,
                            format!(
                                "unknown block `{other}` (expected system, hardware, \
                                 ordering, workload, scenario, query, or sweep)"
                            ),
                        )
                        .in_source(name))
                    }
                };
                bucket.push((name.as_str(), block));
            }
        }

        let mut catalog = Catalog::new();
        for (src, block) in &systems {
            let spec = lower_system(block).map_err(|e| e.in_source(src))?;
            catalog.add_system(spec).map_err(|e| {
                DslError::at(block.keyword.span, e.to_string()).in_source(src)
            })?;
        }
        for (src, block) in &hardware {
            let spec = lower_hardware(block).map_err(|e| e.in_source(src))?;
            catalog.add_hardware(spec).map_err(|e| {
                DslError::at(block.keyword.span, e.to_string()).in_source(src)
            })?;
        }
        for (src, block) in &orderings {
            let edge = lower_ordering(block).map_err(|e| e.in_source(src))?;
            catalog.add_ordering(edge).map_err(|e| {
                DslError::at(block.keyword.span, e.to_string()).in_source(src)
            })?;
        }

        let mut workloads = Vec::new();
        for (src, block) in &workload_blocks {
            workloads.push(lower_workload(block).map_err(|e| e.in_source(src))?);
        }

        let scenario = match scenario_blocks.as_slice() {
            [] => None,
            [(src, block)] => Some(
                lower_scenario(block, catalog.clone(), workloads.clone())
                    .map_err(|e| e.in_source(src))?,
            ),
            [_, (src, second), ..] => {
                return Err(DslError::at(
                    second.keyword.span,
                    "more than one `scenario` block across the loaded sources",
                )
                .in_source(src))
            }
        };

        let mut queries = Vec::new();
        for (src, block) in &query_blocks {
            queries.push(lower_query(block).map_err(|e| e.in_source(src))?);
        }

        let mut sweeps: Vec<SweepSpec> = Vec::new();
        for (src, block) in &sweep_blocks {
            let sweep = lower_sweep(block).map_err(|e| e.in_source(src))?;
            if sweeps.iter().any(|s| s.name == sweep.name) {
                return Err(DslError::at(
                    block.keyword.span,
                    format!("duplicate sweep `{}` across the loaded sources", sweep.name),
                )
                .in_source(src));
            }
            sweeps.push(sweep);
        }

        Ok(ScenarioDoc { catalog, workloads, scenario, queries, sweeps })
    }
}

/// Parses and lowers a single self-contained source.
pub fn load_str(content: &str) -> Result<ScenarioDoc, DslError> {
    let mut loader = Loader::new();
    loader.add_source("<input>", content)?;
    loader.finish()
}

// ---------------------------------------------------------------------------
// Shared expression readers
// ---------------------------------------------------------------------------

fn path_text(path: &[String]) -> String {
    path.join(".")
}

/// A name in id position: bare identifier or quoted string.
fn name_of(e: &Spanned<Expr>, what: &str) -> Result<String, DslError> {
    match &e.value {
        Expr::Str(s) => Ok(s.clone()),
        Expr::Path(p) if p.len() == 1 => Ok(p[0].clone()),
        other => Err(DslError::at(
            e.span,
            format!("expected {what} (identifier or string), found {}", describe(other)),
        )),
    }
}

fn str_of(e: &Spanned<Expr>, what: &str) -> Result<String, DslError> {
    match &e.value {
        Expr::Str(s) => Ok(s.clone()),
        other => Err(DslError::at(
            e.span,
            format!("expected {what} (quoted string), found {}", describe(other)),
        )),
    }
}

fn u64_of(e: &Spanned<Expr>, what: &str) -> Result<u64, DslError> {
    match &e.value {
        Expr::Int(v) if *v >= 0 => Ok(*v as u64),
        other => Err(DslError::at(
            e.span,
            format!("expected {what} (non-negative integer), found {}", describe(other)),
        )),
    }
}

fn f64_of(e: &Spanned<Expr>, what: &str) -> Result<f64, DslError> {
    match &e.value {
        Expr::Int(v) => Ok(*v as f64),
        Expr::Float(v) => Ok(*v),
        other => Err(DslError::at(
            e.span,
            format!("expected {what} (number), found {}", describe(other)),
        )),
    }
}

fn list_of<'a>(e: &'a Spanned<Expr>, what: &str) -> Result<&'a [Spanned<Expr>], DslError> {
    match &e.value {
        Expr::List(items) => Ok(items),
        other => Err(DslError::at(
            e.span,
            format!("expected {what} (a `[...]` list), found {}", describe(other)),
        )),
    }
}

fn describe(e: &Expr) -> String {
    match e {
        Expr::Str(s) => format!("string {:?}", s),
        Expr::Int(v) => format!("integer `{v}`"),
        Expr::Float(v) => format!("number `{v}`"),
        Expr::Bool(b) => format!("`{b}`"),
        Expr::Path(p) => format!("`{}`", path_text(p)),
        Expr::Call { path, .. } => format!("call `{}(...)`", path_text(path)),
        Expr::List(_) => "a list".to_string(),
        Expr::Range(lo, hi) => format!("range `{lo}..{hi}`"),
        Expr::Binary { op, .. } => format!("`{op}` expression"),
    }
}

fn lower_category(e: &Spanned<Expr>) -> Result<Category, DslError> {
    match &e.value {
        Expr::Path(p) if p.len() == 1 => vocab::category_from_name(&p[0]).ok_or_else(|| {
            DslError::at(
                e.span,
                format!(
                    "unknown category `{}` (one of {}; or custom(\"name\"))",
                    p[0],
                    vocab::CATEGORY_NAMES
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
        }),
        Expr::Call { path, args } if path_text(path) == "custom" && args.len() == 1 => {
            Ok(Category::Custom(str_of(&args[0], "a custom category name")?))
        }
        other => Err(DslError::at(
            e.span,
            format!("expected a category, found {}", describe(other)),
        )),
    }
}

fn lower_dimension(e: &Spanned<Expr>) -> Result<Dimension, DslError> {
    match &e.value {
        Expr::Path(p) if p.len() == 1 => vocab::dimension_from_name(&p[0]).ok_or_else(|| {
            DslError::at(
                e.span,
                format!(
                    "unknown dimension `{}` (one of {}; or custom(\"name\"))",
                    p[0],
                    vocab::DIMENSION_NAMES
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
        }),
        Expr::Call { path, args } if path_text(path) == "custom" && args.len() == 1 => {
            Ok(Dimension::Custom(str_of(&args[0], "a custom dimension name")?))
        }
        other => Err(DslError::at(
            e.span,
            format!("expected a dimension, found {}", describe(other)),
        )),
    }
}

/// A parameter reference: bare identifier, or `param("odd name")`.
fn lower_param_name(e: &Spanned<Expr>) -> Result<ParamName, DslError> {
    match &e.value {
        Expr::Path(p) if p.len() == 1 => Ok(ParamName::new(p[0].clone())),
        Expr::Call { path, args } if path_text(path) == "param" && args.len() == 1 => {
            Ok(ParamName::new(str_of(&args[0], "a parameter name")?))
        }
        other => Err(DslError::at(
            e.span,
            format!("expected a parameter reference, found {}", describe(other)),
        )),
    }
}

/// Lowers a condition expression (see `docs/ENCODING_GUIDE.md` §DSL).
pub(crate) fn lower_condition(e: &Spanned<Expr>) -> Result<Condition, DslError> {
    match &e.value {
        Expr::Bool(true) => Ok(Condition::True),
        Expr::Bool(false) => Ok(Condition::False),
        Expr::Binary { op, lhs, rhs } => {
            let cmp = vocab::cmp_op_from_binop(*op).ok_or_else(|| {
                DslError::at(e.span, format!("`{op}` is not a comparison operator"))
            })?;
            let name = lower_param_name(lhs)?;
            let value = f64_of(rhs, "a comparison bound")?;
            Ok(Condition::Param(name, cmp, value))
        }
        Expr::Call { path, args } => {
            let callee = path_text(path);
            let one = |what: &str| -> Result<&Spanned<Expr>, DslError> {
                if args.len() == 1 {
                    Ok(&args[0])
                } else {
                    Err(DslError::at(
                        e.span,
                        format!("`{callee}(...)` takes exactly one argument ({what})"),
                    ))
                }
            };
            match callee.as_str() {
                "deployed" => Ok(Condition::SystemSelected(SystemId::new(name_of(
                    one("a system id")?,
                    "a system id",
                )?))),
                "filled" => Ok(Condition::CategoryFilled(lower_category(one("a category")?)?)),
                "provided" => Ok(Condition::ProvidedFeature(Feature::new(name_of(
                    one("a feature")?,
                    "a feature",
                )?))),
                "nics.have" => Ok(Condition::NicFeature(Feature::new(name_of(
                    one("a feature")?,
                    "a feature",
                )?))),
                "switches.have" => Ok(Condition::SwitchFeature(Feature::new(name_of(
                    one("a feature")?,
                    "a feature",
                )?))),
                "servers.have" => Ok(Condition::ServerFeature(Feature::new(name_of(
                    one("a feature")?,
                    "a feature",
                )?))),
                "workload.has" => Ok(Condition::WorkloadProperty(Property::new(name_of(
                    one("a property")?,
                    "a property",
                )?))),
                "not" => Ok(Condition::not(lower_condition(one("a condition")?)?)),
                "all" => Ok(Condition::All(
                    args.iter().map(lower_condition).collect::<Result<_, _>>()?,
                )),
                "any" => Ok(Condition::Any(
                    args.iter().map(lower_condition).collect::<Result<_, _>>()?,
                )),
                other => Err(DslError::at(
                    e.span,
                    format!(
                        "unknown condition `{other}(...)` (expected deployed, filled, \
                         nics.have, switches.have, servers.have, provided, workload.has, \
                         not, all, or any)"
                    ),
                )),
            }
        }
        other => Err(DslError::at(
            e.span,
            format!("expected a condition, found {}", describe(other)),
        )),
    }
}

/// Lowers a resource-amount expression: `N`, `factor * param`, or a `+`
/// chain of those.
pub(crate) fn lower_amount(e: &Spanned<Expr>) -> Result<AmountExpr, DslError> {
    let mut parts = Vec::new();
    collect_amount_terms(e, &mut parts)?;
    match parts.len() {
        1 => Ok(parts.pop().expect("len checked")),
        _ => Ok(AmountExpr::Sum(parts)),
    }
}

fn collect_amount_terms(
    e: &Spanned<Expr>,
    out: &mut Vec<AmountExpr>,
) -> Result<(), DslError> {
    match &e.value {
        Expr::Binary { op: text::BinOp::Add, lhs, rhs } => {
            collect_amount_terms(lhs, out)?;
            collect_amount_terms(rhs, out)?;
            Ok(())
        }
        _ => {
            out.push(lower_amount_term(e)?);
            Ok(())
        }
    }
}

fn lower_amount_term(e: &Spanned<Expr>) -> Result<AmountExpr, DslError> {
    match &e.value {
        Expr::Int(v) if *v >= 0 => Ok(AmountExpr::Const(*v as u64)),
        Expr::Binary { op: text::BinOp::Mul, lhs, rhs } => {
            // Either `factor * param` or `param * factor`.
            let (factor, param) = match (&lhs.value, &rhs.value) {
                (Expr::Int(_) | Expr::Float(_), _) => {
                    (f64_of(lhs, "a scale factor")?, lower_param_name(rhs)?)
                }
                (_, Expr::Int(_) | Expr::Float(_)) => {
                    (f64_of(rhs, "a scale factor")?, lower_param_name(lhs)?)
                }
                _ => {
                    return Err(DslError::at(
                        e.span,
                        "a scaled amount multiplies a number by a parameter \
                         (e.g. `0.001 * num_flows`)",
                    ))
                }
            };
            Ok(AmountExpr::ParamScaled { param, factor })
        }
        other => Err(DslError::at(
            e.span,
            format!(
                "expected a resource amount (integer, `factor * param`, or a `+` \
                 chain), found {}",
                describe(other)
            ),
        )),
    }
}

// ---------------------------------------------------------------------------
// Block lowering
// ---------------------------------------------------------------------------

fn require_one_label<'a>(block: &'a Block, what: &str) -> Result<&'a Spanned<String>, DslError> {
    match block.labels.as_slice() {
        [label] => Ok(label),
        [] => Err(DslError::at(
            block.keyword.span,
            format!("`{}` block needs a {what} label, e.g. `{} \"NAME\" {{ ... }}`",
                block.keyword.value, block.keyword.value),
        )),
        [_, extra, ..] => Err(DslError::at(
            extra.span,
            format!("`{}` block takes a single {what} label", block.keyword.value),
        )),
    }
}

fn forbid_labels(block: &Block) -> Result<(), DslError> {
    if let Some(extra) = block.labels.first() {
        return Err(DslError::at(
            extra.span,
            format!("`{}` block takes no label", block.keyword.value),
        ));
    }
    Ok(())
}

fn unknown_attr(block: &Block, attr: &Attr) -> DslError {
    DslError::at(
        attr.key.span,
        format!("unknown attribute `{}` in `{}` block", attr.key.value, block.keyword.value),
    )
}

fn unknown_block(block: &Block, nested: &Block) -> DslError {
    DslError::at(
        nested.keyword.span,
        format!("unknown `{}` block inside `{}`", nested.keyword.value, block.keyword.value),
    )
}

fn set_once<T>(slot: &mut Option<T>, key: &Spanned<String>, value: T) -> Result<(), DslError> {
    if slot.is_some() {
        return Err(DslError::at(key.span, format!("duplicate attribute `{}`", key.value)));
    }
    *slot = Some(value);
    Ok(())
}

fn missing(span: Span, what: &str) -> DslError {
    DslError::at(span, format!("missing required attribute `{what}`"))
}

fn names_list<T: From<String>>(e: &Spanned<Expr>, what: &str) -> Result<Vec<T>, DslError> {
    list_of(e, what)?
        .iter()
        .map(|item| name_of(item, what).map(T::from))
        .collect()
}

fn lower_system(block: &Block) -> Result<SystemSpec, DslError> {
    let label = require_one_label(block, "system id")?;
    let mut name: Option<String> = None;
    let mut category: Option<Category> = None;
    let mut solves: Option<Vec<Capability>> = None;
    let mut conflicts: Option<Vec<SystemId>> = None;
    let mut provides: Option<Vec<Feature>> = None;
    let mut cost_usd: Option<u64> = None;
    let mut notes: Option<String> = None;
    let mut requires: Vec<Requirement> = Vec::new();
    let mut resources: Vec<ResourceDemand> = Vec::new();

    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "name" => set_once(&mut name, &attr.key, str_of(&attr.value, "a name")?)?,
                "category" => set_once(&mut category, &attr.key, lower_category(&attr.value)?)?,
                "solves" => {
                    set_once(&mut solves, &attr.key, names_list(&attr.value, "a capability")?)?
                }
                "conflicts" => set_once(
                    &mut conflicts,
                    &attr.key,
                    names_list(&attr.value, "a system id")?,
                )?,
                "provides" => {
                    set_once(&mut provides, &attr.key, names_list(&attr.value, "a feature")?)?
                }
                "cost_usd" => {
                    set_once(&mut cost_usd, &attr.key, u64_of(&attr.value, "a cost")?)?
                }
                "notes" => set_once(&mut notes, &attr.key, str_of(&attr.value, "notes")?)?,
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) => match nested.keyword.value.as_str() {
                "requires" => requires.push(lower_requirement(nested)?),
                "consumes" => lower_consumes(nested, &mut resources)?,
                _ => return Err(unknown_block(block, nested)),
            },
        }
    }

    Ok(SystemSpec {
        id: SystemId::new(label.value.clone()),
        name: name.unwrap_or_else(|| label.value.clone()),
        category: category.ok_or_else(|| missing(block.keyword.span, "category"))?,
        solves: solves.unwrap_or_default(),
        requires,
        conflicts: conflicts.unwrap_or_default(),
        resources,
        provides: provides.unwrap_or_default(),
        cost_usd: cost_usd.unwrap_or(0),
        notes,
    })
}

fn lower_requirement(block: &Block) -> Result<Requirement, DslError> {
    let label = require_one_label(block, "rule-name")?;
    let mut condition: Option<Condition> = None;
    let mut citation: Option<String> = None;
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "condition" => {
                    set_once(&mut condition, &attr.key, lower_condition(&attr.value)?)?
                }
                "citation" => {
                    set_once(&mut citation, &attr.key, str_of(&attr.value, "a citation")?)?
                }
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(Requirement {
        label: label.value.clone(),
        condition: condition.ok_or_else(|| missing(block.keyword.span, "condition"))?,
        citation,
    })
}

fn lower_consumes(block: &Block, out: &mut Vec<ResourceDemand>) -> Result<(), DslError> {
    forbid_labels(block)?;
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => out.push(ResourceDemand {
                resource: vocab::resource_from_ident(&attr.key.value),
                amount: lower_amount(&attr.value)?,
            }),
            // `demand "odd name" { amount = ... }` escapes non-identifier
            // custom resource names.
            text::Item::Block(nested) if nested.keyword.value == "demand" => {
                let label = require_one_label(nested, "resource-name")?;
                let mut amount: Option<AmountExpr> = None;
                for inner in &nested.body {
                    match inner {
                        text::Item::Attr(attr) if attr.key.value == "amount" => {
                            set_once(&mut amount, &attr.key, lower_amount(&attr.value)?)?
                        }
                        text::Item::Attr(attr) => return Err(unknown_attr(nested, attr)),
                        text::Item::Block(b) => return Err(unknown_block(nested, b)),
                    }
                }
                out.push(ResourceDemand {
                    resource: Resource::Custom(label.value.clone()),
                    amount: amount
                        .ok_or_else(|| missing(nested.keyword.span, "amount"))?,
                });
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(())
}

fn lower_hardware(block: &Block) -> Result<HardwareSpec, DslError> {
    let label = require_one_label(block, "model id")?;
    let mut kind: Option<HardwareKind> = None;
    let mut model: Option<String> = None;
    let mut features: Option<Vec<Feature>> = None;
    let mut cost_usd: Option<u64> = None;
    let mut numeric: BTreeMap<String, f64> = BTreeMap::new();

    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "kind" => {
                    let name = name_of(&attr.value, "a hardware kind")?;
                    let k = vocab::hardware_kind_from_name(&name).ok_or_else(|| {
                        DslError::at(
                            attr.value.span,
                            format!("unknown hardware kind `{name}` (switch, nic, or server)"),
                        )
                    })?;
                    set_once(&mut kind, &attr.key, k)?
                }
                "model" => set_once(&mut model, &attr.key, str_of(&attr.value, "a model name")?)?,
                "features" => {
                    set_once(&mut features, &attr.key, names_list(&attr.value, "a feature")?)?
                }
                "cost_usd" => set_once(&mut cost_usd, &attr.key, u64_of(&attr.value, "a cost")?)?,
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) if nested.keyword.value == "attrs" => {
                forbid_labels(nested)?;
                for inner in &nested.body {
                    match inner {
                        text::Item::Attr(attr) => {
                            insert_numeric(&mut numeric, &attr.key, &attr.value)?
                        }
                        // `attr "odd name" { value = ... }` escapes
                        // non-identifier attribute names.
                        text::Item::Block(b) if b.keyword.value == "attr" => {
                            let name = require_one_label(b, "attribute-name")?;
                            let mut value: Option<f64> = None;
                            for i in &b.body {
                                match i {
                                    text::Item::Attr(a) if a.key.value == "value" => set_once(
                                        &mut value,
                                        &a.key,
                                        f64_of(&a.value, "a numeric value")?,
                                    )?,
                                    text::Item::Attr(a) => return Err(unknown_attr(b, a)),
                                    text::Item::Block(bb) => return Err(unknown_block(b, bb)),
                                }
                            }
                            let value =
                                value.ok_or_else(|| missing(b.keyword.span, "value"))?;
                            if numeric.insert(name.value.clone(), value).is_some() {
                                return Err(DslError::at(
                                    name.span,
                                    format!("duplicate attribute `{}`", name.value),
                                ));
                            }
                        }
                        text::Item::Block(b) => return Err(unknown_block(nested, b)),
                    }
                }
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }

    Ok(HardwareSpec {
        id: HardwareId::new(label.value.clone()),
        model_name: model.unwrap_or_else(|| label.value.clone()),
        kind: kind.ok_or_else(|| missing(block.keyword.span, "kind"))?,
        features: features.unwrap_or_default().into_iter().collect(),
        numeric,
        cost_usd: cost_usd.unwrap_or(0),
    })
}

fn insert_numeric(
    numeric: &mut BTreeMap<String, f64>,
    key: &Spanned<String>,
    value: &Spanned<Expr>,
) -> Result<(), DslError> {
    let v = f64_of(value, "a numeric value")?;
    if numeric.insert(key.value.clone(), v).is_some() {
        return Err(DslError::at(key.span, format!("duplicate attribute `{}`", key.value)));
    }
    Ok(())
}

fn lower_ordering(block: &Block) -> Result<OrderingEdge, DslError> {
    forbid_labels(block)?;
    let mut better: Option<SystemId> = None;
    let mut worse: Option<SystemId> = None;
    let mut dimension: Option<Dimension> = None;
    let mut kind: Option<EdgeKind> = None;
    let mut condition: Option<Condition> = None;
    let mut citation: Option<String> = None;
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "better" => set_once(
                    &mut better,
                    &attr.key,
                    SystemId::new(name_of(&attr.value, "a system id")?),
                )?,
                "worse" => set_once(
                    &mut worse,
                    &attr.key,
                    SystemId::new(name_of(&attr.value, "a system id")?),
                )?,
                "dimension" => {
                    set_once(&mut dimension, &attr.key, lower_dimension(&attr.value)?)?
                }
                "kind" => {
                    let name = name_of(&attr.value, "an edge kind")?;
                    let k = vocab::edge_kind_from_name(&name).ok_or_else(|| {
                        DslError::at(
                            attr.value.span,
                            format!("unknown edge kind `{name}` (strict or equal)"),
                        )
                    })?;
                    set_once(&mut kind, &attr.key, k)?
                }
                "when" => set_once(&mut condition, &attr.key, lower_condition(&attr.value)?)?,
                "citation" => {
                    set_once(&mut citation, &attr.key, str_of(&attr.value, "a citation")?)?
                }
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(OrderingEdge {
        better: better.ok_or_else(|| missing(block.keyword.span, "better"))?,
        worse: worse.ok_or_else(|| missing(block.keyword.span, "worse"))?,
        dimension: dimension.ok_or_else(|| missing(block.keyword.span, "dimension"))?,
        condition: condition.unwrap_or(Condition::True),
        kind: kind.unwrap_or(EdgeKind::Strict),
        citation,
    })
}

fn lower_workload(block: &Block) -> Result<Workload, DslError> {
    let label = require_one_label(block, "workload id")?;
    let mut name: Option<String> = None;
    let mut properties: Option<Vec<Property>> = None;
    let mut racks: Option<std::ops::Range<u32>> = None;
    let mut peak_cores: Option<u64> = None;
    let mut peak_bandwidth_gbps: Option<u64> = None;
    let mut num_flows: Option<u64> = None;
    let mut needs: Option<Vec<Capability>> = None;
    let mut bounds: Vec<PerformanceBound> = Vec::new();
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "name" => set_once(&mut name, &attr.key, str_of(&attr.value, "a name")?)?,
                "properties" => set_once(
                    &mut properties,
                    &attr.key,
                    names_list(&attr.value, "a property")?,
                )?,
                "racks" => {
                    let range = match &attr.value.value {
                        Expr::Range(lo, hi)
                            if *lo >= 0
                                && *hi >= 0
                                && *lo <= u32::MAX as i64
                                && *hi <= u32::MAX as i64 =>
                        {
                            *lo as u32..*hi as u32
                        }
                        other => {
                            return Err(DslError::at(
                                attr.value.span,
                                format!(
                                    "expected a rack range like `0..3`, found {}",
                                    describe(other)
                                ),
                            ))
                        }
                    };
                    set_once(&mut racks, &attr.key, range)?
                }
                "peak_cores" => {
                    set_once(&mut peak_cores, &attr.key, u64_of(&attr.value, "a core count")?)?
                }
                "peak_bandwidth_gbps" => set_once(
                    &mut peak_bandwidth_gbps,
                    &attr.key,
                    u64_of(&attr.value, "a bandwidth")?,
                )?,
                "num_flows" => {
                    set_once(&mut num_flows, &attr.key, u64_of(&attr.value, "a flow count")?)?
                }
                "needs" => {
                    set_once(&mut needs, &attr.key, names_list(&attr.value, "a capability")?)?
                }
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) if nested.keyword.value == "bound" => {
                forbid_labels(nested)?;
                let mut dimension: Option<Dimension> = None;
                let mut better_than: Option<SystemId> = None;
                for inner in &nested.body {
                    match inner {
                        text::Item::Attr(attr) => match attr.key.value.as_str() {
                            "dimension" => set_once(
                                &mut dimension,
                                &attr.key,
                                lower_dimension(&attr.value)?,
                            )?,
                            "better_than" => set_once(
                                &mut better_than,
                                &attr.key,
                                SystemId::new(name_of(&attr.value, "a system id")?),
                            )?,
                            _ => return Err(unknown_attr(nested, attr)),
                        },
                        text::Item::Block(b) => return Err(unknown_block(nested, b)),
                    }
                }
                bounds.push(PerformanceBound {
                    dimension: dimension
                        .ok_or_else(|| missing(nested.keyword.span, "dimension"))?,
                    better_than: better_than
                        .ok_or_else(|| missing(nested.keyword.span, "better_than"))?,
                });
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(Workload {
        id: WorkloadId::new(label.value.clone()),
        name: name.unwrap_or_else(|| label.value.clone()),
        properties: properties.unwrap_or_default(),
        racks: racks.unwrap_or(0..0),
        peak_cores: peak_cores.unwrap_or(0),
        peak_bandwidth_gbps: peak_bandwidth_gbps.unwrap_or(0),
        num_flows: num_flows.unwrap_or(0),
        needs: needs.unwrap_or_default(),
        bounds,
    })
}

fn lower_scenario(
    block: &Block,
    catalog: Catalog,
    workloads: Vec<Workload>,
) -> Result<Scenario, DslError> {
    forbid_labels(block)?;
    let mut scenario = Scenario::new(catalog);
    scenario.workloads = workloads;
    let mut saw_objectives = false;
    let mut saw_pins = false;
    let mut saw_budget = false;
    let mut saw_params = false;
    let mut saw_roles = false;
    let mut saw_inventory = false;
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "objectives" => {
                    if std::mem::replace(&mut saw_objectives, true) {
                        return Err(DslError::at(attr.key.span, "duplicate attribute `objectives`"));
                    }
                    for entry in list_of(&attr.value, "objectives")? {
                        scenario.objectives.push(lower_objective(entry)?);
                    }
                }
                "pins" => {
                    if std::mem::replace(&mut saw_pins, true) {
                        return Err(DslError::at(attr.key.span, "duplicate attribute `pins`"));
                    }
                    for entry in list_of(&attr.value, "pins")? {
                        scenario.pins.push(lower_pin(entry)?);
                    }
                }
                "budget_usd" => {
                    if std::mem::replace(&mut saw_budget, true) {
                        return Err(DslError::at(attr.key.span, "duplicate attribute `budget_usd`"));
                    }
                    scenario.budget_usd = Some(u64_of(&attr.value, "a budget")?);
                }
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) => match nested.keyword.value.as_str() {
                "params" => {
                    if std::mem::replace(&mut saw_params, true) {
                        return Err(DslError::at(nested.keyword.span, "duplicate `params` block"));
                    }
                    lower_params(nested, &mut scenario.params)?
                }
                "roles" => {
                    if std::mem::replace(&mut saw_roles, true) {
                        return Err(DslError::at(nested.keyword.span, "duplicate `roles` block"));
                    }
                    lower_roles(nested, &mut scenario.roles)?
                }
                "inventory" => {
                    if std::mem::replace(&mut saw_inventory, true) {
                        return Err(DslError::at(
                            nested.keyword.span,
                            "duplicate `inventory` block",
                        ));
                    }
                    scenario.inventory = lower_inventory(nested)?
                }
                _ => return Err(unknown_block(block, nested)),
            },
        }
    }
    Ok(scenario)
}

fn lower_objective(e: &Spanned<Expr>) -> Result<Objective, DslError> {
    match &e.value {
        Expr::Path(p) if p.len() == 1 && p[0] == "minimize_cost" => Ok(Objective::MinimizeCost),
        Expr::Call { path, args } if path_text(path) == "maximize" && args.len() == 1 => {
            Ok(Objective::MaximizeDimension(lower_dimension(&args[0])?))
        }
        Expr::Call { path, args } if path_text(path) == "prefer" && args.len() == 1 => {
            Ok(Objective::PreferCapability(Capability::new(name_of(
                &args[0],
                "a capability",
            )?)))
        }
        other => Err(DslError::at(
            e.span,
            format!(
                "expected an objective (maximize(dim), minimize_cost, or prefer(cap)), \
                 found {}",
                describe(other)
            ),
        )),
    }
}

fn lower_pin(e: &Spanned<Expr>) -> Result<Pin, DslError> {
    match &e.value {
        Expr::Call { path, args } if path_text(path) == "require" && args.len() == 1 => {
            Ok(Pin::Require(SystemId::new(name_of(&args[0], "a system id")?)))
        }
        Expr::Call { path, args } if path_text(path) == "forbid" && args.len() == 1 => {
            Ok(Pin::Forbid(SystemId::new(name_of(&args[0], "a system id")?)))
        }
        other => Err(DslError::at(
            e.span,
            format!("expected a pin (require(SYS) or forbid(SYS)), found {}", describe(other)),
        )),
    }
}

fn lower_params(
    block: &Block,
    out: &mut BTreeMap<ParamName, f64>,
) -> Result<(), DslError> {
    forbid_labels(block)?;
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => {
                let value = f64_of(&attr.value, "a parameter value")?;
                if out.insert(ParamName::new(attr.key.value.clone()), value).is_some() {
                    return Err(DslError::at(
                        attr.key.span,
                        format!("duplicate parameter `{}`", attr.key.value),
                    ));
                }
            }
            // `param "odd name" { value = ... }` escapes non-identifier
            // parameter names.
            text::Item::Block(nested) if nested.keyword.value == "param" => {
                let label = require_one_label(nested, "parameter-name")?;
                let mut value: Option<f64> = None;
                for inner in &nested.body {
                    match inner {
                        text::Item::Attr(a) if a.key.value == "value" => {
                            set_once(&mut value, &a.key, f64_of(&a.value, "a value")?)?
                        }
                        text::Item::Attr(a) => return Err(unknown_attr(nested, a)),
                        text::Item::Block(b) => return Err(unknown_block(nested, b)),
                    }
                }
                let value = value.ok_or_else(|| missing(nested.keyword.span, "value"))?;
                if out.insert(ParamName::new(label.value.clone()), value).is_some() {
                    return Err(DslError::at(
                        label.span,
                        format!("duplicate parameter `{}`", label.value),
                    ));
                }
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(())
}

fn lower_roles(
    block: &Block,
    out: &mut BTreeMap<Category, RoleRule>,
) -> Result<(), DslError> {
    forbid_labels(block)?;
    let mut insert = |category: Category, rule: RoleRule, span: Span| -> Result<(), DslError> {
        if out.insert(category.clone(), rule).is_some() {
            return Err(DslError::at(span, format!("duplicate role for category `{category}`")));
        }
        Ok(())
    };
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => {
                let category =
                    vocab::category_from_name(&attr.key.value).ok_or_else(|| {
                        DslError::at(
                            attr.key.span,
                            format!(
                                "unknown category `{}` (use a `role {{ ... }}` block for \
                                 custom categories)",
                                attr.key.value
                            ),
                        )
                    })?;
                let name = name_of(&attr.value, "a role rule")?;
                let rule = vocab::role_rule_from_name(&name).ok_or_else(|| {
                    DslError::at(
                        attr.value.span,
                        format!("unknown role rule `{name}` (required, optional, forbidden)"),
                    )
                })?;
                insert(category, rule, attr.key.span)?;
            }
            // `role { category = custom("x")  rule = required }` for
            // extension categories.
            text::Item::Block(nested) if nested.keyword.value == "role" => {
                forbid_labels(nested)?;
                let mut category: Option<Category> = None;
                let mut rule: Option<RoleRule> = None;
                for inner in &nested.body {
                    match inner {
                        text::Item::Attr(a) => match a.key.value.as_str() {
                            "category" => {
                                set_once(&mut category, &a.key, lower_category(&a.value)?)?
                            }
                            "rule" => {
                                let name = name_of(&a.value, "a role rule")?;
                                let r = vocab::role_rule_from_name(&name).ok_or_else(|| {
                                    DslError::at(
                                        a.value.span,
                                        format!(
                                            "unknown role rule `{name}` (required, optional, \
                                             forbidden)"
                                        ),
                                    )
                                })?;
                                set_once(&mut rule, &a.key, r)?
                            }
                            _ => return Err(unknown_attr(nested, a)),
                        },
                        text::Item::Block(b) => return Err(unknown_block(nested, b)),
                    }
                }
                insert(
                    category.ok_or_else(|| missing(nested.keyword.span, "category"))?,
                    rule.ok_or_else(|| missing(nested.keyword.span, "rule"))?,
                    nested.keyword.span,
                )?;
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(())
}

fn lower_inventory(block: &Block) -> Result<Inventory, DslError> {
    forbid_labels(block)?;
    let mut inventory = Inventory::default();
    let mut seen: Vec<&str> = Vec::new();
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => {
                let key = attr.key.value.as_str();
                if seen.contains(&key) {
                    return Err(DslError::at(
                        attr.key.span,
                        format!("duplicate attribute `{key}`"),
                    ));
                }
                match key {
                    "servers" => {
                        inventory.server_candidates = names_list(&attr.value, "a hardware id")?
                    }
                    "nics" => {
                        inventory.nic_candidates = names_list(&attr.value, "a hardware id")?
                    }
                    "switches" => {
                        inventory.switch_candidates = names_list(&attr.value, "a hardware id")?
                    }
                    "num_servers" => {
                        inventory.num_servers = u64_of(&attr.value, "a server count")?
                    }
                    "num_switches" => {
                        inventory.num_switches = u64_of(&attr.value, "a switch count")?
                    }
                    _ => return Err(unknown_attr(block, attr)),
                }
                seen.push(match key {
                    "servers" => "servers",
                    "nics" => "nics",
                    "switches" => "switches",
                    "num_servers" => "num_servers",
                    _ => "num_switches",
                });
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    Ok(inventory)
}

fn lower_query(block: &Block) -> Result<QuerySpec, DslError> {
    let label = require_one_label(block, "query-kind")?;
    let mut attrs: BTreeMap<&str, &Attr> = BTreeMap::new();
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => {
                if attrs.insert(attr.key.value.as_str(), attr).is_some() {
                    return Err(DslError::at(
                        attr.key.span,
                        format!("duplicate attribute `{}`", attr.key.value),
                    ));
                }
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    let allow = |attrs: &BTreeMap<&str, &Attr>, allowed: &[&str]| -> Result<(), DslError> {
        for (key, attr) in attrs {
            if !allowed.contains(key) {
                return Err(unknown_attr(block, attr));
            }
        }
        Ok(())
    };
    let require = |key: &str| -> Result<&Attr, DslError> {
        attrs.get(key).copied().ok_or_else(|| missing(block.keyword.span, key))
    };
    match label.value.as_str() {
        "check" => {
            allow(&attrs, &[])?;
            Ok(QuerySpec::Check)
        }
        "optimize" => {
            allow(&attrs, &[])?;
            Ok(QuerySpec::Optimize)
        }
        "capacity" => {
            allow(&attrs, &["max"])?;
            Ok(QuerySpec::Capacity { max: u64_of(&require("max")?.value, "a fleet bound")? })
        }
        "enumerate" => {
            allow(&attrs, &["limit"])?;
            Ok(QuerySpec::Enumerate { limit: u64_of(&require("limit")?.value, "a limit")? })
        }
        "questions" => {
            allow(&attrs, &["budget"])?;
            let budget = match attrs.get("budget") {
                Some(attr) => u64_of(&attr.value, "a budget")?,
                None => 256,
            };
            Ok(QuerySpec::Questions { budget })
        }
        "compare" => {
            allow(&attrs, &["a", "b", "dimension"])?;
            Ok(QuerySpec::Compare {
                a: SystemId::new(name_of(&require("a")?.value, "a system id")?),
                b: SystemId::new(name_of(&require("b")?.value, "a system id")?),
                dimension: lower_dimension(&require("dimension")?.value)?,
            })
        }
        other => Err(DslError::at(
            label.span,
            format!(
                "unknown query kind `{other}` (check, optimize, capacity, enumerate, \
                 questions, compare)"
            ),
        )),
    }
}

fn bool_of(e: &Spanned<Expr>, what: &str) -> Result<bool, DslError> {
    match &e.value {
        Expr::Bool(b) => Ok(*b),
        other => Err(DslError::at(
            e.span,
            format!("expected {what} (true or false), found {}", describe(other)),
        )),
    }
}

fn lower_sweep(block: &Block) -> Result<SweepSpec, DslError> {
    let label = require_one_label(block, "sweep-name")?;
    let mut seed: Option<u64> = None;
    let mut limit: Option<u64> = None;
    let mut require: Option<Vec<SweepConstraint>> = None;
    let mut forbid: Option<Vec<SweepConstraint>> = None;
    let mut groups: Vec<ChoiceGroup> = Vec::new();
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "seed" => set_once(&mut seed, &attr.key, u64_of(&attr.value, "a seed")?)?,
                "limit" => {
                    set_once(&mut limit, &attr.key, u64_of(&attr.value, "a variant cap")?)?
                }
                "require" => set_once(
                    &mut require,
                    &attr.key,
                    lower_sweep_constraints(&attr.value)?,
                )?,
                "forbid" => set_once(
                    &mut forbid,
                    &attr.key,
                    lower_sweep_constraints(&attr.value)?,
                )?,
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) if nested.keyword.value == "choose" => {
                let group = lower_choice_group(nested)?;
                if groups.iter().any(|g| g.name == group.name) {
                    return Err(DslError::at(
                        nested.keyword.span,
                        format!("duplicate choice group `{}`", group.name),
                    ));
                }
                groups.push(group);
            }
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    let limit = limit.unwrap_or(256);
    if limit == 0 {
        return Err(DslError::at(block.keyword.span, "sweep `limit` must be at least 1"));
    }
    if groups.is_empty() {
        return Err(DslError::at(
            block.keyword.span,
            "sweep has no `choose` groups; add at least one",
        ));
    }
    let spec = SweepSpec {
        name: label.value.clone(),
        seed: seed.unwrap_or(0),
        limit,
        groups,
        require: require.unwrap_or_default(),
        forbid: forbid.unwrap_or_default(),
    };
    // References must resolve at lowering time: a `picked` over a group or
    // alternative the sweep never defines is a typo, not an always-false
    // atom.
    for constraint in spec.require.iter().chain(&spec.forbid) {
        check_sweep_refs(&spec, constraint, block.keyword.span)?;
    }
    Ok(spec)
}

fn check_sweep_refs(
    spec: &SweepSpec,
    constraint: &SweepConstraint,
    span: Span,
) -> Result<(), DslError> {
    match constraint {
        SweepConstraint::Picked { group, alternative } => {
            let g = spec.groups.iter().find(|g| g.name == *group).ok_or_else(|| {
                DslError::at(span, format!("constraint references unknown choice group `{group}`"))
            })?;
            if g.resolve(alternative).is_none() {
                let alt = match alternative {
                    AltRef::Name(n) => n.clone(),
                    AltRef::Number(v) => crate::print::number_text(*v),
                };
                return Err(DslError::at(
                    span,
                    format!("group `{group}` has no alternative `{alt}`"),
                ));
            }
            Ok(())
        }
        SweepConstraint::Not(inner) => check_sweep_refs(spec, inner, span),
        SweepConstraint::All(parts) | SweepConstraint::Any(parts) => {
            parts.iter().try_for_each(|c| check_sweep_refs(spec, c, span))
        }
    }
}

fn lower_choice_group(block: &Block) -> Result<ChoiceGroup, DslError> {
    let label = require_one_label(block, "group-name")?;
    let mut kind: Option<ChoiceKind> = None;
    let mut optional: Option<bool> = None;
    let mut param: Option<ParamName> = None;
    let mut values: Option<Vec<f64>> = None;
    let set_kind = |slot: &mut Option<ChoiceKind>,
                        key: &Spanned<String>,
                        k: ChoiceKind|
     -> Result<(), DslError> {
        if slot.is_some() {
            return Err(DslError::at(
                key.span,
                "`choose` group already has an axis; pick exactly one of systems, nics, \
                 servers, switches, num_servers, or param",
            ));
        }
        *slot = Some(k);
        Ok(())
    };
    for item in &block.body {
        match item {
            text::Item::Attr(attr) => match attr.key.value.as_str() {
                "systems" => set_kind(
                    &mut kind,
                    &attr.key,
                    ChoiceKind::Systems {
                        candidates: names_list(&attr.value, "a system id")?,
                        optional: false,
                    },
                )?,
                "nics" => set_kind(
                    &mut kind,
                    &attr.key,
                    ChoiceKind::Nics(names_list(&attr.value, "a hardware id")?),
                )?,
                "servers" => set_kind(
                    &mut kind,
                    &attr.key,
                    ChoiceKind::Servers(names_list(&attr.value, "a hardware id")?),
                )?,
                "switches" => set_kind(
                    &mut kind,
                    &attr.key,
                    ChoiceKind::Switches(names_list(&attr.value, "a hardware id")?),
                )?,
                "num_servers" => {
                    let counts = list_of(&attr.value, "server counts")?
                        .iter()
                        .map(|e| u64_of(e, "a server count"))
                        .collect::<Result<Vec<_>, _>>()?;
                    set_kind(&mut kind, &attr.key, ChoiceKind::NumServers(counts))?
                }
                "optional" => set_once(
                    &mut optional,
                    &attr.key,
                    bool_of(&attr.value, "an optional flag")?,
                )?,
                "param" => {
                    set_once(&mut param, &attr.key, lower_param_name(&attr.value)?)?
                }
                "values" => {
                    let vs = list_of(&attr.value, "parameter values")?
                        .iter()
                        .map(|e| f64_of(e, "a parameter value"))
                        .collect::<Result<Vec<_>, _>>()?;
                    set_once(&mut values, &attr.key, vs)?
                }
                _ => return Err(unknown_attr(block, attr)),
            },
            text::Item::Block(nested) => return Err(unknown_block(block, nested)),
        }
    }
    let mut kind = match (kind, param, values) {
        (Some(k), None, None) => k,
        (None, Some(name), Some(values)) => ChoiceKind::Param { name, values },
        (None, Some(_), None) => {
            return Err(missing(block.keyword.span, "values"));
        }
        (None, None, Some(_)) => {
            return Err(missing(block.keyword.span, "param"));
        }
        (None, None, None) => {
            return Err(DslError::at(
                block.keyword.span,
                "`choose` group needs an axis: one of systems, nics, servers, switches, \
                 num_servers, or param + values",
            ));
        }
        (Some(_), _, _) => {
            return Err(DslError::at(
                block.keyword.span,
                "`choose` group already has an axis; pick exactly one of systems, nics, \
                 servers, switches, num_servers, or param",
            ));
        }
    };
    match (&mut kind, optional) {
        (ChoiceKind::Systems { optional: slot, .. }, Some(flag)) => *slot = flag,
        (_, None) => {}
        (_, Some(_)) => {
            return Err(DslError::at(
                block.keyword.span,
                "`optional` applies only to a `systems` group",
            ));
        }
    }
    let group = ChoiceGroup { name: label.value.clone(), kind };
    if group.arity() == 0 {
        return Err(DslError::at(
            block.keyword.span,
            "`choose` group lists no alternatives",
        ));
    }
    Ok(group)
}

fn lower_sweep_constraints(e: &Spanned<Expr>) -> Result<Vec<SweepConstraint>, DslError> {
    list_of(e, "sweep constraints")?.iter().map(lower_sweep_constraint).collect()
}

fn lower_sweep_constraint(e: &Spanned<Expr>) -> Result<SweepConstraint, DslError> {
    match &e.value {
        Expr::Call { path, args } => match path_text(path).as_str() {
            "picked" => {
                if args.len() != 2 {
                    return Err(DslError::at(
                        e.span,
                        "`picked(...)` takes exactly two arguments (group, alternative)",
                    ));
                }
                Ok(SweepConstraint::Picked {
                    group: name_of(&args[0], "a choice-group name")?,
                    alternative: lower_alt_ref(&args[1])?,
                })
            }
            "not" => {
                if args.len() != 1 {
                    return Err(DslError::at(
                        e.span,
                        "`not(...)` takes exactly one argument (a constraint)",
                    ));
                }
                Ok(SweepConstraint::Not(Box::new(lower_sweep_constraint(&args[0])?)))
            }
            "all" => Ok(SweepConstraint::All(
                args.iter().map(lower_sweep_constraint).collect::<Result<_, _>>()?,
            )),
            "any" => Ok(SweepConstraint::Any(
                args.iter().map(lower_sweep_constraint).collect::<Result<_, _>>()?,
            )),
            other => Err(DslError::at(
                e.span,
                format!(
                    "unknown sweep constraint `{other}(...)` (expected picked, not, all, \
                     or any)"
                ),
            )),
        },
        other => Err(DslError::at(
            e.span,
            format!("expected a sweep constraint, found {}", describe(other)),
        )),
    }
}

fn lower_alt_ref(e: &Spanned<Expr>) -> Result<AltRef, DslError> {
    match &e.value {
        Expr::Int(v) => Ok(AltRef::Number(*v as f64)),
        Expr::Float(v) => Ok(AltRef::Number(*v)),
        Expr::Str(s) => Ok(AltRef::Name(s.clone())),
        Expr::Path(p) if p.len() == 1 => Ok(AltRef::Name(p[0].clone())),
        other => Err(DslError::at(
            e.span,
            format!(
                "expected an alternative (name or number), found {}",
                describe(other)
            ),
        )),
    }
}
