//! Canonical surface names for the core vocabulary enums.
//!
//! Built-in variants spell as bare lower_snake identifiers; `Custom`
//! variants use an explicit `custom("name")` call (categories, dimensions)
//! or a quoted key (resources, params), so a custom name can never be
//! confused with a built-in one.

use netarch_core::prelude::*;

pub(crate) const CATEGORY_NAMES: &[(&str, Category)] = &[
    ("network_stack", Category::NetworkStack),
    ("congestion_control", Category::CongestionControl),
    ("monitoring", Category::Monitoring),
    ("firewall", Category::Firewall),
    ("virtual_switch", Category::VirtualSwitch),
    ("load_balancer", Category::LoadBalancer),
    ("transport", Category::Transport),
];

pub(crate) fn category_name(c: &Category) -> Option<&'static str> {
    CATEGORY_NAMES.iter().find(|(_, v)| v == c).map(|(n, _)| *n)
}

pub(crate) fn category_from_name(name: &str) -> Option<Category> {
    CATEGORY_NAMES.iter().find(|(n, _)| *n == name).map(|(_, v)| v.clone())
}

pub(crate) const DIMENSION_NAMES: &[(&str, Dimension)] = &[
    ("throughput", Dimension::Throughput),
    ("isolation", Dimension::Isolation),
    ("app_compatibility", Dimension::AppCompatibility),
    ("latency", Dimension::Latency),
    ("tail_latency", Dimension::TailLatency),
    ("monitoring_quality", Dimension::MonitoringQuality),
    ("deployment_ease", Dimension::DeploymentEase),
    ("load_balancing_quality", Dimension::LoadBalancingQuality),
    ("cpu_efficiency", Dimension::CpuEfficiency),
];

pub(crate) fn dimension_name(d: &Dimension) -> Option<&'static str> {
    DIMENSION_NAMES.iter().find(|(_, v)| v == d).map(|(n, _)| *n)
}

pub(crate) fn dimension_from_name(name: &str) -> Option<Dimension> {
    DIMENSION_NAMES.iter().find(|(n, _)| *n == name).map(|(_, v)| v.clone())
}

pub(crate) const RESOURCE_NAMES: &[(&str, Resource)] = &[
    ("cores", Resource::Cores),
    ("server_memory_gb", Resource::ServerMemoryGb),
    ("switch_memory_mb", Resource::SwitchMemoryMb),
    ("p4_stages", Resource::P4Stages),
    ("smartnic_capacity", Resource::SmartNicCapacity),
    ("qos_classes", Resource::QosClasses),
];

pub(crate) fn resource_name(r: &Resource) -> Option<&'static str> {
    RESOURCE_NAMES.iter().find(|(_, v)| v == r).map(|(n, _)| *n)
}

/// A bare identifier in resource position: built-in name or custom.
pub(crate) fn resource_from_ident(name: &str) -> Resource {
    RESOURCE_NAMES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| Resource::Custom(name.to_string()))
}

pub(crate) fn hardware_kind_name(k: HardwareKind) -> &'static str {
    match k {
        HardwareKind::Switch => "switch",
        HardwareKind::Nic => "nic",
        HardwareKind::Server => "server",
    }
}

pub(crate) fn hardware_kind_from_name(name: &str) -> Option<HardwareKind> {
    match name {
        "switch" => Some(HardwareKind::Switch),
        "nic" => Some(HardwareKind::Nic),
        "server" => Some(HardwareKind::Server),
        _ => None,
    }
}

pub(crate) fn role_rule_name(r: RoleRule) -> &'static str {
    match r {
        RoleRule::Required => "required",
        RoleRule::Optional => "optional",
        RoleRule::Forbidden => "forbidden",
    }
}

pub(crate) fn role_rule_from_name(name: &str) -> Option<RoleRule> {
    match name {
        "required" => Some(RoleRule::Required),
        "optional" => Some(RoleRule::Optional),
        "forbidden" => Some(RoleRule::Forbidden),
        _ => None,
    }
}

pub(crate) fn edge_kind_name(k: EdgeKind) -> &'static str {
    match k {
        EdgeKind::Strict => "strict",
        EdgeKind::Equal => "equal",
    }
}

pub(crate) fn edge_kind_from_name(name: &str) -> Option<EdgeKind> {
    match name {
        "strict" => Some(EdgeKind::Strict),
        "equal" => Some(EdgeKind::Equal),
        _ => None,
    }
}

pub(crate) fn cmp_op_from_binop(op: netarch_rt::text::BinOp) -> Option<CmpOp> {
    use netarch_rt::text::BinOp;
    match op {
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        BinOp::EqEq => Some(CmpOp::Eq),
        BinOp::Add | BinOp::Mul => None,
    }
}

pub(crate) fn cmp_op_text(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
    }
}
