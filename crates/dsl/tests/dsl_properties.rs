//! Property/fuzz suite for the `.narch` frontend.
//!
//! Invariants:
//! * **round-trip**: for any scenario document built from core values,
//!   `lower(parse(print(doc)))` is semantically equal to `doc` (JSON
//!   equality, which covers every field);
//! * **fixpoint**: printing the reloaded document reproduces the text
//!   byte-for-byte (printing is a formatter);
//! * **robustness**: mutated and truncated inputs are *rejected with a
//!   spanned error or accepted*, but the frontend never panics.

use netarch_core::component::{HardwareSpec, SystemSpec};
use netarch_core::prelude::*;
use netarch_dsl::{
    load_str, print_doc, print_scenario, print_sweeps, AltRef, ChoiceGroup, ChoiceKind,
    QuerySpec, SweepConstraint, SweepSpec,
};
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{impl_shrink_struct, prop_assert, Rng};

/// Compact generation parameters; everything else derives from `stream`.
#[derive(Debug, Clone)]
struct DocSeed {
    stream: u64,
    n_systems: u8,
    n_hardware: u8,
    n_edges: u8,
    n_workloads: u8,
    n_queries: u8,
}

impl_shrink_struct!(DocSeed {
    stream,
    n_systems,
    n_hardware,
    n_edges,
    n_workloads,
    n_queries,
});

fn gen_seed(rng: &mut Rng) -> DocSeed {
    DocSeed {
        stream: rng.next_u64(),
        n_systems: rng.gen_range(1..6u8),
        n_hardware: rng.gen_range(0..4u8),
        n_edges: rng.gen_range(0..5u8),
        n_workloads: rng.gen_range(0..3u8),
        n_queries: rng.gen_range(0..4u8),
    }
}

/// Name pool mixing bare identifiers with every quoting edge case the
/// printer must escape: spaces, dashes, leading digits, keywords, empty.
const NAMES: &[&str] = &[
    "ALPHA",
    "beta_2",
    "_под",
    "odd name",
    "x-y",
    "9lead",
    "true",
    "",
    "with\"quote",
    "tab\there",
];

fn pick_name(rng: &mut Rng) -> String {
    NAMES[rng.gen_range(0..NAMES.len())].to_string()
}

fn pick_category(rng: &mut Rng) -> Category {
    match rng.gen_range(0..4u8) {
        0 => Category::Monitoring,
        1 => Category::NetworkStack,
        2 => Category::Custom(pick_name(rng)),
        _ => Category::Transport,
    }
}

fn pick_dimension(rng: &mut Rng) -> Dimension {
    match rng.gen_range(0..3u8) {
        0 => Dimension::Latency,
        1 => Dimension::Throughput,
        _ => Dimension::Custom(pick_name(rng)),
    }
}

fn pick_f64(rng: &mut Rng) -> f64 {
    match rng.gen_range(0..4u8) {
        0 => rng.gen_range(0..1000u32) as f64,
        // 1.. not 0..: `-0.0` would print as `-0`, which re-lexes as the
        // integer 0 and loses the sign bit.
        1 => -(rng.gen_range(1..100u32) as f64),
        2 => rng.gen_range(0..1000u32) as f64 / 64.0,
        _ => 0.0,
    }
}

fn gen_condition(rng: &mut Rng, depth: u8) -> Condition {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 9 } else { 12u8 }) {
        0 => Condition::True,
        1 => Condition::False,
        2 => Condition::SystemSelected(SystemId::new(pick_name(rng))),
        3 => Condition::CategoryFilled(pick_category(rng)),
        4 => Condition::NicFeature(Feature::new(pick_name(rng))),
        5 => Condition::SwitchFeature(Feature::new(pick_name(rng))),
        6 => Condition::ProvidedFeature(Feature::new(pick_name(rng))),
        7 => Condition::WorkloadProperty(Property::new(pick_name(rng))),
        8 => {
            let op = match rng.gen_range(0..5u8) {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Gt,
                3 => CmpOp::Ge,
                _ => CmpOp::Eq,
            };
            Condition::Param(ParamName::new(pick_name(rng)), op, pick_f64(rng))
        }
        9 => Condition::Not(Box::new(gen_condition(rng, depth - 1))),
        10 => {
            let n = rng.gen_range(0..3u8);
            Condition::All((0..n).map(|_| gen_condition(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..3u8);
            Condition::Any((0..n).map(|_| gen_condition(rng, depth - 1)).collect())
        }
    }
}

fn gen_amount_term(rng: &mut Rng) -> AmountExpr {
    if rng.gen_bool(0.5) {
        AmountExpr::Const(rng.gen_range(0..10_000u32) as u64)
    } else {
        AmountExpr::ParamScaled {
            param: ParamName::new(pick_name(rng)),
            factor: pick_f64(rng),
        }
    }
}

/// Canonical amounts only: a `Sum` is flat with ≥ 2 terms — exactly the
/// shape the `+` surface grammar can express.
fn gen_amount(rng: &mut Rng) -> AmountExpr {
    if rng.gen_bool(0.25) {
        let n = rng.gen_range(2..4u8);
        AmountExpr::Sum((0..n).map(|_| gen_amount_term(rng)).collect())
    } else {
        gen_amount_term(rng)
    }
}

fn pick_resource(rng: &mut Rng) -> Resource {
    match rng.gen_range(0..4u8) {
        0 => Resource::Cores,
        1 => Resource::P4Stages,
        // Custom resources deliberately include names that shadow
        // built-ins ("cores") — the printer must escape those.
        2 => Resource::Custom("cores".to_string()),
        _ => Resource::Custom(pick_name(rng)),
    }
}

fn build_doc(seed: &DocSeed) -> (Catalog, Scenario, Vec<QuerySpec>) {
    let mut rng = Rng::seed_from_u64(seed.stream);
    let rng = &mut rng;
    let mut catalog = Catalog::new();
    let mut system_ids = Vec::new();
    for i in 0..seed.n_systems {
        let id = format!("S{i}_{}", pick_name(rng));
        system_ids.push(id.clone());
        let mut b = SystemSpec::builder(id, pick_category(rng));
        if rng.gen_bool(0.5) {
            b = b.name(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.solves(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            let cond = gen_condition(rng, 2);
            if rng.gen_bool(0.5) {
                b = b.requires_cited(pick_name(rng), cond, pick_name(rng));
            } else {
                b = b.requires(pick_name(rng), cond);
            }
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.consumes(pick_resource(rng), gen_amount(rng));
        }
        for _ in 0..rng.gen_range(0..2u8) {
            b = b.provides(pick_name(rng));
        }
        if rng.gen_bool(0.3) {
            b = b.cost(rng.gen_range(0..100_000u32) as u64);
        }
        if rng.gen_bool(0.3) {
            b = b.notes(pick_name(rng));
        }
        catalog.add_system(b.build()).expect("generated ids are unique");
    }
    for i in 0..seed.n_hardware {
        let kind = match i % 3 {
            0 => HardwareKind::Switch,
            1 => HardwareKind::Nic,
            _ => HardwareKind::Server,
        };
        let mut b = HardwareSpec::builder(format!("H{i}_{}", pick_name(rng)), kind);
        if rng.gen_bool(0.5) {
            b = b.model_name(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.feature(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.numeric(pick_name(rng), pick_f64(rng));
        }
        if rng.gen_bool(0.5) {
            b = b.cost(rng.gen_range(0..100_000u32) as u64);
        }
        catalog.add_hardware(b.build()).expect("generated ids are unique");
    }
    for _ in 0..seed.n_edges {
        let better = &system_ids[rng.gen_range(0..system_ids.len())];
        let worse = &system_ids[rng.gen_range(0..system_ids.len())];
        let mut edge = if rng.gen_bool(0.5) {
            OrderingEdge::strict(better.as_str(), worse.as_str(), pick_dimension(rng))
        } else {
            OrderingEdge::equal(better.as_str(), worse.as_str(), pick_dimension(rng))
        };
        if rng.gen_bool(0.5) {
            edge.condition = gen_condition(rng, 2);
        }
        if rng.gen_bool(0.3) {
            edge.citation = Some(pick_name(rng));
        }
        catalog.add_ordering(edge).expect("endpoints registered");
    }

    let mut scenario = Scenario::new(catalog.clone());
    for i in 0..seed.n_workloads {
        let mut b = Workload::builder(format!("W{i}_{}", pick_name(rng)));
        if rng.gen_bool(0.5) {
            b = b.name(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.property(pick_name(rng));
        }
        if rng.gen_bool(0.5) {
            let lo = rng.gen_range(0..4u32);
            b = b.deployed_at(lo..lo + rng.gen_range(0..4u32));
        }
        b = b
            .peak_cores(rng.gen_range(0..5_000u32) as u64)
            .peak_bandwidth(rng.gen_range(0..200u32) as u64)
            .num_flows(rng.gen_range(0..100_000u32) as u64);
        for _ in 0..rng.gen_range(0..2u8) {
            b = b.needs(pick_name(rng));
        }
        if rng.gen_bool(0.5) {
            b = b.performance_bound(
                pick_dimension(rng),
                system_ids[rng.gen_range(0..system_ids.len())].as_str(),
            );
        }
        scenario = scenario.with_workload(b.build());
    }
    for _ in 0..rng.gen_range(0..3u8) {
        scenario = scenario.with_param(pick_name(rng), pick_f64(rng));
    }
    for _ in 0..rng.gen_range(0..3u8) {
        let rule = match rng.gen_range(0..3u8) {
            0 => RoleRule::Required,
            1 => RoleRule::Optional,
            _ => RoleRule::Forbidden,
        };
        scenario = scenario.with_role(pick_category(rng), rule);
    }
    for _ in 0..rng.gen_range(0..3u8) {
        let objective = match rng.gen_range(0..3u8) {
            0 => Objective::MaximizeDimension(pick_dimension(rng)),
            1 => Objective::MinimizeCost,
            _ => Objective::PreferCapability(Capability::new(pick_name(rng))),
        };
        scenario = scenario.with_objective(objective);
    }
    for _ in 0..rng.gen_range(0..2u8) {
        let id = SystemId::new(system_ids[rng.gen_range(0..system_ids.len())].as_str());
        scenario = scenario
            .with_pin(if rng.gen_bool(0.5) { Pin::Require(id) } else { Pin::Forbid(id) });
    }
    if rng.gen_bool(0.3) {
        scenario = scenario.with_budget(rng.gen_range(0..1_000_000u32) as u64);
    }
    if rng.gen_bool(0.5) {
        let candidates: Vec<HardwareId> =
            (0..seed.n_hardware).map(|i| HardwareId::new(format!("H{i}"))).collect();
        scenario = scenario.with_inventory(Inventory {
            server_candidates: candidates.clone(),
            nic_candidates: candidates.clone(),
            switch_candidates: candidates,
            num_servers: rng.gen_range(0..100u32) as u64,
            num_switches: rng.gen_range(0..10u32) as u64,
        });
    }

    let queries: Vec<QuerySpec> = (0..seed.n_queries)
        .map(|_| match rng.gen_range(0..6u8) {
            0 => QuerySpec::Check,
            1 => QuerySpec::Optimize,
            2 => QuerySpec::Capacity { max: rng.gen_range(1..512u32) as u64 },
            3 => QuerySpec::Enumerate { limit: rng.gen_range(1..16u32) as u64 },
            4 => QuerySpec::Questions { budget: rng.gen_range(1..512u32) as u64 },
            _ => QuerySpec::Compare {
                a: SystemId::new(system_ids[rng.gen_range(0..system_ids.len())].as_str()),
                b: SystemId::new(system_ids[rng.gen_range(0..system_ids.len())].as_str()),
                dimension: pick_dimension(rng),
            },
        })
        .collect();

    (catalog, scenario, queries)
}

fn full_text(scenario: &Scenario, queries: &[QuerySpec]) -> String {
    let mut text = print_scenario(scenario);
    text.push('\n');
    text.push_str(&netarch_dsl::print_queries(queries));
    text
}

#[test]
fn random_documents_round_trip_through_text() {
    prop::check(&Config::default(), gen_seed, |seed| {
        let (catalog, scenario, queries) = build_doc(seed);
        let text = full_text(&scenario, &queries);
        let doc = load_str(&text)
            .map_err(|e| format!("reload failed: {e}\n--- text ---\n{text}"))?;
        prop_assert!(
            netarch_rt::json::to_string(&doc.catalog)
                == netarch_rt::json::to_string(&catalog),
            "catalog drifted through text:\n{text}"
        );
        let reloaded = doc
            .scenario
            .as_ref()
            .ok_or_else(|| format!("scenario block lost:\n{text}"))?;
        prop_assert!(
            netarch_rt::json::to_string(reloaded) == netarch_rt::json::to_string(&scenario),
            "scenario drifted through text:\n{text}"
        );
        prop_assert!(doc.queries == queries, "queries drifted:\n{text}");
        Ok(())
    });
}

#[test]
fn printing_reloaded_documents_is_a_fixpoint() {
    prop::check(&Config::default(), gen_seed, |seed| {
        let (_, scenario, queries) = build_doc(seed);
        let text = full_text(&scenario, &queries);
        let doc = load_str(&text).map_err(|e| format!("reload failed: {e}"))?;
        let reprinted = print_doc(&doc);
        let again = load_str(&reprinted).map_err(|e| format!("reparse failed: {e}"))?;
        prop_assert!(
            print_doc(&again) == reprinted,
            "printer not a fixpoint:\n--- first ---\n{reprinted}"
        );
        Ok(())
    });
}

/// Mutation parameters: where to cut/flip and what to insert.
#[derive(Debug, Clone)]
struct MutationSeed {
    doc: DocSeed,
    cut: u16,
    mode: u8,
    junk: Vec<u8>,
}

impl_shrink_struct!(MutationSeed { doc, cut, mode, junk });

const JUNK_BYTES: &[u8] = b"{}[]()=\"\\#.*+<>x0 \n\t\x7f";

fn gen_junk(rng: &mut Rng) -> Vec<u8> {
    gen_vec(rng, 1..=6, |r| JUNK_BYTES[r.gen_range(0..JUNK_BYTES.len())])
}

/// Applies one truncation/insertion/replacement at a char boundary so the
/// mutated input stays valid UTF-8.
fn mutate(text: &str, cut: u16, mode: u8, junk: &[u8]) -> String {
    let mut at = cut as usize % (text.len() + 1);
    while !text.is_char_boundary(at) {
        at -= 1;
    }
    let junk = String::from_utf8_lossy(junk).into_owned();
    match mode {
        0 => text[..at].to_string(), // truncation
        1 => format!("{}{}{}", &text[..at], junk, &text[at..]), // insertion
        _ => {
            // Replacement: overwrite forward to the next boundary.
            let mut end = (at + junk.len()).min(text.len());
            while !text.is_char_boundary(end) {
                end += 1;
            }
            format!("{}{}{}", &text[..at], junk, &text[end..])
        }
    }
}

/// The only acceptable outcomes for a mutated input: clean accept or a
/// rendered, non-empty diagnostic. A panic fails the property.
fn check_no_panic(mutated: &str) -> Result<(), String> {
    match load_str(mutated) {
        Ok(_) => Ok(()),
        Err(e) => {
            let rendered = e.to_string();
            prop_assert!(!rendered.is_empty(), "empty diagnostic for mutated input");
            Ok(())
        }
    }
}

#[test]
fn mutated_and_truncated_inputs_never_panic() {
    prop::check(
        &Config::default(),
        |rng| MutationSeed {
            doc: gen_seed(rng),
            cut: rng.gen_range(0..=u16::MAX),
            mode: rng.gen_range(0..3u8),
            junk: gen_junk(rng),
        },
        |seed| {
            let (_, scenario, queries) = build_doc(&seed.doc);
            let text = full_text(&scenario, &queries);
            check_no_panic(&mutate(&text, seed.cut, seed.mode, &seed.junk))
        },
    );
}

// ---------------------------------------------------------------------------
// Sweep grammar: round-trip, fixpoint, mutation robustness, spanned errors
// ---------------------------------------------------------------------------

/// Compact sweep-generation parameters; everything derives from `stream`.
#[derive(Debug, Clone)]
struct SweepSeed {
    stream: u64,
    n_sweeps: u8,
}

impl_shrink_struct!(SweepSeed { stream, n_sweeps });

fn gen_sweep_seed(rng: &mut Rng) -> SweepSeed {
    SweepSeed { stream: rng.next_u64(), n_sweeps: rng.gen_range(1..4u8) }
}

fn gen_hw_ids(rng: &mut Rng) -> Vec<HardwareId> {
    // Lowering rejects a `choose` group with no alternatives, so every
    // candidate list has at least one entry.
    (0..rng.gen_range(1..4u8))
        .map(|i| HardwareId::new(format!("H{i}_{}", pick_name(rng))))
        .collect()
}

/// One choice group covering every axis the grammar defines. Candidate
/// ids carry an index prefix so they stay unique within the group; the
/// suffix pulls from the quoting-edge name pool.
fn gen_choice_group(rng: &mut Rng, index: usize) -> ChoiceGroup {
    let name = format!("g{index}_{}", pick_name(rng));
    let kind = match rng.gen_range(0..6u8) {
        0 => ChoiceKind::Systems {
            candidates: (0..rng.gen_range(1..4u8))
                .map(|i| SystemId::new(format!("S{i}_{}", pick_name(rng))))
                .collect(),
            optional: rng.gen_bool(0.5),
        },
        1 => ChoiceKind::Nics(gen_hw_ids(rng)),
        2 => ChoiceKind::Servers(gen_hw_ids(rng)),
        3 => ChoiceKind::Switches(gen_hw_ids(rng)),
        4 => ChoiceKind::NumServers(
            (0..rng.gen_range(1..5u8)).map(|_| rng.gen_range(0..10_000u32) as u64).collect(),
        ),
        _ => ChoiceKind::Param {
            name: ParamName::new(pick_name(rng)),
            values: (0..rng.gen_range(1..4u8)).map(|_| pick_f64(rng)).collect(),
        },
    };
    ChoiceGroup { name, kind }
}

/// A `picked(group, alt)` atom over a group that actually has an
/// alternative — lowering rejects unresolvable references, so the
/// generator must only emit resolvable ones.
fn gen_picked(rng: &mut Rng, groups: &[ChoiceGroup]) -> Option<SweepConstraint> {
    let usable: Vec<&ChoiceGroup> = groups.iter().filter(|g| g.arity() > 0).collect();
    if usable.is_empty() {
        return None;
    }
    let g = usable[rng.gen_range(0..usable.len())];
    let alternative = match &g.kind {
        ChoiceKind::Systems { candidates, optional } => {
            let n = candidates.len() + usize::from(*optional);
            let i = rng.gen_range(0..n);
            AltRef::Name(if i < candidates.len() {
                candidates[i].as_str().to_string()
            } else {
                "none".to_string()
            })
        }
        ChoiceKind::Nics(ids) | ChoiceKind::Servers(ids) | ChoiceKind::Switches(ids) => {
            AltRef::Name(ids[rng.gen_range(0..ids.len())].as_str().to_string())
        }
        ChoiceKind::NumServers(counts) => {
            AltRef::Number(counts[rng.gen_range(0..counts.len())] as f64)
        }
        ChoiceKind::Param { values, .. } => {
            AltRef::Number(values[rng.gen_range(0..values.len())])
        }
    };
    Some(SweepConstraint::Picked { group: g.name.clone(), alternative })
}

fn gen_sweep_constraint(
    rng: &mut Rng,
    groups: &[ChoiceGroup],
    depth: u8,
) -> Option<SweepConstraint> {
    if depth == 0 {
        return gen_picked(rng, groups);
    }
    match rng.gen_range(0..4u8) {
        0 => gen_picked(rng, groups),
        1 => gen_sweep_constraint(rng, groups, depth - 1)
            .map(|c| SweepConstraint::Not(Box::new(c))),
        2 => {
            let n = rng.gen_range(0..3u8);
            Some(SweepConstraint::All(
                (0..n).filter_map(|_| gen_sweep_constraint(rng, groups, depth - 1)).collect(),
            ))
        }
        _ => {
            let n = rng.gen_range(0..3u8);
            Some(SweepConstraint::Any(
                (0..n).filter_map(|_| gen_sweep_constraint(rng, groups, depth - 1)).collect(),
            ))
        }
    }
}

fn gen_sweeps(seed: &SweepSeed) -> Vec<SweepSpec> {
    let mut rng = Rng::seed_from_u64(seed.stream);
    let rng = &mut rng;
    (0..seed.n_sweeps.max(1))
        .map(|s| {
            let groups: Vec<ChoiceGroup> =
                (0..rng.gen_range(1..5u8)).map(|i| gen_choice_group(rng, i as usize)).collect();
            let require: Vec<SweepConstraint> = (0..rng.gen_range(0..3u8))
                .filter_map(|_| gen_sweep_constraint(rng, &groups, 2))
                .collect();
            let forbid: Vec<SweepConstraint> = (0..rng.gen_range(0..3u8))
                .filter_map(|_| gen_sweep_constraint(rng, &groups, 2))
                .collect();
            SweepSpec {
                // Index prefix keeps names unique across the document.
                name: format!("SW{s}_{}", pick_name(rng)),
                // Half the time the printer-elided defaults (seed 0,
                // limit 256), half the time explicit values.
                seed: if rng.gen_bool(0.5) { 0 } else { rng.gen_range(1..1_000_000_000u32) as u64 },
                limit: if rng.gen_bool(0.5) { 256 } else { rng.gen_range(1..10_000u32) as u64 },
                groups,
                require,
                forbid,
            }
        })
        .collect()
}

#[test]
fn random_sweeps_round_trip_through_text() {
    prop::check(&Config::default(), gen_sweep_seed, |seed| {
        let specs = gen_sweeps(seed);
        let text = print_sweeps(&specs);
        let doc = load_str(&text)
            .map_err(|e| format!("reload failed: {e}\n--- text ---\n{text}"))?;
        prop_assert!(doc.sweeps == specs, "sweeps drifted through text:\n{text}");
        // Printing the reloaded specs must reproduce the text byte for
        // byte — the sweep printer is a formatter, like the rest.
        prop_assert!(
            print_sweeps(&doc.sweeps) == text,
            "sweep printer not a fixpoint:\n{text}"
        );
        Ok(())
    });
}

#[test]
fn sweeps_survive_a_full_document_round_trip() {
    // Sweeps embedded in a complete document (catalog + scenario +
    // queries) must round-trip through `print_doc` alongside everything
    // else, not just in isolation.
    prop::check(
        &Config::default(),
        |rng| (gen_seed(rng), gen_sweep_seed(rng)),
        |(doc_seed, sweep_seed)| {
            let (_, scenario, queries) = build_doc(doc_seed);
            let specs = gen_sweeps(sweep_seed);
            let mut text = full_text(&scenario, &queries);
            text.push('\n');
            text.push_str(&print_sweeps(&specs));
            let doc = load_str(&text)
                .map_err(|e| format!("reload failed: {e}\n--- text ---\n{text}"))?;
            prop_assert!(doc.sweeps == specs, "sweeps drifted through text:\n{text}");
            let reprinted = print_doc(&doc);
            let again =
                load_str(&reprinted).map_err(|e| format!("reparse failed: {e}"))?;
            prop_assert!(
                print_doc(&again) == reprinted,
                "printer not a fixpoint with sweeps:\n{reprinted}"
            );
            Ok(())
        },
    );
}

/// Mutation parameters for sweep-bearing text.
#[derive(Debug, Clone)]
struct SweepMutationSeed {
    sweeps: SweepSeed,
    cut: u16,
    mode: u8,
    junk: Vec<u8>,
}

impl_shrink_struct!(SweepMutationSeed { sweeps, cut, mode, junk });

#[test]
fn mutated_and_truncated_sweep_inputs_never_panic() {
    prop::check(
        &Config::default(),
        |rng| SweepMutationSeed {
            sweeps: gen_sweep_seed(rng),
            cut: rng.gen_range(0..=u16::MAX),
            mode: rng.gen_range(0..3u8),
            junk: gen_junk(rng),
        },
        |seed| {
            let text = print_sweeps(&gen_sweeps(&seed.sweeps));
            check_no_panic(&mutate(&text, seed.cut, seed.mode, &seed.junk))
        },
    );
}

#[test]
fn sweep_errors_are_spanned_and_specific() {
    // Each malformed sweep must be rejected with a diagnostic that names
    // the actual mistake and carries a source position.
    let cases: &[(&str, &str)] = &[
        (
            "sweep \"s\" {\n  choose \"g\" {\n    systems = [A]\n  }\n  \
             require = [picked(ghost, A)]\n}\n",
            "unknown choice group `ghost`",
        ),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    systems = [A]\n  }\n  \
             forbid = [picked(g, B)]\n}\n",
            "has no alternative `B`",
        ),
        (
            "sweep \"s\" {\n  limit = 0\n  choose \"g\" {\n    systems = [A]\n  }\n}\n",
            "sweep `limit` must be at least 1",
        ),
        ("sweep \"s\" {\n  seed = 1\n}\n", "no `choose` groups"),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    nics = [N]\n    optional = true\n  }\n}\n",
            "`optional` applies only to a `systems` group",
        ),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    systems = [A]\n    nics = [N]\n  }\n}\n",
            "already has an axis",
        ),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    param = link_speed\n  }\n}\n",
            "values",
        ),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    systems = [A]\n  }\n  \
             require = [pickt(g, A)]\n}\n",
            "unknown sweep constraint",
        ),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    systems = [A]\n  }\n  \
             choose \"g\" {\n    nics = [N]\n  }\n}\n",
            "duplicate choice group `g`",
        ),
        (
            "sweep \"s\" {\n  choose \"g\" {\n    systems = [A]\n  }\n}\n\n\
             sweep \"s\" {\n  choose \"g\" {\n    nics = [N]\n  }\n}\n",
            "duplicate sweep `s`",
        ),
    ];
    for (text, needle) in cases {
        let err = match load_str(text) {
            Err(e) => e,
            Ok(_) => panic!("accepted bad sweep:\n{text}"),
        };
        let rendered = err.to_string();
        assert!(
            rendered.contains(needle),
            "diagnostic {rendered:?} does not mention {needle:?} for:\n{text}"
        );
        assert!(err.span.is_some(), "error must carry a span: {rendered}");
        assert!(
            rendered.starts_with("<input>:"),
            "error must name its source: {rendered}"
        );
    }
}
