//! Property/fuzz suite for the `.narch` frontend.
//!
//! Invariants:
//! * **round-trip**: for any scenario document built from core values,
//!   `lower(parse(print(doc)))` is semantically equal to `doc` (JSON
//!   equality, which covers every field);
//! * **fixpoint**: printing the reloaded document reproduces the text
//!   byte-for-byte (printing is a formatter);
//! * **robustness**: mutated and truncated inputs are *rejected with a
//!   spanned error or accepted*, but the frontend never panics.

use netarch_core::component::{HardwareSpec, SystemSpec};
use netarch_core::prelude::*;
use netarch_dsl::{load_str, print_doc, print_scenario, QuerySpec};
use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{impl_shrink_struct, prop_assert, Rng};

/// Compact generation parameters; everything else derives from `stream`.
#[derive(Debug, Clone)]
struct DocSeed {
    stream: u64,
    n_systems: u8,
    n_hardware: u8,
    n_edges: u8,
    n_workloads: u8,
    n_queries: u8,
}

impl_shrink_struct!(DocSeed {
    stream,
    n_systems,
    n_hardware,
    n_edges,
    n_workloads,
    n_queries,
});

fn gen_seed(rng: &mut Rng) -> DocSeed {
    DocSeed {
        stream: rng.next_u64(),
        n_systems: rng.gen_range(1..6u8),
        n_hardware: rng.gen_range(0..4u8),
        n_edges: rng.gen_range(0..5u8),
        n_workloads: rng.gen_range(0..3u8),
        n_queries: rng.gen_range(0..4u8),
    }
}

/// Name pool mixing bare identifiers with every quoting edge case the
/// printer must escape: spaces, dashes, leading digits, keywords, empty.
const NAMES: &[&str] = &[
    "ALPHA",
    "beta_2",
    "_под",
    "odd name",
    "x-y",
    "9lead",
    "true",
    "",
    "with\"quote",
    "tab\there",
];

fn pick_name(rng: &mut Rng) -> String {
    NAMES[rng.gen_range(0..NAMES.len())].to_string()
}

fn pick_category(rng: &mut Rng) -> Category {
    match rng.gen_range(0..4u8) {
        0 => Category::Monitoring,
        1 => Category::NetworkStack,
        2 => Category::Custom(pick_name(rng)),
        _ => Category::Transport,
    }
}

fn pick_dimension(rng: &mut Rng) -> Dimension {
    match rng.gen_range(0..3u8) {
        0 => Dimension::Latency,
        1 => Dimension::Throughput,
        _ => Dimension::Custom(pick_name(rng)),
    }
}

fn pick_f64(rng: &mut Rng) -> f64 {
    match rng.gen_range(0..4u8) {
        0 => rng.gen_range(0..1000u32) as f64,
        // 1.. not 0..: `-0.0` would print as `-0`, which re-lexes as the
        // integer 0 and loses the sign bit.
        1 => -(rng.gen_range(1..100u32) as f64),
        2 => rng.gen_range(0..1000u32) as f64 / 64.0,
        _ => 0.0,
    }
}

fn gen_condition(rng: &mut Rng, depth: u8) -> Condition {
    let leaf_only = depth == 0;
    match rng.gen_range(0..if leaf_only { 9 } else { 12u8 }) {
        0 => Condition::True,
        1 => Condition::False,
        2 => Condition::SystemSelected(SystemId::new(pick_name(rng))),
        3 => Condition::CategoryFilled(pick_category(rng)),
        4 => Condition::NicFeature(Feature::new(pick_name(rng))),
        5 => Condition::SwitchFeature(Feature::new(pick_name(rng))),
        6 => Condition::ProvidedFeature(Feature::new(pick_name(rng))),
        7 => Condition::WorkloadProperty(Property::new(pick_name(rng))),
        8 => {
            let op = match rng.gen_range(0..5u8) {
                0 => CmpOp::Lt,
                1 => CmpOp::Le,
                2 => CmpOp::Gt,
                3 => CmpOp::Ge,
                _ => CmpOp::Eq,
            };
            Condition::Param(ParamName::new(pick_name(rng)), op, pick_f64(rng))
        }
        9 => Condition::Not(Box::new(gen_condition(rng, depth - 1))),
        10 => {
            let n = rng.gen_range(0..3u8);
            Condition::All((0..n).map(|_| gen_condition(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..3u8);
            Condition::Any((0..n).map(|_| gen_condition(rng, depth - 1)).collect())
        }
    }
}

fn gen_amount_term(rng: &mut Rng) -> AmountExpr {
    if rng.gen_bool(0.5) {
        AmountExpr::Const(rng.gen_range(0..10_000u32) as u64)
    } else {
        AmountExpr::ParamScaled {
            param: ParamName::new(pick_name(rng)),
            factor: pick_f64(rng),
        }
    }
}

/// Canonical amounts only: a `Sum` is flat with ≥ 2 terms — exactly the
/// shape the `+` surface grammar can express.
fn gen_amount(rng: &mut Rng) -> AmountExpr {
    if rng.gen_bool(0.25) {
        let n = rng.gen_range(2..4u8);
        AmountExpr::Sum((0..n).map(|_| gen_amount_term(rng)).collect())
    } else {
        gen_amount_term(rng)
    }
}

fn pick_resource(rng: &mut Rng) -> Resource {
    match rng.gen_range(0..4u8) {
        0 => Resource::Cores,
        1 => Resource::P4Stages,
        // Custom resources deliberately include names that shadow
        // built-ins ("cores") — the printer must escape those.
        2 => Resource::Custom("cores".to_string()),
        _ => Resource::Custom(pick_name(rng)),
    }
}

fn build_doc(seed: &DocSeed) -> (Catalog, Scenario, Vec<QuerySpec>) {
    let mut rng = Rng::seed_from_u64(seed.stream);
    let rng = &mut rng;
    let mut catalog = Catalog::new();
    let mut system_ids = Vec::new();
    for i in 0..seed.n_systems {
        let id = format!("S{i}_{}", pick_name(rng));
        system_ids.push(id.clone());
        let mut b = SystemSpec::builder(id, pick_category(rng));
        if rng.gen_bool(0.5) {
            b = b.name(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.solves(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            let cond = gen_condition(rng, 2);
            if rng.gen_bool(0.5) {
                b = b.requires_cited(pick_name(rng), cond, pick_name(rng));
            } else {
                b = b.requires(pick_name(rng), cond);
            }
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.consumes(pick_resource(rng), gen_amount(rng));
        }
        for _ in 0..rng.gen_range(0..2u8) {
            b = b.provides(pick_name(rng));
        }
        if rng.gen_bool(0.3) {
            b = b.cost(rng.gen_range(0..100_000u32) as u64);
        }
        if rng.gen_bool(0.3) {
            b = b.notes(pick_name(rng));
        }
        catalog.add_system(b.build()).expect("generated ids are unique");
    }
    for i in 0..seed.n_hardware {
        let kind = match i % 3 {
            0 => HardwareKind::Switch,
            1 => HardwareKind::Nic,
            _ => HardwareKind::Server,
        };
        let mut b = HardwareSpec::builder(format!("H{i}_{}", pick_name(rng)), kind);
        if rng.gen_bool(0.5) {
            b = b.model_name(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.feature(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.numeric(pick_name(rng), pick_f64(rng));
        }
        if rng.gen_bool(0.5) {
            b = b.cost(rng.gen_range(0..100_000u32) as u64);
        }
        catalog.add_hardware(b.build()).expect("generated ids are unique");
    }
    for _ in 0..seed.n_edges {
        let better = &system_ids[rng.gen_range(0..system_ids.len())];
        let worse = &system_ids[rng.gen_range(0..system_ids.len())];
        let mut edge = if rng.gen_bool(0.5) {
            OrderingEdge::strict(better.as_str(), worse.as_str(), pick_dimension(rng))
        } else {
            OrderingEdge::equal(better.as_str(), worse.as_str(), pick_dimension(rng))
        };
        if rng.gen_bool(0.5) {
            edge.condition = gen_condition(rng, 2);
        }
        if rng.gen_bool(0.3) {
            edge.citation = Some(pick_name(rng));
        }
        catalog.add_ordering(edge).expect("endpoints registered");
    }

    let mut scenario = Scenario::new(catalog.clone());
    for i in 0..seed.n_workloads {
        let mut b = Workload::builder(format!("W{i}_{}", pick_name(rng)));
        if rng.gen_bool(0.5) {
            b = b.name(pick_name(rng));
        }
        for _ in 0..rng.gen_range(0..3u8) {
            b = b.property(pick_name(rng));
        }
        if rng.gen_bool(0.5) {
            let lo = rng.gen_range(0..4u32);
            b = b.deployed_at(lo..lo + rng.gen_range(0..4u32));
        }
        b = b
            .peak_cores(rng.gen_range(0..5_000u32) as u64)
            .peak_bandwidth(rng.gen_range(0..200u32) as u64)
            .num_flows(rng.gen_range(0..100_000u32) as u64);
        for _ in 0..rng.gen_range(0..2u8) {
            b = b.needs(pick_name(rng));
        }
        if rng.gen_bool(0.5) {
            b = b.performance_bound(
                pick_dimension(rng),
                system_ids[rng.gen_range(0..system_ids.len())].as_str(),
            );
        }
        scenario = scenario.with_workload(b.build());
    }
    for _ in 0..rng.gen_range(0..3u8) {
        scenario = scenario.with_param(pick_name(rng), pick_f64(rng));
    }
    for _ in 0..rng.gen_range(0..3u8) {
        let rule = match rng.gen_range(0..3u8) {
            0 => RoleRule::Required,
            1 => RoleRule::Optional,
            _ => RoleRule::Forbidden,
        };
        scenario = scenario.with_role(pick_category(rng), rule);
    }
    for _ in 0..rng.gen_range(0..3u8) {
        let objective = match rng.gen_range(0..3u8) {
            0 => Objective::MaximizeDimension(pick_dimension(rng)),
            1 => Objective::MinimizeCost,
            _ => Objective::PreferCapability(Capability::new(pick_name(rng))),
        };
        scenario = scenario.with_objective(objective);
    }
    for _ in 0..rng.gen_range(0..2u8) {
        let id = SystemId::new(system_ids[rng.gen_range(0..system_ids.len())].as_str());
        scenario = scenario
            .with_pin(if rng.gen_bool(0.5) { Pin::Require(id) } else { Pin::Forbid(id) });
    }
    if rng.gen_bool(0.3) {
        scenario = scenario.with_budget(rng.gen_range(0..1_000_000u32) as u64);
    }
    if rng.gen_bool(0.5) {
        let candidates: Vec<HardwareId> =
            (0..seed.n_hardware).map(|i| HardwareId::new(format!("H{i}"))).collect();
        scenario = scenario.with_inventory(Inventory {
            server_candidates: candidates.clone(),
            nic_candidates: candidates.clone(),
            switch_candidates: candidates,
            num_servers: rng.gen_range(0..100u32) as u64,
            num_switches: rng.gen_range(0..10u32) as u64,
        });
    }

    let queries: Vec<QuerySpec> = (0..seed.n_queries)
        .map(|_| match rng.gen_range(0..6u8) {
            0 => QuerySpec::Check,
            1 => QuerySpec::Optimize,
            2 => QuerySpec::Capacity { max: rng.gen_range(1..512u32) as u64 },
            3 => QuerySpec::Enumerate { limit: rng.gen_range(1..16u32) as u64 },
            4 => QuerySpec::Questions { budget: rng.gen_range(1..512u32) as u64 },
            _ => QuerySpec::Compare {
                a: SystemId::new(system_ids[rng.gen_range(0..system_ids.len())].as_str()),
                b: SystemId::new(system_ids[rng.gen_range(0..system_ids.len())].as_str()),
                dimension: pick_dimension(rng),
            },
        })
        .collect();

    (catalog, scenario, queries)
}

fn full_text(scenario: &Scenario, queries: &[QuerySpec]) -> String {
    let mut text = print_scenario(scenario);
    text.push('\n');
    text.push_str(&netarch_dsl::print_queries(queries));
    text
}

#[test]
fn random_documents_round_trip_through_text() {
    prop::check(&Config::default(), gen_seed, |seed| {
        let (catalog, scenario, queries) = build_doc(seed);
        let text = full_text(&scenario, &queries);
        let doc = load_str(&text)
            .map_err(|e| format!("reload failed: {e}\n--- text ---\n{text}"))?;
        prop_assert!(
            netarch_rt::json::to_string(&doc.catalog)
                == netarch_rt::json::to_string(&catalog),
            "catalog drifted through text:\n{text}"
        );
        let reloaded = doc
            .scenario
            .as_ref()
            .ok_or_else(|| format!("scenario block lost:\n{text}"))?;
        prop_assert!(
            netarch_rt::json::to_string(reloaded) == netarch_rt::json::to_string(&scenario),
            "scenario drifted through text:\n{text}"
        );
        prop_assert!(doc.queries == queries, "queries drifted:\n{text}");
        Ok(())
    });
}

#[test]
fn printing_reloaded_documents_is_a_fixpoint() {
    prop::check(&Config::default(), gen_seed, |seed| {
        let (_, scenario, queries) = build_doc(seed);
        let text = full_text(&scenario, &queries);
        let doc = load_str(&text).map_err(|e| format!("reload failed: {e}"))?;
        let reprinted = print_doc(&doc);
        let again = load_str(&reprinted).map_err(|e| format!("reparse failed: {e}"))?;
        prop_assert!(
            print_doc(&again) == reprinted,
            "printer not a fixpoint:\n--- first ---\n{reprinted}"
        );
        Ok(())
    });
}

/// Mutation parameters: where to cut/flip and what to insert.
#[derive(Debug, Clone)]
struct MutationSeed {
    doc: DocSeed,
    cut: u16,
    mode: u8,
    junk: Vec<u8>,
}

impl_shrink_struct!(MutationSeed { doc, cut, mode, junk });

#[test]
fn mutated_and_truncated_inputs_never_panic() {
    let junk_bytes: &[u8] = b"{}[]()=\"\\#.*+<>x0 \n\t\x7f";
    prop::check(
        &Config::default(),
        |rng| MutationSeed {
            doc: gen_seed(rng),
            cut: rng.gen_range(0..=u16::MAX),
            mode: rng.gen_range(0..3u8),
            junk: gen_vec(rng, 1..=6, |r| junk_bytes[r.gen_range(0..junk_bytes.len())]),
        },
        |seed| {
            let (_, scenario, queries) = build_doc(&seed.doc);
            let text = full_text(&scenario, &queries);
            // Mutate at a char boundary so the input stays valid UTF-8.
            let mut at = seed.cut as usize % (text.len() + 1);
            while !text.is_char_boundary(at) {
                at -= 1;
            }
            let junk = String::from_utf8_lossy(&seed.junk).into_owned();
            let mutated = match seed.mode {
                0 => text[..at].to_string(), // truncation
                1 => format!("{}{}{}", &text[..at], junk, &text[at..]), // insertion
                _ => {
                    // Replacement: overwrite forward to the next boundary.
                    let mut end = (at + junk.len()).min(text.len());
                    while !text.is_char_boundary(end) {
                        end += 1;
                    }
                    format!("{}{}{}", &text[..at], junk, &text[end..])
                }
            };
            // The only acceptable outcomes: clean accept or a rendered,
            // position-carrying error. A panic fails the property.
            match load_str(&mutated) {
                Ok(_) => Ok(()),
                Err(e) => {
                    let rendered = e.to_string();
                    prop_assert!(
                        !rendered.is_empty(),
                        "empty diagnostic for mutated input"
                    );
                    Ok(())
                }
            }
        },
    );
}
