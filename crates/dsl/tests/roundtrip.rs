//! End-to-end frontend tests: parse → lower → print → parse → lower
//! stability, plus spanned-diagnostic shape on representative errors.

use netarch_core::component::SystemSpec;
use netarch_core::prelude::*;
use netarch_dsl::{load_str, print_doc, print_scenario, Loader, QuerySpec};

const EXAMPLE: &str = r#"
# A miniature catalog exercising every block kind.
system "SIMON" {
  category = monitoring
  solves   = [capture_delays, detect_queue_length]
  requires "simon-needs-nic-timestamps" {
    condition = nics.have(NIC_TIMESTAMPS)
    citation  = "Geng et al., NSDI 2019"
  }
  consumes { cores = 0.001 * num_flows }
}

system "PINGMESH" {
  category = monitoring
  solves   = [detect_packet_drops]
  cost_usd = 300
}

hardware "CATALYST" {
  kind     = switch
  model    = "Cisco Catalyst 9500-40X"
  features = [ECN]
  cost_usd = 24000
  attrs { port_bandwidth_gbps = 10  ports = 40 }
}

ordering {
  better    = SIMON
  worse     = PINGMESH
  dimension = monitoring_quality
  when      = link_speed_gbps >= 40
}

workload "inference_app" {
  properties = [dc_flows, short_flows]
  racks      = 0..3
  peak_cores = 2800
  num_flows  = 120000
  needs      = [capture_delays]
  bound { dimension = monitoring_quality  better_than = PINGMESH }
}

scenario {
  params    { link_speed_gbps = 100 }
  inventory { switches = [CATALYST]  num_switches = 2 }
  roles     { monitoring = required }
  objectives = [maximize(monitoring_quality), minimize_cost]
  pins       = [forbid(PINGMESH)]
  budget_usd = 100000
}

query "check" { }
query "capacity" { max = 64 }
query "compare" { a = SIMON  b = PINGMESH  dimension = monitoring_quality }
"#;

#[test]
fn example_document_lowers_to_expected_values() {
    let doc = load_str(EXAMPLE).expect("example must load");
    assert_eq!(doc.catalog.num_systems(), 2);
    assert_eq!(doc.catalog.num_hardware(), 1);
    assert_eq!(doc.catalog.order().edges().len(), 1);

    let simon = doc.catalog.system(&SystemId::new("SIMON")).unwrap();
    assert_eq!(simon.category, Category::Monitoring);
    assert_eq!(simon.requires.len(), 1);
    assert_eq!(
        simon.requires[0].condition,
        Condition::NicFeature(Feature::new("NIC_TIMESTAMPS"))
    );
    assert_eq!(
        simon.resources[0].amount,
        AmountExpr::ParamScaled { param: ParamName::new("num_flows"), factor: 0.001 }
    );

    let edge = &doc.catalog.order().edges()[0];
    assert_eq!(
        edge.condition,
        Condition::Param(ParamName::new("link_speed_gbps"), CmpOp::Ge, 40.0)
    );

    assert_eq!(doc.workloads.len(), 1);
    assert_eq!(doc.workloads[0].racks, 0..3);
    assert_eq!(doc.workloads[0].bounds.len(), 1);

    let scenario = doc.scenario.as_ref().expect("scenario block");
    assert_eq!(scenario.params[&ParamName::new("link_speed_gbps")], 100.0);
    assert_eq!(scenario.roles[&Category::Monitoring], RoleRule::Required);
    assert_eq!(scenario.inventory.num_switches, 2);
    assert_eq!(scenario.pins, vec![Pin::Forbid(SystemId::new("PINGMESH"))]);
    assert_eq!(scenario.budget_usd, Some(100000));

    assert_eq!(
        doc.queries,
        vec![
            QuerySpec::Check,
            QuerySpec::Capacity { max: 64 },
            QuerySpec::Compare {
                a: SystemId::new("SIMON"),
                b: SystemId::new("PINGMESH"),
                dimension: Dimension::MonitoringQuality,
            },
        ]
    );
}

#[test]
fn print_parse_print_is_a_fixpoint() {
    let doc = load_str(EXAMPLE).unwrap();
    let printed = print_doc(&doc);
    let redone = load_str(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    assert_eq!(print_doc(&redone), printed);
    // And semantics are preserved, byte-for-byte at the JSON level.
    assert_eq!(
        netarch_rt::json::to_string(&redone.catalog),
        netarch_rt::json::to_string(&doc.catalog)
    );
    let (a, b) = (redone.scenario.unwrap(), doc.scenario.unwrap());
    assert_eq!(netarch_rt::json::to_string(&a), netarch_rt::json::to_string(&b));
    assert_eq!(redone.queries, doc.queries);
}

#[test]
fn printed_scenario_of_rust_built_values_round_trips() {
    // Build values through the core builders (escape-hatch names included),
    // print, reload, and demand JSON equality.
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("ODD", Category::Custom("cache tier".into()))
                .solves("odd capability")
                .requires("needs-big-param", Condition::Param(ParamName::new("x y"), CmpOp::Lt, 2.5))
                .consumes(Resource::Custom("cores".into()), AmountExpr::Const(3))
                .consumes(Resource::Custom("fpga-luts".into()), AmountExpr::Const(1))
                .provides("ODD FEATURE")
                .build(),
        )
        .unwrap();
    catalog
        .add_system(SystemSpec::builder("PLAIN", Category::Transport).build())
        .unwrap();
    catalog
        .add_ordering(OrderingEdge::equal("ODD", "PLAIN", Dimension::Custom("weird dim".into())))
        .unwrap();
    let scenario = Scenario::new(catalog)
        .with_workload(Workload::builder("w").property("wan traffic").build())
        .with_param("plain", 1.0)
        .with_param("odd name", 2.0)
        .with_role(Category::Custom("cache tier".into()), RoleRule::Required)
        .with_objective(Objective::MaximizeDimension(Dimension::Custom("weird dim".into())));

    let printed = print_scenario(&scenario);
    let doc = load_str(&printed).unwrap_or_else(|e| panic!("reload failed: {e}\n{printed}"));
    let reloaded = doc.scenario.expect("scenario block printed");
    assert_eq!(
        netarch_rt::json::to_string(&reloaded),
        netarch_rt::json::to_string(&scenario),
        "printed text:\n{printed}"
    );
}

#[test]
fn loader_merges_sources_and_defers_ordering_endpoints() {
    let mut loader = Loader::new();
    // Ordering arrives before the file that defines its endpoints.
    loader
        .add_source(
            "edges.narch",
            "ordering { better = A  worse = B  dimension = latency }",
        )
        .unwrap();
    loader
        .add_source(
            "systems.narch",
            "system \"A\" { category = transport }\nsystem \"B\" { category = transport }",
        )
        .unwrap();
    let doc = loader.finish().unwrap();
    assert_eq!(doc.catalog.order().edges().len(), 1);
}

#[test]
fn errors_carry_source_and_span() {
    let err = load_str("system \"X\" { category = monitring }").unwrap_err();
    assert!(err.to_string().contains("<input>:1:25"), "got: {err}");
    assert!(err.to_string().contains("unknown category `monitring`"), "got: {err}");

    let mut loader = Loader::new();
    let err = loader.add_source("bad.narch", "system \"X\" {").unwrap_err();
    assert!(err.to_string().starts_with("bad.narch:1:"), "got: {err}");

    // Unknown ordering endpoint is attributed to the ordering block.
    let err = load_str("ordering { better = A  worse = B  dimension = latency }").unwrap_err();
    assert!(err.to_string().contains("unknown system"), "got: {err}");

    // Duplicate attribute.
    let err =
        load_str("system \"X\" { category = monitoring\n category = firewall }").unwrap_err();
    assert!(err.to_string().contains("duplicate attribute `category`"), "got: {err}");

    // A second scenario block, even across sources, is rejected.
    let mut loader = Loader::new();
    loader.add_source("a.narch", "scenario { }").unwrap();
    loader.add_source("b.narch", "scenario { }").unwrap();
    let err = loader.finish().unwrap_err();
    assert!(err.to_string().contains("more than one `scenario`"), "got: {err}");
}

#[test]
fn missing_scenario_block_is_a_helpful_error() {
    let doc = load_str("system \"A\" { category = transport }").unwrap();
    let err = doc.require_scenario().unwrap_err();
    assert!(err.to_string().contains("no `scenario` block"), "got: {err}");
}
