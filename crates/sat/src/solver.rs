//! The CDCL solver.
//!
//! A conflict-driven clause-learning SAT solver in the MiniSat lineage:
//! two-watched-literal propagation with blocker literals, first-UIP conflict
//! analysis with clause minimization, exponential VSIDS decision ordering,
//! phase saving, Luby-sequence restarts, and LBD/activity-ranked deletion of
//! learnt clauses. Solving under assumptions yields an unsatisfiable core
//! (a subset of the assumptions), which the upper layers use for MUS
//! extraction and architecture-design diagnosis.
//!
//! At restart boundaries the solver additionally runs certified
//! *inprocessing* (see the `simplify` submodule): subsumption and
//! self-subsumption over occurrence lists, clause vivification, and bounded
//! variable elimination under a freeze set, with every derived or deleted
//! clause logged to the DRAT proof. Conflicts whose backjump would discard
//! many levels can instead backtrack chronologically by a single level
//! (`SolverConfig::chrono_threshold`).

#[path = "simplify.rs"]
mod simplify;

use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use crate::proof::{DratProof, ProofSink};
use crate::stats::Stats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; when
    /// assumptions were supplied, [`Solver::unsat_core`] names the culprits.
    Unsat,
    /// The conflict budget was exhausted before an answer was reached.
    Unknown,
}

/// One entry in a watch list: the clause plus a cached "blocker" literal
/// whose truth lets propagation skip loading the clause at all.
#[derive(Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// A learnt-clause exchange channel between cooperating solvers (the
/// portfolio's sharing fabric — see [`crate::portfolio`]).
///
/// The solver offers every learnt clause through [`ClauseExchange::export`]
/// together with its literal-block distance, and pulls foreign clauses in
/// through [`ClauseExchange::import`] at restart boundaries (the only point
/// where the trail is guaranteed to be at the root level). Implementations
/// decide the filtering policy (e.g. "glue clauses only"); `export` returns
/// whether the clause was actually published so the solver's
/// [`Stats::exported_clauses`] counter stays truthful.
///
/// Imports are disabled while DRAT proof logging is active: a clause learnt
/// by *another* solver is not derivable from this solver's proof log, so
/// accepting it would make the recorded proof unreplayable.
pub trait ClauseExchange: Send {
    /// Offers a learnt clause (with its LBD). Returns `true` if published.
    fn export(&mut self, lits: &[Lit], lbd: u32) -> bool;

    /// Appends foreign clauses (with their recorded LBDs) to `buf`.
    fn import(&mut self, buf: &mut Vec<(Vec<Lit>, u32)>);
}

/// Tunable solver parameters. The defaults match common CDCL practice.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Multiplicative VSIDS decay applied after each conflict.
    pub var_decay: f64,
    /// Activity decay for learnt clauses.
    pub clause_decay: f64,
    /// Conflicts before the first restart (scaled by the Luby sequence).
    pub restart_base: u64,
    /// Disable restarts entirely (ablation switch).
    pub restarts_enabled: bool,
    /// Disable learnt-clause deletion (ablation switch).
    pub reduce_enabled: bool,
    /// Disable VSIDS, falling back to lowest-index decisions (ablation switch).
    pub vsids_enabled: bool,
    /// Disable learned-clause minimization (ablation switch).
    pub minimize_enabled: bool,
    /// Initial cap on learnt clauses, as a fraction of problem clauses.
    pub learnt_size_factor: f64,
    /// Growth of the learnt-clause cap at each reduction.
    pub learnt_size_inc: f64,
    /// Initial saved phase for fresh variables (portfolio diversification:
    /// a worker that starts "all true" explores the opposite corner of the
    /// search space from the default "all false" worker).
    pub default_polarity: bool,
    /// Probability that a decision picks a seeded-random variable and
    /// polarity instead of the VSIDS maximum (0.0 disables; portfolio
    /// workers use small values for tie-breaking diversification).
    pub random_decision_freq: f64,
    /// Seed for the decision RNG. All randomness in the solver flows from
    /// this value — there is no ambient entropy — so equal configs replay
    /// identical searches.
    pub random_seed: u64,
    /// Enable restart-boundary inprocessing: subsumption/self-subsumption,
    /// clause vivification, and bounded variable elimination (see
    /// [`Solver::inprocess`]). Every simplification emits DRAT, so proofs
    /// stay checkable with inprocessing on.
    pub inprocessing_enabled: bool,
    /// Restarts before the *first* inprocessing round (1 = after the first
    /// restart). The gap doubles after every round, so a long search sees
    /// O(log restarts) rounds rather than paying the pass cost linearly.
    pub inprocess_interval: u64,
    /// Unit-propagation budget per vivification pass; bounds the work one
    /// inprocessing round spends probing clauses.
    pub vivify_budget: u64,
    /// Bounded variable elimination skips variables whose positive×negative
    /// occurrence product exceeds this cap (keeps resolvent generation
    /// quadratic only on genuinely cheap variables).
    pub bve_product_limit: usize,
    /// Chronological backtracking threshold: when a conflict's backjump
    /// would skip more than this many decision levels, backtrack just one
    /// level instead (Nadel & Ryvchin). `0` disables chronological
    /// backtracking.
    pub chrono_threshold: u32,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            restarts_enabled: true,
            reduce_enabled: true,
            vsids_enabled: true,
            minimize_enabled: true,
            learnt_size_factor: 1.0 / 3.0,
            learnt_size_inc: 1.1,
            default_polarity: false,
            random_decision_freq: 0.0,
            random_seed: 0,
            inprocessing_enabled: true,
            inprocess_interval: 4,
            vivify_budget: 20_000,
            bve_product_limit: 64,
            chrono_threshold: 100,
        }
    }
}

/// A conflict-driven clause-learning SAT solver.
///
/// # Example
/// ```
/// use netarch_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_eq!(s.model_value(b.var()), Some(true));
/// ```
pub struct Solver {
    config: SolverConfig,
    db: ClauseDb,
    /// Watch lists indexed by literal code; `watches[l]` holds clauses
    /// watching `!l` — i.e. clauses to visit when `l` becomes true.
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// The clause that forced each assignment (INVALID for decisions).
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f64,
    order: VarHeap,
    /// Saved phase per variable, used to repeat prior polarities.
    polarity: Vec<bool>,
    /// Scratch marker used by conflict analysis.
    seen: Vec<bool>,
    /// False once the clause set is unsatisfiable at level 0.
    ok: bool,
    /// Snapshot of the full assignment taken when a solve returns
    /// [`SolveResult::Sat`]; cleared on every non-SAT outcome so stale
    /// models can never be read after an UNSAT or budget-exhausted solve.
    model: Vec<LBool>,
    assumptions: Vec<Lit>,
    conflict_core: Vec<Lit>,
    /// Conflict budget for bounded solving; `None` = unbounded.
    budget: Option<u64>,
    /// DRAT proof output, when enabled (see [`Solver::record_proof`]).
    proof: Option<ProofOut>,
    /// Cooperative cancellation flag, polled once per search-loop
    /// iteration (i.e. at least once per conflict or decision).
    interrupt: Option<Arc<AtomicBool>>,
    /// Learnt-clause exchange channel (portfolio sharing).
    exchange: Option<Box<dyn ClauseExchange>>,
    /// True when the most recent solve returned early because the
    /// interrupt flag was observed.
    last_interrupted: bool,
    /// xorshift64* state for seeded decision randomness.
    rng_state: u64,
    /// Variables exempt from bounded variable elimination: anything the
    /// caller may still mention in future clauses or assumptions (the
    /// freeze contract — see [`Solver::freeze_var`]). Assumption variables
    /// are frozen automatically by [`Solver::solve_with`].
    frozen: Vec<bool>,
    /// Variables removed by bounded variable elimination. They no longer
    /// occur in any live clause, are skipped by decision heuristics, and
    /// may not appear in newly added clauses or assumptions; their model
    /// values are restored by reconstruction from `elim_stack`.
    eliminated: Vec<bool>,
    /// Clauses deleted by variable elimination, with the pivot literal each
    /// contained. Walked in reverse on every SAT outcome to extend the
    /// model so it satisfies the *original* formula.
    elim_stack: Vec<(Lit, Vec<Lit>)>,
    /// Restarts since the last inprocessing round (cadence counter).
    restarts_since_inprocess: u64,
    /// Current restart gap before the next inprocessing round. Starts at
    /// `config.inprocess_interval` and doubles after every round, so early
    /// rounds strip the cheap redundancy while long searches are not
    /// dominated by pass overhead. `0` means "not yet initialised".
    inprocess_gap: u64,
    stats: Stats,
}

/// Where proof events go: an owned in-memory recorder (retrievable via
/// [`Solver::recorded_proof`]) or an arbitrary caller-supplied sink.
enum ProofOut {
    Recorder(DratProof),
    Stream(Box<dyn ProofSink>),
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        // Mix the seed so state is never zero (xorshift's fixed point).
        let rng_state = config
            .random_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D)
            | 1;
        Solver {
            config,
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            order: VarHeap::new(),
            polarity: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            budget: None,
            proof: None,
            interrupt: None,
            exchange: None,
            last_interrupted: false,
            rng_state,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            restarts_since_inprocess: 0,
            inprocess_gap: 0,
            stats: Stats::default(),
        }
    }

    /// Installs a cooperative cancellation flag. The search loop polls it
    /// once per iteration (so at least once per conflict/decision); when it
    /// reads `true` the running solve unwinds to the root level and returns
    /// [`SolveResult::Unknown`], with [`Solver::last_interrupted`] set.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Removes any installed interrupt flag.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// True when the most recent solve returned [`SolveResult::Unknown`]
    /// because the interrupt flag was observed (as opposed to budget
    /// exhaustion).
    pub fn last_interrupted(&self) -> bool {
        self.last_interrupted
    }

    /// Installs a learnt-clause exchange channel (portfolio sharing).
    /// Exports flow on every learnt clause; imports are pulled at restart
    /// boundaries, and are skipped entirely while proof logging is active
    /// (a foreign clause would make the local DRAT log unreplayable).
    pub fn set_exchange(&mut self, exchange: Box<dyn ClauseExchange>) {
        self.exchange = Some(exchange);
    }

    /// Starts recording a DRAT proof in memory. Every clause the solver
    /// derives (1UIP learning, minimization, level-0 simplification, the
    /// assumption-core clause) is logged as an addition, and every clause it
    /// drops (learnt-clause reduction, `simplify`) as a deletion. Retrieve
    /// the proof with [`Solver::recorded_proof`] or [`Solver::take_proof`]
    /// and validate it with [`crate::checker`].
    ///
    /// Recording starts from the call onward, so enable it before adding
    /// clauses; proof logging off costs a single branch per derivation.
    pub fn record_proof(&mut self) {
        self.proof = Some(ProofOut::Recorder(DratProof::new()));
    }

    /// Redirects proof events to an arbitrary [`ProofSink`] instead of the
    /// in-memory recorder (e.g. a streaming serializer).
    pub fn set_proof_sink(&mut self, sink: Box<dyn ProofSink>) {
        self.proof = Some(ProofOut::Stream(sink));
    }

    /// The proof recorded so far, when [`Solver::record_proof`] is active.
    pub fn recorded_proof(&self) -> Option<&DratProof> {
        match &self.proof {
            Some(ProofOut::Recorder(p)) => Some(p),
            _ => None,
        }
    }

    /// Takes ownership of the recorded proof, disabling further logging.
    pub fn take_proof(&mut self) -> Option<DratProof> {
        match self.proof.take() {
            Some(ProofOut::Recorder(p)) => Some(p),
            _ => None,
        }
    }

    /// True while proof logging (recorder or stream) is enabled.
    pub fn proof_logging_enabled(&self) -> bool {
        self.proof.is_some()
    }

    #[inline]
    fn proof_add(&mut self, clause: &[Lit]) {
        if let Some(out) = &mut self.proof {
            match out {
                ProofOut::Recorder(p) => p.add_clause(clause),
                ProofOut::Stream(s) => s.add_clause(clause),
            }
        }
    }

    #[inline]
    fn proof_delete(&mut self, clause: &[Lit]) {
        if let Some(out) = &mut self.proof {
            match out {
                ProofOut::Recorder(p) => p.delete_clause(clause),
                ProofOut::Stream(s) => s.delete_clause(clause),
            }
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(ClauseRef::INVALID);
        self.activity.push(0.0);
        self.polarity.push(self.config.default_polarity);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.frozen.push(false);
        self.eliminated.push(false);
        self.order.insert(v, &self.activity);
        v
    }

    /// Exempts a variable from bounded variable elimination, permanently.
    ///
    /// The freeze contract: any variable the caller may still mention in a
    /// *future* `add_clause` or `solve_with` call must be frozen before
    /// inprocessing can run, because an eliminated variable no longer exists
    /// in the simplified formula (mentioning one afterwards panics).
    /// Assumption variables are frozen automatically when passed to
    /// [`Solver::solve_with`]; incremental encoders (e.g. `netarch-logic`)
    /// freeze every variable they allocate.
    pub fn freeze_var(&mut self, var: Var) {
        self.frozen[var.index()] = true;
    }

    /// Re-admits a variable to bounded variable elimination, undoing
    /// [`Solver::freeze_var`].
    ///
    /// The caller asserts that no *future* `add_clause` or `solve_with`
    /// call will mention the variable (or that it will be re-frozen first):
    /// once a later inprocessing round eliminates it, mentioning it panics.
    /// This is how temporary pins — e.g. enumeration projections, which
    /// only need their variables alive while blocking clauses are being
    /// added — avoid exempting those variables from elimination for the
    /// rest of an incremental session. Note that [`Solver::solve_with`]
    /// freezes assumption variables permanently; thawing one of those
    /// breaks that contract and is the caller's responsibility.
    pub fn thaw_var(&mut self, var: Var) {
        self.frozen[var.index()] = false;
    }

    /// True when the variable is exempt from variable elimination.
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen[var.index()]
    }

    /// True when the variable has been removed by variable elimination.
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.eliminated[var.index()]
    }

    /// Ensures at least `n` variables exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.db.num_live()
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Limits the next `solve` call to roughly `conflicts` conflicts;
    /// exceeded budgets yield [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.budget = conflicts;
    }

    /// Adds a clause. Returns `false` if the solver is already known
    /// unsatisfiable (the clause is then ignored).
    ///
    /// Tautologies are silently dropped; duplicate literals are removed;
    /// empty clauses make the instance unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        let mut c: Vec<Lit> = lits.into_iter().collect();
        for l in &c {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l:?} references an unallocated variable"
            );
            assert!(
                !self.eliminated[l.var().index()],
                "literal {l:?} references an eliminated variable; variables \
                 mentioned by future clauses must be frozen (Solver::freeze_var) \
                 before inprocessing runs"
            );
        }
        c.sort_unstable();
        c.dedup();
        // Drop tautologies and false literals; detect satisfied clauses.
        let mut simplified = Vec::with_capacity(c.len());
        let mut i = 0;
        while i < c.len() {
            let l = c[i];
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: var appears with both signs
            }
            match self.lit_value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // falsified at level 0: drop literal
                LBool::Undef => simplified.push(l),
            }
            i += 1;
        }
        // A clause that level-0 simplification actually changed is, from the
        // proof's perspective, a derived clause: log it so the checker can
        // validate the strengthening (the stripped literals are all
        // root-falsified, so the simplified clause is RUP).
        let was_strengthened = simplified.len() != c.len();
        match simplified.len() {
            0 => {
                self.proof_add(&[]);
                self.ok = false;
                false
            }
            1 => {
                if was_strengthened {
                    self.proof_add(&simplified);
                }
                self.enqueue(simplified[0], ClauseRef::INVALID);
                if self.propagate().is_some() {
                    self.proof_add(&[]);
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                if was_strengthened {
                    self.proof_add(&simplified);
                }
                let cref = self.db.add(&simplified, false);
                self.attach(cref);
                true
            }
        }
    }

    /// Solves with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::unsat_core`] returns the subset
    /// of assumptions that participated in the refutation.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.conflict_core.clear();
        self.last_interrupted = false;
        if !self.ok {
            // Even the short-circuit path must invalidate the model: a
            // caller that ignores the UNSAT result must not be able to read
            // the satisfying assignment of an earlier solve.
            self.model.clear();
            return SolveResult::Unsat;
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption {l:?} references an unallocated variable"
            );
            assert!(
                !self.eliminated[l.var().index()],
                "assumption {l:?} references an eliminated variable; freeze \
                 variables assumed across solves (Solver::freeze_var)"
            );
            // Assumption variables are frozen permanently: callers reuse
            // assumption literals across solves, so eliminating one between
            // solves would invalidate the incremental session protocol.
            self.frozen[l.var().index()] = true;
        }
        self.assumptions = assumptions.to_vec();
        self.backtrack_to(0);
        self.stats.solves += 1;

        let mut max_learnt =
            (self.db.num_original() as f64 * self.config.learnt_size_factor).max(100.0);
        let mut restart_num = 0u64;
        let budget_start = self.stats.conflicts;

        loop {
            let restart_limit = if self.config.restarts_enabled {
                luby(restart_num) * self.config.restart_base
            } else {
                u64::MAX
            };
            restart_num += 1;
            match self.search(restart_limit, &mut max_learnt, budget_start) {
                SearchOutcome::Sat => {
                    // Snapshot the full assignment before rewinding the
                    // trail; the model stays readable until the next solve
                    // while the search structures return to the root level,
                    // keeping the solver immediately reusable.
                    self.model.clear();
                    self.model.extend_from_slice(&self.assigns);
                    // Variables removed by elimination are unassigned in the
                    // search; give them values satisfying the deleted
                    // clauses so the model holds for the original formula.
                    self.extend_model();
                    self.backtrack_to(0);
                    return SolveResult::Sat;
                }
                SearchOutcome::Unsat => {
                    self.model.clear();
                    self.backtrack_to(0);
                    return SolveResult::Unsat;
                }
                SearchOutcome::Restart => {
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                    // Restart boundaries are the one point where the trail
                    // is guaranteed to be at the root level, so foreign
                    // clauses can be integrated without repair work.
                    if !self.import_shared() {
                        self.model.clear();
                        return SolveResult::Unsat;
                    }
                    // Restart boundaries are also where inprocessing runs:
                    // the trail is at root level, so clauses can be deleted,
                    // strengthened, and resolved away without repair work.
                    if !self.maybe_inprocess() {
                        self.model.clear();
                        return SolveResult::Unsat;
                    }
                }
                SearchOutcome::BudgetExhausted => {
                    self.model.clear();
                    self.backtrack_to(0);
                    return SolveResult::Unknown;
                }
                SearchOutcome::Interrupted => {
                    self.stats.interrupts += 1;
                    self.model.clear();
                    self.backtrack_to(0);
                    self.last_interrupted = true;
                    return SolveResult::Unknown;
                }
            }
        }
    }

    /// Value of `var` in the model of the most recent solve.
    ///
    /// Returns `None` for every variable unless the most recent solve
    /// returned [`SolveResult::Sat`]: the model snapshot is cleared on
    /// UNSAT and budget-exhausted outcomes, so a stale assignment from an
    /// earlier SAT solve can never leak through.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).and_then(|v| v.to_bool())
    }

    /// Value of a literal in the most recent satisfying model.
    pub fn model_lit_value(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit.var())
            .map(|b| if lit.is_positive() { b } else { !b })
    }

    /// After an unsatisfiable `solve_with`, the subset of assumption
    /// literals that the refutation relied on.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Returns true while the clause set is not yet known unsatisfiable.
    pub fn is_consistent(&self) -> bool {
        self.ok
    }

    /// Permanently retires an activation literal by asserting `!lit` as a
    /// root-level unit. Every clause gated on `lit` (i.e. containing `!lit`)
    /// becomes root-satisfied garbage that the next [`Solver::simplify`]
    /// call reclaims. This is the "query teardown" half of the incremental
    /// session protocol: destructive constraints are added as `lit`-gated
    /// clauses, activated by assuming `lit`, and dissolved here — leaving
    /// learnt clauses, activity scores, and saved phases intact.
    ///
    /// Returns `false` when the solver is already known unsatisfiable.
    pub fn retire(&mut self, lit: Lit) -> bool {
        self.stats.retired_activations += 1;
        self.add_clause([!lit])
    }

    /// Level-0 simplification: removes clauses satisfied by root-level
    /// assignments and strips falsified literals from the rest, then
    /// rebuilds the watch lists. Preserves satisfiability and models.
    ///
    /// Useful between incremental batches once many units have been
    /// derived. Returns `false` when the instance is (or becomes) known
    /// unsatisfiable.
    pub fn simplify(&mut self) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.proof_add(&[]);
            self.ok = false;
            return false;
        }
        // Collect surviving clauses with falsified literals stripped.
        let mut survivors: Vec<(Vec<Lit>, bool)> = Vec::new();
        let all: Vec<ClauseRef> = (0..self.db.len())
            .map(|i| ClauseRef(i as u32))
            .filter(|&c| !self.db.is_deleted(c))
            .collect();
        for cref in all {
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            let satisfied = lits.iter().any(|&l| self.lit_value(l) == LBool::True);
            if satisfied {
                self.proof_delete(&lits);
                self.stats.garbage_collected_clauses += 1;
                continue;
            }
            let remaining: Vec<Lit> = lits
                .iter()
                .copied()
                .filter(|&l| self.lit_value(l) != LBool::False)
                .collect();
            debug_assert!(
                remaining.len() >= 2,
                "a unit/empty clause at level 0 would have propagated or conflicted"
            );
            if remaining.len() != lits.len() {
                // Strengthen-then-drop: the stripped clause is RUP (the
                // removed literals are root-false), and only after it is in
                // the proof may the original clause be deleted.
                self.proof_add(&remaining);
                self.proof_delete(&lits);
            }
            survivors.push((remaining, self.db.is_learnt(cref)));
        }
        // Rebuild the database and watches; keep assignments/trail.
        self.db = ClauseDb::new();
        for ws in &mut self.watches {
            ws.clear();
        }
        for r in &mut self.reason {
            *r = ClauseRef::INVALID;
        }
        for (lits, learnt) in survivors {
            let cref = self.db.add(&lits, learnt);
            self.attach(cref);
        }
        true
    }


    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn lit_value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].under_polarity(lit.is_positive())
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn attach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        debug_assert!(lits.len() >= 2);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    fn enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
        self.stats.propagations += 1;
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let mut i = 0;
            let mut j = 0;
            // Take the watch list out to satisfy the borrow checker; it is
            // restored (with retained watchers compacted) before returning.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: the blocker is already true.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    // Normalize so the false literal (!p) is in slot 1.
                    let lits = self.db.lits_mut(cref);
                    if lits[0] == !p {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], !p);
                }
                let first = self.db.lits(cref)[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher { cref, blocker: first };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.lits(cref).len();
                for k in 2..len {
                    let lk = self.db.lits(cref)[k];
                    if self.lit_value(lk) != LBool::False {
                        self.db.lits_mut(cref).swap(1, k);
                        self.watches[(!lk).code()].push(Watcher { cref, blocker: first });
                        continue 'watchers;
                    }
                }
                // No replacement: clause is unit or conflicting.
                ws[j] = Watcher { cref, blocker: first };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: copy remaining watchers and stop.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        i += 1;
                        j += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, cref);
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut trail_index = self.trail.len();

        loop {
            if self.db.is_learnt(cref) {
                let bump = self.clause_inc;
                if self.db.bump_activity(cref, bump) {
                    self.db.rescale_activities(1e100);
                    self.clause_inc /= 1e100;
                }
            }
            let lits: Vec<Lit> = self.db.lits(cref).to_vec();
            let skip_first = usize::from(p.is_some());
            for &q in &lits[skip_first..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to expand.
            loop {
                trail_index -= 1;
                if self.seen[self.trail[trail_index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[trail_index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            cref = self.reason[lit.var().index()];
            debug_assert_ne!(cref, ClauseRef::INVALID);
        }

        if self.config.minimize_enabled {
            self.minimize(&mut learnt);
        }

        // Compute backtrack level: the second-highest level in the clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        // Clear the seen markers for the literals kept in the clause.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backtrack_level)
    }

    /// Local clause minimization: drop literals whose reason clause is fully
    /// subsumed by the remaining learnt literals.
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        // `seen` is still set for all learnt literals at this point except
        // the asserting one; re-mark everything to be safe.
        for &l in learnt.iter() {
            self.seen[l.var().index()] = true;
        }
        let mut kept = vec![learnt[0]];
        for &l in &learnt[1..] {
            let reason = self.reason[l.var().index()];
            if reason == ClauseRef::INVALID {
                kept.push(l);
                continue;
            }
            let redundant = self
                .db
                .lits(reason)
                .iter()
                .all(|&q| q == !l || self.seen[q.var().index()] || self.level[q.var().index()] == 0);
            if redundant {
                self.stats.minimized_literals += 1;
            } else {
                kept.push(l);
            }
        }
        for &l in learnt.iter() {
            self.seen[l.var().index()] = false;
        }
        *learnt = kept;
    }

    /// Literal-block distance: number of distinct decision levels in a clause.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.increased(var, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.clause_inc /= self.config.clause_decay;
    }

    fn backtrack_to(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            self.polarity[v] = lit.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = ClauseRef::INVALID;
            self.order.insert(lit.var(), &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = bound.min(self.qhead);
    }

    /// Pulls foreign clauses from the exchange at a restart boundary (trail
    /// at root level). Returns `false` when an import makes the instance
    /// unsatisfiable outright. No-op while proof logging is active: foreign
    /// clauses are not derivable in the local DRAT log.
    fn import_shared(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.exchange.is_none() || self.proof.is_some() {
            return self.ok;
        }
        let mut incoming: Vec<(Vec<Lit>, u32)> = Vec::new();
        self.exchange.as_mut().unwrap().import(&mut incoming);
        for (lits, lbd) in incoming {
            if !self.integrate_import(&lits, lbd) {
                self.ok = false;
                return false;
            }
        }
        // Imported units may cascade; settle propagation before searching.
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        true
    }

    /// Integrates one foreign learnt clause at the root level, applying the
    /// same normalization as [`Solver::add_clause`]. Returns `false` when
    /// the clause refutes the instance.
    fn integrate_import(&mut self, lits: &[Lit], lbd: u32) -> bool {
        let mut c: Vec<Lit> = lits
            .iter()
            .copied()
            .filter(|l| l.var().index() < self.num_vars())
            .collect();
        if c.len() != lits.len() {
            // A clause mentioning variables this solver never allocated
            // cannot come from a well-formed portfolio; drop it.
            return true;
        }
        if c.iter().any(|l| self.eliminated[l.var().index()]) {
            // This worker eliminated a variable the foreign clause still
            // mentions; re-introducing it would undo the elimination, so
            // the import is skipped (sound: imports are only ever pruning).
            return true;
        }
        c.sort_unstable();
        c.dedup();
        let mut simplified = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology
            }
            match self.lit_value(l) {
                LBool::True => return true, // root-satisfied: nothing to learn
                LBool::False => {}
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => false,
            1 => {
                self.enqueue(simplified[0], ClauseRef::INVALID);
                self.stats.imported_clauses += 1;
                self.propagate().is_none()
            }
            len => {
                let cref = self.db.add(&simplified, true);
                self.db.set_lbd(cref, lbd.clamp(1, len as u32));
                self.attach(cref);
                self.stats.imported_clauses += 1;
                true
            }
        }
    }

    /// xorshift64*: the only source of randomness in the solver, fully
    /// determined by `SolverConfig::random_seed`.
    #[inline]
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Occasionally picks a seeded-random unassigned variable (and random
    /// polarity) instead of the VSIDS maximum. The skipped heap entries are
    /// harmless: `backtrack_to` re-inserts unassigned variables, and
    /// `VarHeap::insert` is idempotent.
    fn pick_random_decision(&mut self) -> Option<Lit> {
        let n = self.num_vars();
        if n == 0 {
            return None;
        }
        let r = self.next_rand();
        let start = (r % n as u64) as usize;
        let sign = (r >> 32) & 1 == 1;
        for off in 0..n {
            let v = Var::from_index((start + off) % n);
            if self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()] {
                return Some(Lit::new(v, sign));
            }
        }
        None
    }

    fn pick_decision(&mut self) -> Option<Lit> {
        if self.config.random_decision_freq > 0.0 {
            let r = self.next_rand() as f64 / u64::MAX as f64;
            if r < self.config.random_decision_freq {
                if let Some(lit) = self.pick_random_decision() {
                    self.stats.random_decisions += 1;
                    return Some(lit);
                }
            }
        }
        if self.config.vsids_enabled {
            // Eliminated variables are skipped (they occur in no live clause
            // and get their values from model reconstruction); dropping them
            // from the heap here is permanent, since they are never assigned
            // and thus never re-inserted by `backtrack_to`.
            while let Some(v) = self.order.pop_max(&self.activity) {
                if self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()] {
                    return Some(Lit::new(v, self.polarity[v.index()]));
                }
            }
            None
        } else {
            (0..self.num_vars())
                .map(Var::from_index)
                .find(|v| self.assigns[v.index()] == LBool::Undef && !self.eliminated[v.index()])
                .map(|v| Lit::new(v, self.polarity[v.index()]))
        }
    }

    fn search(
        &mut self,
        restart_limit: u64,
        max_learnt: &mut f64,
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_this_restart = 0u64;
        loop {
            // Poll the cancellation flag first so a pre-set flag is observed
            // before any further conflicts accrue (the cancellation test
            // depends on this bound).
            if let Some(flag) = &self.interrupt {
                if flag.load(Ordering::Relaxed) {
                    return SearchOutcome::Interrupted;
                }
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.proof_add(&[]);
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.proof_add(&learnt);
                // LBD is computed before backtracking, but `level[]` entries
                // are not cleared on unassignment, so the value is identical
                // either way; computing it here lets the export hook and the
                // clause DB share one computation.
                let lbd = if learnt.len() == 1 { 1 } else { self.compute_lbd(&learnt) };
                if let Some(ex) = &mut self.exchange {
                    if ex.export(&learnt, lbd) {
                        self.stats.exported_clauses += 1;
                    }
                }
                // Chronological backtracking: when the non-chronological
                // backjump would discard many decision levels, step back a
                // single level instead (Nadel & Ryvchin). The learnt clause
                // is still asserting there — every non-asserting literal
                // sits at a level ≤ backtrack_level < decision_level - 1 —
                // and the trail stays level-monotone, so analysis invariants
                // hold unchanged. Never applied inside the assumption
                // prefix, where level indexing must stay aligned.
                let mut target_level = backtrack_level;
                let ct = self.config.chrono_threshold;
                if ct > 0
                    && learnt.len() > 1
                    && self.decision_level() as usize > self.assumptions.len()
                    && self.decision_level() - backtrack_level > ct
                {
                    let chrono = self.decision_level() - 1;
                    if chrono > backtrack_level {
                        target_level = chrono;
                        self.stats.chrono_backtracks += 1;
                    }
                }
                self.backtrack_to(target_level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, ClauseRef::INVALID);
                } else {
                    let cref = self.db.add(&learnt, true);
                    self.db.set_lbd(cref, lbd);
                    self.attach(cref);
                    self.stats.learnt_clauses += 1;
                    self.stats.learnt_literals += learnt.len() as u64;
                    self.enqueue(asserting, cref);
                }
                self.decay_activities();
                if let Some(budget) = self.budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return SearchOutcome::BudgetExhausted;
                    }
                }
            } else {
                if conflicts_this_restart >= restart_limit && self.decision_level() > 0 {
                    return SearchOutcome::Restart;
                }
                if self.config.reduce_enabled && self.db.num_learnt() as f64 >= *max_learnt {
                    self.reduce_db();
                    *max_learnt *= self.config.learnt_size_inc;
                }
                // Extend with pending assumptions before free decisions.
                let level = self.decision_level() as usize;
                if level < self.assumptions.len() {
                    let a = self.assumptions[level];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already implied: open an empty decision level
                            // so assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.analyze_final(!a);
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            self.enqueue(a, ClauseRef::INVALID);
                        }
                    }
                    continue;
                }
                match self.pick_decision() {
                    None => return SearchOutcome::Sat,
                    Some(lit) => {
                        self.trail_lim.push(self.trail.len());
                        self.stats.decisions += 1;
                        self.enqueue(lit, ClauseRef::INVALID);
                    }
                }
            }
        }
    }

    /// Computes the unsat core when an assumption `!a` is implied: walk the
    /// implication graph from `a`'s complement back to assumptions.
    fn analyze_final(&mut self, failing: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(!failing);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[failing.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            let reason = self.reason[v];
            if reason == ClauseRef::INVALID {
                // A decision inside the assumption prefix = an assumption.
                if self.assumptions.contains(&lit) && lit != !failing {
                    self.conflict_core.push(lit);
                }
            } else {
                for &q in self.db.lits(reason).iter().skip(1) {
                    if self.level[q.var().index()] > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[failing.var().index()] = false;
        if self.proof.is_some() {
            // The core clause ¬a₁ ∨ … ∨ ¬aₖ is RUP against the clauses the
            // refutation traversed (all logged or original), so log it: the
            // checker validates it like any other derivation, and it is the
            // artifact `checker::check_refutation_under_assumptions` ties
            // the reported core to.
            let core_clause: Vec<Lit> = self.conflict_core.iter().map(|&l| !l).collect();
            self.proof_add(&core_clause);
        }
    }

    /// Deletes the less useful half of the learnt clauses.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        let mut learnt: Vec<ClauseRef> = self
            .db
            .iter_learnt()
            .filter(|&c| !self.is_reason(c) && self.db.lits(c).len() > 2)
            .collect();
        // Keep low-LBD, high-activity clauses.
        learnt.sort_by(|&a, &b| {
            self.db
                .lbd(a)
                .cmp(&self.db.lbd(b))
                .then(
                    self.db
                        .activity(b)
                        .partial_cmp(&self.db.activity(a))
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        });
        let keep = learnt.len() / 2;
        for &cref in &learnt[keep..] {
            if self.db.lbd(cref) <= 2 {
                continue; // glue clauses are always kept
            }
            if self.proof.is_some() {
                let lits = self.db.lits(cref).to_vec();
                self.proof_delete(&lits);
            }
            self.detach(cref);
            self.db.delete(cref);
            self.stats.deleted_clauses += 1;
        }
        if self.db.should_compact() {
            self.compact();
        }
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        let first = self.db.lits(cref)[0];
        let v = first.var().index();
        self.assigns[v].is_assigned() && self.reason[v] == cref
    }

    fn detach(&mut self, cref: ClauseRef) {
        let lits = self.db.lits(cref);
        let (l0, l1) = (lits[0], lits[1]);
        self.watches[(!l0).code()].retain(|w| w.cref != cref);
        self.watches[(!l1).code()].retain(|w| w.cref != cref);
    }

    /// Compacts the clause arena and rewrites all references.
    fn compact(&mut self) {
        let remap = self.db.compact();
        for ws in &mut self.watches {
            ws.retain_mut(|w| match remap[w.cref.0 as usize] {
                Some(new) => {
                    w.cref = new;
                    true
                }
                None => false,
            });
        }
        for r in &mut self.reason {
            if *r != ClauseRef::INVALID {
                *r = remap[r.0 as usize].unwrap_or(ClauseRef::INVALID);
            }
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
    Interrupted,
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
pub(crate) fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn trivially_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause([v[0], v[1]]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn trivially_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[1], v[2]]);
        s.add_clause([!v[2], v[3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in &v {
            assert_eq!(s.model_lit_value(*l), Some(true));
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause([v[0], !v[0]]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance that requires
        // actual conflict analysis.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for hole in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause([!p[i][hole], !p[j][hole]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn solve_under_assumptions_and_core() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([!v[0], !v[1]]); // a and b conflict
        assert_eq!(s.solve_with(&[v[0], v[1], v[2]]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&v[0]) || core.contains(&v[1]));
        assert!(!core.contains(&v[2]) || core.len() <= 2);
        // Without the conflicting pair, SAT again (incremental reuse).
        assert_eq!(s.solve_with(&[v[0], v[2]]), SolveResult::Sat);
        assert_eq!(s.model_lit_value(v[0]), Some(true));
        assert_eq!(s.model_lit_value(v[1]), Some(false));
    }

    #[test]
    fn incremental_clause_addition_after_solve() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([!v[0]]);
        s.add_clause([!v[1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn conflict_budget_returns_unknown_on_hard_instance() {
        // Pigeonhole 8 into 7 with a budget of 1 conflict.
        let n = 8;
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                for (&a, &b) in pi.iter().zip(pj) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_is_cleared_after_unsat_solve() {
        // Regression: a SAT solve followed by an UNSAT one must not leave
        // the old model readable through `model_value`.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v[0].var()).is_some());
        assert_eq!(s.solve_with(&[!v[0], !v[1]]), SolveResult::Unsat);
        assert_eq!(s.model_value(v[0].var()), None);
        assert_eq!(s.model_value(v[1].var()), None);
        assert_eq!(s.model_lit_value(v[0]), None);
    }

    #[test]
    fn model_is_cleared_on_budget_exhaustion_and_inconsistency() {
        // Budget-exhausted (Unknown) and already-inconsistent short-circuit
        // solves must also invalidate the model.
        let n = 8;
        let mut s = Solver::new();
        let free = s.new_var();
        s.add_clause([free.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(free), Some(true));
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var().positive()).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for (i, pi) in p.iter().enumerate() {
            for pj in &p[i + 1..] {
                for (&a, &b) in pi.iter().zip(pj) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.model_value(free), None);

        // A solver driven to root inconsistency after a SAT solve takes the
        // `!self.ok` short-circuit on the next solve; the stale model must
        // be cleared there too.
        let mut t = Solver::new();
        let x = t.new_var();
        t.add_clause([x.positive()]);
        assert_eq!(t.solve(), SolveResult::Sat);
        assert_eq!(t.model_value(x), Some(true));
        assert!(!t.add_clause([!x.positive()]));
        assert_eq!(t.solve(), SolveResult::Unsat);
        assert_eq!(t.model_value(x), None);
    }

    #[test]
    fn retire_dissolves_gated_clauses() {
        // Clauses gated on an activation literal bind only while the
        // activation is assumed; retirement makes them garbage that
        // `simplify` reclaims, without touching ungated clauses.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        let act = s.new_var().positive();
        s.add_clause([v[0], v[1]]); // ungated
        s.add_clause([!act, !v[0]]); // gated: act -> !v0
        s.add_clause([!act, !v[1]]); // gated: act -> !v1
        assert_eq!(s.solve_with(&[act]), SolveResult::Unsat);
        assert!(s.retire(act));
        assert_eq!(s.stats().retired_activations, 1);
        // The gated constraints no longer bind.
        assert_eq!(s.solve(), SolveResult::Sat);
        let live_before = s.num_clauses();
        assert!(s.simplify());
        assert!(s.stats().garbage_collected_clauses >= 2);
        assert!(s.num_clauses() < live_before);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn assumptions_already_implied_stay_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0]]);
        s.add_clause([!v[0], v[1]]);
        assert_eq!(s.solve_with(&[v[0], v[1]]), SolveResult::Sat);
    }

    #[test]
    fn assumption_contradicting_level0_unit_gives_core() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        assert_eq!(s.solve_with(&[!v[0]]), SolveResult::Unsat);
        assert_eq!(s.unsat_core(), &[!v[0]]);
    }
}
