//! Independent RUP/DRAT proof checking.
//!
//! This module verifies the DRAT proofs emitted by [`crate::Solver`]
//! **without sharing any propagation code with it**. The solver propagates
//! with two watched literals per clause; the checker instead keeps a
//! false-literal counter and full occurrence lists per clause. The point of
//! the duplication is exactly that it is a duplication: a bug in the
//! solver's watch bookkeeping cannot also live here, so the solver cannot
//! self-certify a wrong UNSAT.
//!
//! Checking model:
//! - The checker is initialized with the *entire* final CNF (for an
//!   incremental solver this includes clauses added after earlier solve
//!   calls). This is sound: extra clauses only strengthen propagation, and
//!   every proof addition is required to be implied by the full CNF plus
//!   the earlier additions — so an empty-clause addition still implies the
//!   full formula is UNSAT.
//! - Each [`ProofStep::Add`] must pass the RUP check (assume the negation
//!   of every clause literal, propagate, expect a conflict) or, failing
//!   that, the RAT check on its first literal.
//! - Each [`ProofStep::Delete`] removes one matching clause if present;
//!   deleting an absent clause is a no-op, matching standard `drat-trim`
//!   permissiveness.
//!
//! The two entry points most callers want are [`check_refutation`] (a
//! closed UNSAT verdict) and [`check_refutation_under_assumptions`] (an
//! UNSAT-under-assumptions verdict with its core).

use crate::lit::{LBool, Lit};
use crate::proof::{DratProof, ProofStep};
use std::collections::HashMap;

/// Why a proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckError {
    /// An added clause was neither RUP nor RAT at its position in the proof.
    NotRedundant {
        /// Index of the offending step in the proof.
        step: usize,
        /// The clause that failed the check.
        clause: Vec<Lit>,
    },
    /// The proof replayed cleanly but never derived the empty clause, so it
    /// is not a refutation.
    NoEmptyClause,
    /// The final core clause (`¬a₁ ∨ … ∨ ¬aₖ` over the reported core
    /// assumptions) failed its RUP check against the replayed proof.
    CoreNotEntailed {
        /// The core clause that failed.
        clause: Vec<Lit>,
    },
    /// A literal in the proof references a variable beyond the CNF's range.
    VariableOutOfRange {
        /// Index of the offending step.
        step: usize,
        /// The out-of-range literal.
        lit: Lit,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NotRedundant { step, clause } => {
                write!(f, "proof step {step} adds a non-redundant clause {clause:?}")
            }
            CheckError::NoEmptyClause => {
                write!(f, "proof replays cleanly but never derives the empty clause")
            }
            CheckError::CoreNotEntailed { clause } => {
                write!(f, "core clause {clause:?} is not entailed by the proof")
            }
            CheckError::VariableOutOfRange { step, lit } => {
                write!(f, "proof step {step} references out-of-range literal {lit:?}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Internal clause record: literals plus counter-based propagation state.
struct CheckedClause {
    lits: Vec<Lit>,
    /// Number of literals currently assigned false. When this reaches
    /// `lits.len() - 1` the clause is unit (or conflicting at `lits.len()`).
    false_count: usize,
    /// Tombstone flag: deleted clauses keep their counters updated (so
    /// occurrence lists need no compaction) but never trigger units or
    /// conflicts.
    active: bool,
}

/// A stateful RUP/DRAT checker over a fixed variable range.
///
/// Propagation is counter-based: every literal has an occurrence list of
/// clause indices, and assigning a literal false increments the false
/// counter of each clause it occurs in. A clause whose counter reaches
/// `len - 1` is scanned for its single non-false literal, which is then
/// enqueued (or a conflict is reported if every literal is false). This is
/// asymptotically worse than watched literals but entirely distinct from
/// the solver's code path — which is the point.
pub struct Checker {
    num_vars: usize,
    clauses: Vec<CheckedClause>,
    /// Occurrence lists indexed by `Lit::code()`.
    occurrences: Vec<Vec<usize>>,
    /// Live-clause lookup by normalized (sorted, deduped) literal vector.
    index: HashMap<Vec<Lit>, Vec<usize>>,
    /// Variable assignments for the persistent (level-0) prefix plus any
    /// temporary RUP probe.
    assigns: Vec<LBool>,
    /// Trail position of each variable's current assignment (meaningful
    /// only while the variable is assigned). Lets [`Checker::insert_clause`]
    /// distinguish trail entries [`Checker::propagate`] has already
    /// processed (position < `qhead`) from enqueued-but-pending ones.
    trail_pos: Vec<usize>,
    /// Assignment trail; `root_len` marks the persistent prefix.
    trail: Vec<Lit>,
    root_len: usize,
    qhead: usize,
    /// Set once persistent propagation conflicts: the accumulated formula
    /// is unsatisfiable by unit propagation alone.
    root_conflict: bool,
}

impl Checker {
    /// Creates a checker over `num_vars` variables, loading every clause of
    /// the CNF and running persistent unit propagation to fixpoint.
    pub fn new(num_vars: usize, clauses: &[Vec<Lit>]) -> Checker {
        let mut max_var = num_vars;
        for clause in clauses {
            for lit in clause {
                max_var = max_var.max(lit.var().index() + 1);
            }
        }
        let mut checker = Checker {
            num_vars: max_var,
            clauses: Vec::with_capacity(clauses.len()),
            occurrences: vec![Vec::new(); max_var * 2],
            index: HashMap::new(),
            assigns: vec![LBool::Undef; max_var],
            trail_pos: vec![0; max_var],
            trail: Vec::new(),
            root_len: 0,
            qhead: 0,
            root_conflict: false,
        };
        for clause in clauses {
            checker.insert_clause(clause);
        }
        checker.propagate_persistent();
        checker
    }

    /// The number of variables the checker tracks.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// True once the accumulated formula has been refuted (the empty clause
    /// was added, or persistent propagation conflicted).
    pub fn proved_unsat(&self) -> bool {
        self.root_conflict
    }

    fn normalize(clause: &[Lit]) -> Vec<Lit> {
        let mut key = clause.to_vec();
        key.sort_unstable();
        key.dedup();
        key
    }

    fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index()].under_polarity(lit.is_positive())
    }

    fn ensure_var(&mut self, lit: Lit) {
        let needed = lit.var().index() + 1;
        if needed > self.num_vars {
            self.num_vars = needed;
            self.assigns.resize(needed, LBool::Undef);
            self.trail_pos.resize(needed, 0);
            self.occurrences.resize(needed * 2, Vec::new());
        }
    }

    /// Adds a clause to the working formula (no redundancy check) and
    /// registers its occurrences.
    fn insert_clause(&mut self, clause: &[Lit]) {
        for &lit in clause {
            self.ensure_var(lit);
        }
        let id = self.clauses.len();
        // Initial false count covers only trail entries that propagate()
        // has already processed: pending entries (position ≥ qhead, e.g. a
        // unit enqueued by an earlier insert during Checker::new) bump the
        // counter themselves when the trail drains, so counting them here
        // would double-count and manufacture spurious units/conflicts.
        let false_count = clause
            .iter()
            .filter(|&&l| {
                self.value(l) == LBool::False && self.trail_pos[l.var().index()] < self.qhead
            })
            .count();
        self.clauses.push(CheckedClause { lits: clause.to_vec(), false_count, active: true });
        for &lit in clause {
            self.occurrences[lit.code()].push(id);
        }
        let key = Checker::normalize(clause);
        // Propagation is trail-driven, so a clause that is already unit (or
        // false) under the persistent prefix must be handled here: seed the
        // trail with its forced literal, or record the root conflict.
        let mut has_true = false;
        let mut unfalse: Vec<Lit> = Vec::new();
        for &lit in &key {
            match self.value(lit) {
                LBool::True => has_true = true,
                LBool::False => {}
                LBool::Undef => unfalse.push(lit),
            }
        }
        if !has_true {
            match unfalse.len() {
                0 => self.root_conflict = true,
                1 => {
                    self.enqueue(unfalse[0]);
                }
                _ => {}
            }
        }
        self.index.entry(key).or_default().push(id);
    }

    /// Removes one live clause matching `clause` (by normalized literal
    /// set). Absent clauses are ignored.
    fn remove_clause(&mut self, clause: &[Lit]) {
        let key = Checker::normalize(clause);
        if let Some(ids) = self.index.get_mut(&key) {
            if let Some(id) = ids.pop() {
                self.clauses[id].active = false;
            }
            if ids.is_empty() {
                self.index.remove(&key);
            }
        }
    }

    /// Enqueues `lit` as true. Returns `false` if it contradicts the
    /// current assignment.
    fn enqueue(&mut self, lit: Lit) -> bool {
        match self.value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                self.assigns[lit.var().index()] = LBool::from_bool(lit.is_positive());
                self.trail_pos[lit.var().index()] = self.trail.len();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Propagates from `qhead` until the trail is drained. Returns `true`
    /// on conflict. Even after a conflict the remaining trail literals get
    /// their counter bumps, so [`Checker::rollback`] can undo the counters
    /// symmetrically.
    fn propagate(&mut self) -> bool {
        let mut conflict = false;
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            let falsified = !lit;
            for i in 0..self.occurrences[falsified.code()].len() {
                let id = self.occurrences[falsified.code()][i];
                self.clauses[id].false_count += 1;
                if conflict || !self.clauses[id].active {
                    continue;
                }
                // Duplicate literals can push the count past len - 1, so
                // saturate rather than rely on exact arithmetic.
                let remaining =
                    self.clauses[id].lits.len().saturating_sub(self.clauses[id].false_count);
                if remaining == 0 {
                    conflict = true;
                } else if remaining == 1 {
                    // Scan for the single non-false literal; `None` means a
                    // duplicate made the count over-approximate while the
                    // clause is in fact satisfied or fully false.
                    let unit = self.clauses[id]
                        .lits
                        .iter()
                        .copied()
                        .find(|&l| self.value(l) != LBool::False);
                    if let Some(unit) = unit {
                        if self.value(unit) == LBool::Undef && !self.enqueue(unit) {
                            conflict = true;
                        }
                    }
                }
            }
        }
        conflict
    }

    /// Runs persistent propagation, extending the root prefix.
    fn propagate_persistent(&mut self) {
        if self.propagate() {
            self.root_conflict = true;
        }
        self.root_len = self.trail.len();
        self.qhead = self.root_len;
    }

    /// Rolls the trail back to the persistent prefix, undoing the counter
    /// bumps of every literal that [`Checker::propagate`] processed.
    /// Literals enqueued but never propagated (a probe that conflicted
    /// while assuming) have no counter bumps to undo.
    fn rollback(&mut self) {
        while self.trail.len() > self.root_len {
            let lit = self.trail.pop().unwrap();
            let index = self.trail.len();
            self.assigns[lit.var().index()] = LBool::Undef;
            if index < self.qhead {
                let falsified = !lit;
                for i in 0..self.occurrences[falsified.code()].len() {
                    let id = self.occurrences[falsified.code()][i];
                    self.clauses[id].false_count -= 1;
                }
            }
        }
        self.qhead = self.root_len;
    }

    /// RUP check for `clause`: assume the negation of every literal and
    /// propagate, expecting a conflict. A clause with a persistently-true
    /// literal passes trivially.
    pub fn check_clause(&mut self, clause: &[Lit]) -> bool {
        if self.root_conflict {
            return true;
        }
        for &lit in clause {
            self.ensure_var(lit);
        }
        let mut conflicted = false;
        for &lit in clause {
            match self.value(lit) {
                LBool::True => {
                    conflicted = true;
                    break;
                }
                LBool::False => {}
                LBool::Undef => {
                    if !self.enqueue(!lit) {
                        conflicted = true;
                        break;
                    }
                }
            }
        }
        if !conflicted {
            conflicted = self.propagate();
        }
        self.rollback();
        conflicted
    }

    /// RAT check on `pivot`: for every live clause containing `¬pivot`, the
    /// resolvent of `clause` with it must be RUP. Vacuously true when no
    /// live clause contains `¬pivot`.
    fn check_rat(&mut self, clause: &[Lit], pivot: Lit) -> bool {
        self.ensure_var(pivot);
        let resolvers: Vec<usize> = self.occurrences[(!pivot).code()]
            .iter()
            .copied()
            .filter(|&id| self.clauses[id].active)
            .collect();
        for id in resolvers {
            let mut resolvent: Vec<Lit> = clause.to_vec();
            let mut tautology = false;
            for &other in &self.clauses[id].lits.clone() {
                if other == !pivot {
                    continue;
                }
                if clause.contains(&!other) {
                    tautology = true;
                    break;
                }
                if !resolvent.contains(&other) {
                    resolvent.push(other);
                }
            }
            if tautology {
                continue;
            }
            if !self.check_clause(&resolvent) {
                return false;
            }
        }
        true
    }

    /// Applies one proof step: verifies and installs an addition, or
    /// processes a deletion. Returns the first error encountered.
    pub fn apply_step(&mut self, step_index: usize, step: &ProofStep) -> Result<(), CheckError> {
        match step {
            ProofStep::Add(clause) => {
                let rup = self.check_clause(clause);
                let rat = rup
                    || match clause.first() {
                        Some(&pivot) => self.check_rat(clause, pivot),
                        None => false,
                    };
                if !rat {
                    return Err(CheckError::NotRedundant {
                        step: step_index,
                        clause: clause.clone(),
                    });
                }
                self.insert_clause(clause);
                self.propagate_persistent();
                Ok(())
            }
            ProofStep::Delete(clause) => {
                self.remove_clause(clause);
                Ok(())
            }
        }
    }

    /// Replays an entire proof, stopping at the first invalid step.
    pub fn apply_proof(&mut self, proof: &DratProof) -> Result<(), CheckError> {
        for (i, step) in proof.steps().iter().enumerate() {
            self.apply_step(i, step)?;
            if self.root_conflict {
                // Refutation complete; later steps are irrelevant.
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Checks that `proof` is a valid DRAT refutation of `clauses`: every
/// addition is RUP/RAT at its position, and the empty clause is derived.
pub fn check_refutation(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    proof: &DratProof,
) -> Result<(), CheckError> {
    let mut checker = Checker::new(num_vars, clauses);
    checker.apply_proof(proof)?;
    if checker.proved_unsat() {
        Ok(())
    } else {
        Err(CheckError::NoEmptyClause)
    }
}

/// Checks an UNSAT-under-assumptions verdict: replays `proof` against the
/// CNF (validating every addition), then verifies that the clause
/// `¬a₁ ∨ … ∨ ¬aₖ` over the reported `core` assumptions is RUP — i.e. the
/// formula really does force at least one core assumption false.
///
/// Note the final check is not circular: the solver logs the core clause as
/// the proof's last addition, and that addition was itself RUP-validated
/// during replay, against only the clauses derived before it.
pub fn check_refutation_under_assumptions(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    proof: &DratProof,
    core: &[Lit],
) -> Result<(), CheckError> {
    let mut checker = Checker::new(num_vars, clauses);
    checker.apply_proof(proof)?;
    let core_clause: Vec<Lit> = core.iter().map(|&a| !a).collect();
    if checker.proved_unsat() || checker.check_clause(&core_clause) {
        Ok(())
    } else {
        Err(CheckError::CoreNotEntailed { clause: core_clause })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::ProofSink;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).unwrap()
    }

    fn clauses(spec: &[&[i64]]) -> Vec<Vec<Lit>> {
        spec.iter().map(|c| c.iter().map(|&v| lit(v)).collect()).collect()
    }

    #[test]
    fn rup_detects_implied_unit() {
        // (a ∨ b) ∧ (¬b) makes (a) RUP.
        let f = clauses(&[&[1, 2], &[-2]]);
        let mut checker = Checker::new(2, &f);
        assert!(checker.check_clause(&[lit(1)]));
        assert!(!checker.check_clause(&[lit(-1)]));
    }

    #[test]
    fn rup_probe_rolls_back_cleanly() {
        let f = clauses(&[&[1, 2], &[-1, 2], &[1, -2]]);
        let mut checker = Checker::new(2, &f);
        // Probe order must not matter: state is restored between checks.
        let _ = checker.check_clause(&[lit(1), lit(2)]); // result irrelevant
        let first = checker.check_clause(&[lit(1)]);
        let again = checker.check_clause(&[lit(1)]);
        assert_eq!(first, again);
    }

    #[test]
    fn simple_refutation_accepted() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ ¬b) — classic 2-var UNSAT.
        let f = clauses(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let mut proof = DratProof::new();
        proof.add_clause(&[lit(2)]); // resolving first two clauses
        proof.add_clause(&[]); // (a∨¬b),(¬a∨¬b),(b) propagate to conflict
        assert_eq!(check_refutation(2, &f, &proof), Ok(()));
    }

    #[test]
    fn refutation_without_empty_clause_rejected() {
        let f = clauses(&[&[1, 2], &[-1, 2]]);
        let mut proof = DratProof::new();
        proof.add_clause(&[lit(2)]);
        assert_eq!(check_refutation(2, &f, &proof), Err(CheckError::NoEmptyClause));
    }

    #[test]
    fn bogus_addition_rejected() {
        // (¬a) is not implied by (a ∨ b): neither RUP nor RAT on ¬a
        // (resolving with (a∨b) gives (b), which is not RUP).
        let f = clauses(&[&[1, 2]]);
        let mut proof = DratProof::new();
        proof.add_clause(&[lit(-1)]);
        proof.add_clause(&[]);
        assert!(matches!(
            check_refutation(2, &f, &proof),
            Err(CheckError::NotRedundant { step: 0, .. })
        ));
    }

    #[test]
    fn bogus_empty_clause_rejected() {
        // Claiming UNSAT outright on a satisfiable formula must fail.
        let f = clauses(&[&[1, 2]]);
        let mut proof = DratProof::new();
        proof.add_clause(&[]);
        assert!(matches!(
            check_refutation(2, &f, &proof),
            Err(CheckError::NotRedundant { step: 0, .. })
        ));
    }

    #[test]
    fn rat_addition_accepted() {
        // F = (a ∨ b). C = (c ∨ a) with pivot c: no clause contains ¬c, so
        // C is vacuously RAT even though it is not RUP.
        let f = clauses(&[&[1, 2]]);
        let mut checker = Checker::new(3, &f);
        let step = ProofStep::Add(vec![lit(3), lit(1)]);
        assert_eq!(checker.apply_step(0, &step), Ok(()));
    }

    #[test]
    fn deletion_is_respected() {
        // After deleting (¬b), the unit (a) is no longer RUP.
        let f = clauses(&[&[1, 2], &[-2]]);
        let mut checker = Checker::new(2, &f);
        assert!(checker.check_clause(&[lit(1)]));
        // Deletion does not undo persistent propagation already performed —
        // standard DRAT checkers behave the same. Build a fresh checker to
        // observe the weakened formula.
        checker.apply_step(0, &ProofStep::Delete(vec![lit(-2)])).unwrap();
        let mut fresh = Checker::new(2, &clauses(&[&[1, 2]]));
        assert!(!fresh.check_clause(&[lit(1)]));
    }

    #[test]
    fn deleting_absent_clause_is_noop() {
        let f = clauses(&[&[1, 2]]);
        let mut checker = Checker::new(2, &f);
        checker.apply_step(0, &ProofStep::Delete(vec![lit(1), lit(-2)])).unwrap();
        assert!(checker.check_clause(&[lit(1), lit(2)]));
    }

    #[test]
    fn duplicate_literals_handled() {
        let f = clauses(&[&[1, 1, 2], &[-2, -2]]);
        let mut checker = Checker::new(2, &f);
        assert!(checker.check_clause(&[lit(1)]));
        assert!(checker.check_clause(&[lit(1), lit(1)]));
    }

    #[test]
    fn unit_before_dependent_clause_is_not_a_root_conflict() {
        // Regression: inserting (¬a) enqueues ¬a with the trail not yet
        // propagated; a clause containing `a` inserted afterwards must not
        // count that falsification twice (once at insert, once when the
        // trail drains) — the double count manufactured a root conflict on
        // this satisfiable formula.
        let f = clauses(&[&[-1], &[1, 2]]);
        let checker = Checker::new(2, &f);
        assert!(!checker.proved_unsat());
    }

    #[test]
    fn empty_proof_rejected_for_satisfiable_unit_formula() {
        // Companion regression: the phantom root conflict made the checker
        // certify an empty proof as a refutation of a SAT formula.
        let f = clauses(&[&[-1], &[1, 2]]);
        let proof = DratProof::new();
        assert_eq!(check_refutation(2, &f, &proof), Err(CheckError::NoEmptyClause));
    }

    #[test]
    fn unit_chain_inserted_in_order_propagates_correctly() {
        // ¬a forces b (via a ∨ b) which forces c (via ¬b ∨ c): satisfiable,
        // with c persistently true — so (c) is trivially RUP while (¬c),
        // which the formula contradicts, is not derivable by UP.
        let f = clauses(&[&[-1], &[1, 2], &[-2, 3]]);
        let mut checker = Checker::new(3, &f);
        assert!(!checker.proved_unsat());
        assert!(checker.check_clause(&[lit(3)]));
        assert!(!checker.check_clause(&[lit(-3)]));
    }

    #[test]
    fn empty_cnf_clause_is_root_conflict() {
        let f = clauses(&[&[]]);
        let checker = Checker::new(1, &f);
        assert!(checker.proved_unsat());
    }

    #[test]
    fn assumption_core_check() {
        // s1 → a, s2 → ¬a. Under {s1, s2} the formula is UNSAT and the core
        // clause (¬s1 ∨ ¬s2) is RUP.
        let f = clauses(&[&[-1, 3], &[-2, -3]]);
        let proof = DratProof::new();
        assert_eq!(
            check_refutation_under_assumptions(3, &f, &proof, &[lit(1), lit(2)]),
            Ok(())
        );
        // A bogus core over only s1 is rejected.
        assert!(matches!(
            check_refutation_under_assumptions(3, &f, &proof, &[lit(1)]),
            Err(CheckError::CoreNotEntailed { .. })
        ));
    }

    #[test]
    fn growing_variable_range_mid_proof() {
        let f = clauses(&[&[1]]);
        let mut checker = Checker::new(1, &f);
        // Vacuous RAT on a brand-new variable.
        let step = ProofStep::Add(vec![lit(5), lit(1)]);
        assert_eq!(checker.apply_step(0, &step), Ok(()));
        assert_eq!(checker.num_vars(), 5);
    }
}
