//! Parallel portfolio solving.
//!
//! Runs N diversified [`Solver`] instances on the same formula in worker
//! threads (`std::thread` only, per the workspace's zero-dependency policy)
//! under a first-winner-cancels protocol: the first worker to reach a
//! decisive verdict claims the winner slot and raises a shared atomic
//! interrupt flag, which every other worker polls once per search-loop
//! iteration. Workers share learnt clauses through an LBD-filtered pool —
//! only "glue" clauses at or below [`PortfolioConfig::lbd_threshold`] are
//! exported, and imports happen at restart boundaries where the importing
//! solver's trail is at the root level.
//!
//! Two cross-cutting modes trade raw speed for stronger guarantees:
//!
//! - **Deterministic mode** (`deterministic: true`): no interrupt flag, no
//!   clause sharing; every worker runs to completion and the winner is the
//!   lowest-index worker with a decisive verdict. Two runs with the same
//!   seed produce identical verdicts, models, and per-worker [`Stats`] —
//!   there is no wall-clock or ambient-entropy dependence anywhere in the
//!   arbitration. This is the mode CI uses.
//! - **Proof mode** (`verify_proofs: true`): every worker records a DRAT
//!   proof, and clause sharing is disabled — a clause learnt by another
//!   worker is not derivable from the local proof log, so importing it
//!   would make the winner's proof unreplayable. The winning UNSAT verdict
//!   carries its checker-validatable proof in [`PortfolioResult::proof`].
//!
//! Worker 0 always runs the *unmodified* base configuration, so a 1-thread
//! portfolio is search-identical to the sequential solver — the property
//! the differential test suite is built on.

use crate::lit::{Lit, Var};
use crate::proof::DratProof;
use crate::solver::{ClauseExchange, SolveResult, Solver, SolverConfig};
use crate::stats::Stats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Upper bound on pooled clauses; exports are refused beyond it so a
/// pathological run cannot grow the pool without bound.
const POOL_CAP: usize = 100_000;

/// Portfolio-level configuration.
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// Worker thread count (clamped to at least 1).
    pub num_threads: usize,
    /// Base solver configuration; worker 0 runs it unmodified and workers
    /// 1..N run seeded variations of it (see [`diversified_config`]).
    pub base: SolverConfig,
    /// Export filter: only learnt clauses with LBD at or below this value
    /// enter the shared pool ("glue" clauses).
    pub lbd_threshold: u32,
    /// Deterministic mode: no cancellation, no sharing, lowest-index
    /// decisive worker wins. Reproducible run-to-run; used by CI.
    pub deterministic: bool,
    /// Proof mode: every worker logs a DRAT proof and sharing is disabled;
    /// UNSAT results carry the winner's proof.
    pub verify_proofs: bool,
    /// Seed mixed into each worker's `random_seed` for diversification.
    pub seed: u64,
    /// Optional per-worker conflict budget (workers that exhaust it report
    /// `Unknown`, and a portfolio where nobody is decisive reports
    /// `Unknown`).
    pub conflict_budget: Option<u64>,
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            num_threads: 4,
            base: SolverConfig::default(),
            lbd_threshold: 4,
            deterministic: false,
            verify_proofs: false,
            seed: 0,
            conflict_budget: None,
        }
    }
}

/// Aggregated statistics for one portfolio solve.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Per-worker solver statistics, indexed by worker.
    pub workers: Vec<Stats>,
    /// Clauses published into the shared pool across all workers.
    pub pool_published: u64,
}

/// Outcome of a [`Portfolio::solve`] call.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// The portfolio verdict (decisive if any worker was decisive).
    pub result: SolveResult,
    /// Index of the winning worker, when one was decisive.
    pub winner: Option<usize>,
    /// Full model (indexed by variable) from the winning SAT worker.
    pub model: Option<Vec<Option<bool>>>,
    /// Unsat core (subset of the assumptions) from the winning UNSAT worker.
    pub core: Vec<Lit>,
    /// The winner's DRAT proof, present on UNSAT when
    /// [`PortfolioConfig::verify_proofs`] was set.
    pub proof: Option<DratProof>,
    /// Per-worker and pool statistics.
    pub stats: PortfolioStats,
}

/// Derives worker `i`'s solver configuration from the base.
///
/// Worker 0 is always the base unmodified (sequential equivalence); later
/// workers vary saved-phase polarity, VSIDS decay, restart cadence, and
/// seeded random tie-breaking. Workers ≥ 4 cycle the variations with fresh
/// seeds. All randomness flows from `seed` — nothing here reads the clock
/// or ambient entropy.
pub fn diversified_config(base: &SolverConfig, worker: usize, seed: u64) -> SolverConfig {
    let mut c = base.clone();
    if worker == 0 {
        return c;
    }
    c.random_seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(worker as u64);
    match worker % 4 {
        1 => {
            // Opposite phase corner: starts "all true" where the base
            // starts "all false".
            c.default_polarity = !base.default_polarity;
        }
        2 => {
            // Aggressive forgetting + rapid restarts + light randomness.
            c.var_decay = 0.85;
            c.restart_base = 50;
            c.random_decision_freq = 0.01;
        }
        3 => {
            // Slow decay + long restarts + opposite phase + more noise.
            c.var_decay = 0.99;
            c.restart_base = 300;
            c.default_polarity = !base.default_polarity;
            c.random_decision_freq = 0.05;
        }
        _ => {
            // worker % 4 == 0 (worker ≥ 4): base search shape, but seeded
            // random tie-breaking makes it explore differently.
            c.random_decision_freq = 0.02;
        }
    }
    c
}

/// The shared learnt-clause pool: an append-only log of `(origin, clause,
/// lbd)` entries behind a mutex. Each worker holds a [`PoolHandle`] with a
/// private read cursor, so imports are "everything published since my last
/// restart, minus my own contributions".
struct SharedPool {
    entries: Mutex<Vec<(usize, Vec<Lit>, u32)>>,
}

struct PoolHandle {
    pool: Arc<SharedPool>,
    worker: usize,
    cursor: usize,
    lbd_threshold: u32,
}

impl ClauseExchange for PoolHandle {
    fn export(&mut self, lits: &[Lit], lbd: u32) -> bool {
        if lbd > self.lbd_threshold {
            return false;
        }
        let mut entries = self.pool.entries.lock().unwrap();
        if entries.len() >= POOL_CAP {
            return false;
        }
        entries.push((self.worker, lits.to_vec(), lbd));
        true
    }

    fn import(&mut self, buf: &mut Vec<(Vec<Lit>, u32)>) {
        let entries = self.pool.entries.lock().unwrap();
        while self.cursor < entries.len() {
            let (origin, lits, lbd) = &entries[self.cursor];
            self.cursor += 1;
            if *origin != self.worker {
                buf.push((lits.clone(), *lbd));
            }
        }
    }
}

/// What one worker brings back from its solve.
struct WorkerOutcome {
    result: SolveResult,
    model: Option<Vec<Option<bool>>>,
    core: Vec<Lit>,
    proof: Option<DratProof>,
    stats: Stats,
}

/// A parallel portfolio over one formula. See the [module docs](self).
///
/// # Example
/// ```
/// use netarch_sat::{Portfolio, PortfolioConfig, SolveResult, Solver};
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// let portfolio = Portfolio::new(PortfolioConfig { num_threads: 2, ..Default::default() });
/// let out = portfolio.solve(2, &[vec![a, b], vec![!a]], &[]);
/// assert_eq!(out.result, SolveResult::Sat);
/// assert_eq!(out.model.unwrap()[b.var().index()], Some(true));
/// ```
pub struct Portfolio {
    config: PortfolioConfig,
}

impl Portfolio {
    /// Creates a portfolio with the given configuration.
    pub fn new(config: PortfolioConfig) -> Portfolio {
        Portfolio { config }
    }

    /// The configuration this portfolio runs.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Solves the formula `clauses` over `num_vars` variables under
    /// `assumptions`, racing the diversified workers.
    ///
    /// In racing mode (the default) the first decisive worker claims the
    /// winner slot and interrupts the rest; in deterministic mode all
    /// workers run to completion and the lowest-index decisive worker wins.
    pub fn solve(
        &self,
        num_vars: usize,
        clauses: &[Vec<Lit>],
        assumptions: &[Lit],
    ) -> PortfolioResult {
        let n = self.config.num_threads.max(1);
        let sharing = n > 1 && !self.config.deterministic && !self.config.verify_proofs;
        let pool = Arc::new(SharedPool {
            entries: Mutex::new(Vec::new()),
        });
        let interrupt = Arc::new(AtomicBool::new(false));
        // Winner slot: claimed exactly once, by the first decisive worker
        // (racing mode only).
        let winner_claim: Mutex<Option<usize>> = Mutex::new(None);

        let mut outcomes: Vec<Option<WorkerOutcome>> = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(None);
        }

        thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for worker in 0..n {
                let worker_config = diversified_config(&self.config.base, worker, self.config.seed);
                let pool = Arc::clone(&pool);
                let interrupt = Arc::clone(&interrupt);
                let winner_claim = &winner_claim;
                let config = &self.config;
                handles.push(scope.spawn(move || {
                    let mut solver = Solver::with_config(worker_config);
                    if config.verify_proofs {
                        solver.record_proof();
                    }
                    solver.ensure_vars(num_vars);
                    for clause in clauses {
                        if !solver.add_clause(clause.iter().copied()) {
                            break;
                        }
                    }
                    solver.set_conflict_budget(config.conflict_budget);
                    if !config.deterministic {
                        solver.set_interrupt(Arc::clone(&interrupt));
                    }
                    if sharing {
                        solver.set_exchange(Box::new(PoolHandle {
                            pool,
                            worker,
                            cursor: 0,
                            lbd_threshold: config.lbd_threshold,
                        }));
                    }
                    let result = solver.solve_with(assumptions);
                    let decisive = matches!(result, SolveResult::Sat | SolveResult::Unsat);
                    if decisive && !config.deterministic {
                        let mut claim = winner_claim.lock().unwrap();
                        if claim.is_none() {
                            *claim = Some(worker);
                            interrupt.store(true, Ordering::Relaxed);
                        }
                    }
                    let model = if result == SolveResult::Sat {
                        Some(
                            (0..num_vars)
                                .map(|i| solver.model_value(Var::from_index(i)))
                                .collect(),
                        )
                    } else {
                        None
                    };
                    let proof = if result == SolveResult::Unsat && config.verify_proofs {
                        solver.take_proof()
                    } else {
                        None
                    };
                    WorkerOutcome {
                        result,
                        model,
                        core: solver.unsat_core().to_vec(),
                        proof,
                        stats: *solver.stats(),
                    }
                }));
            }
            for (worker, handle) in handles.into_iter().enumerate() {
                outcomes[worker] = handle.join().ok();
            }
        });

        let mut outcomes: Vec<WorkerOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("portfolio worker panicked"))
            .collect();

        // Arbitration. Racing mode honors the claim made inside the worker
        // threads; deterministic mode picks the lowest-index decisive
        // worker, a rule with no timing dependence.
        let winner = if self.config.deterministic {
            outcomes
                .iter()
                .position(|o| matches!(o.result, SolveResult::Sat | SolveResult::Unsat))
        } else {
            let claimed = *winner_claim.lock().unwrap();
            claimed.or_else(|| {
                // Every worker was interrupted or budget-bounded before the
                // claim, or a decisive worker raced the claim lock; fall
                // back to any decisive outcome.
                outcomes
                    .iter()
                    .position(|o| matches!(o.result, SolveResult::Sat | SolveResult::Unsat))
            })
        };

        let pool_published = pool.entries.lock().unwrap().len() as u64;
        let stats = PortfolioStats {
            workers: outcomes.iter().map(|o| o.stats).collect(),
            pool_published,
        };

        match winner {
            Some(w) => {
                let o = &mut outcomes[w];
                PortfolioResult {
                    result: o.result,
                    winner: Some(w),
                    model: o.model.take(),
                    core: std::mem::take(&mut o.core),
                    proof: o.proof.take(),
                    stats,
                }
            }
            None => PortfolioResult {
                result: SolveResult::Unknown,
                winner: None,
                model: None,
                core: Vec::new(),
                proof: None,
                stats,
            },
        }
    }
}

/// Count of workers in `stats` whose solve ended via interruption.
pub fn interrupted_workers(stats: &PortfolioStats) -> usize {
    stats
        .workers
        .iter()
        .filter(|s| s.interrupts > 0)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_sat(num_vars: usize) -> Vec<Vec<Lit>> {
        // Every clause contains at least one positive literal, so the
        // all-true assignment satisfies the formula.
        let mut clauses = Vec::new();
        for i in 0..num_vars {
            let a = Lit::new(Var::from_index(i), true);
            let b = Lit::new(Var::from_index((i + 1) % num_vars), false);
            clauses.push(vec![a, b]);
        }
        clauses
    }

    fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
        let holes = n - 1;
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let mut clauses = Vec::new();
        for p in 0..n {
            clauses.push((0..holes).map(|h| var(p, h).positive()).collect());
        }
        for h in 0..holes {
            for p1 in 0..n {
                for p2 in (p1 + 1)..n {
                    clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        (n * holes, clauses)
    }

    #[test]
    fn portfolio_sat_and_model() {
        let clauses = planted_sat(20);
        for threads in [1, 2, 4] {
            let p = Portfolio::new(PortfolioConfig {
                num_threads: threads,
                ..Default::default()
            });
            let out = p.solve(20, &clauses, &[]);
            assert_eq!(out.result, SolveResult::Sat);
            let model = out.model.expect("SAT verdict must carry a model");
            for clause in &clauses {
                assert!(clause.iter().any(|l| {
                    model[l.var().index()].map(|b| b == l.is_positive()) == Some(true)
                }));
            }
        }
    }

    #[test]
    fn portfolio_unsat_pigeonhole() {
        let (nv, clauses) = pigeonhole(6);
        for threads in [1, 2, 4] {
            let p = Portfolio::new(PortfolioConfig {
                num_threads: threads,
                ..Default::default()
            });
            let out = p.solve(nv, &clauses, &[]);
            assert_eq!(out.result, SolveResult::Unsat);
        }
    }

    #[test]
    fn worker_zero_is_base_config() {
        let base = SolverConfig::default();
        let w0 = diversified_config(&base, 0, 42);
        assert_eq!(w0.random_seed, base.random_seed);
        assert_eq!(w0.default_polarity, base.default_polarity);
        assert_eq!(w0.random_decision_freq, base.random_decision_freq);
        // Later workers actually differ.
        let w1 = diversified_config(&base, 1, 42);
        assert_ne!(w1.default_polarity, base.default_polarity);
    }

    #[test]
    fn unsat_core_respects_assumptions() {
        let nv = 3;
        let v = |i: usize| Var::from_index(i).positive();
        let clauses = vec![vec![!v(0), !v(1)]];
        let p = Portfolio::new(PortfolioConfig {
            num_threads: 2,
            deterministic: true,
            ..Default::default()
        });
        let out = p.solve(nv, &clauses, &[v(0), v(1), v(2)]);
        assert_eq!(out.result, SolveResult::Unsat);
        assert!(!out.core.is_empty());
        for l in &out.core {
            assert!([v(0), v(1), v(2)].contains(l));
        }
    }
}
