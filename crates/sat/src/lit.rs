//! Variables, literals, and the three-valued assignment domain.
//!
//! The representation follows the classic MiniSat packing: a variable is a
//! dense non-negative index, and a literal packs the variable index together
//! with its sign into a single `u32` (`2 * var + sign`). This keeps watch
//! lists, assignment vectors, and activity tables directly indexable.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense index starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its dense index.
    #[inline]
    pub fn from_index(index: usize) -> Var {
        debug_assert!(index < (u32::MAX / 2) as usize, "variable index overflow");
        Var(index as u32)
    }

    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0 + 1)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + (positive ? 1 : 0)` so that negation is a single
/// XOR and literals index watch lists densely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal over `var` with the given polarity
    /// (`true` = positive occurrence).
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(positive))
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is a negative literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the dense code of this literal (usable as a watch-list index).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts from DIMACS convention: non-zero integer, sign = polarity,
    /// magnitude = 1-based variable index.
    pub fn from_dimacs(value: i64) -> Option<Lit> {
        if value == 0 || value.unsigned_abs() > (u32::MAX / 2) as u64 {
            return None;
        }
        let var = Var(value.unsigned_abs() as u32 - 1);
        Some(Lit::new(var, value > 0))
    }

    /// Converts to the DIMACS integer convention.
    pub fn to_dimacs(self) -> i64 {
        let magnitude = i64::from(self.var().0) + 1;
        if self.is_positive() {
            magnitude
        } else {
            -magnitude
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", if self.is_positive() { "" } else { "!" }, self.var())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Three-valued truth assignment: true, false, or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not yet assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete Boolean.
    #[inline]
    pub fn from_bool(value: bool) -> LBool {
        if value {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns `true` iff assigned (either polarity).
    #[inline]
    pub fn is_assigned(self) -> bool {
        !matches!(self, LBool::Undef)
    }

    /// Returns the concrete Boolean, or `None` when unassigned.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Negation preserving `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Applies a literal's polarity: the value of literal `l` given its
    /// variable's value `self`.
    #[inline]
    pub fn under_polarity(self, positive: bool) -> LBool {
        if positive {
            self
        } else {
            self.negate()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        for index in [0usize, 1, 2, 17, 1000] {
            let v = Var::from_index(index);
            assert_eq!(v.index(), index);
            let pos = v.positive();
            let neg = v.negative();
            assert_eq!(pos.var(), v);
            assert_eq!(neg.var(), v);
            assert!(pos.is_positive());
            assert!(neg.is_negative());
            assert_eq!(!pos, neg);
            assert_eq!(!neg, pos);
            assert_eq!(Lit::from_code(pos.code()), pos);
        }
    }

    #[test]
    fn dimacs_conversion() {
        let l = Lit::from_dimacs(5).unwrap();
        assert_eq!(l.var().index(), 4);
        assert!(l.is_positive());
        assert_eq!(l.to_dimacs(), 5);

        let l = Lit::from_dimacs(-3).unwrap();
        assert_eq!(l.var().index(), 2);
        assert!(l.is_negative());
        assert_eq!(l.to_dimacs(), -3);

        assert_eq!(Lit::from_dimacs(0), None);
    }

    #[test]
    fn lbool_algebra() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::from_bool(false), LBool::False);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.under_polarity(false), LBool::False);
        assert_eq!(LBool::Undef.under_polarity(true), LBool::Undef);
        assert!(LBool::True.is_assigned());
        assert!(!LBool::Undef.is_assigned());
        assert_eq!(LBool::False.to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
    }

    #[test]
    fn display_uses_dimacs_convention() {
        let v = Var::from_index(0);
        assert_eq!(v.positive().to_string(), "1");
        assert_eq!(v.negative().to_string(), "-1");
    }
}
