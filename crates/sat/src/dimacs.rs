//! DIMACS CNF parsing and writing.
//!
//! Supports the standard `p cnf <vars> <clauses>` header, `c` comment lines,
//! and clauses terminated by `0`. Parsing is tolerant of clauses split
//! across lines and of a missing header (variables are then sized from the
//! largest literal seen).

use crate::lit::Lit;
use crate::solver::Solver;
use std::fmt::Write as _;

/// A parsed CNF instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Declared (or inferred) number of variables.
    pub num_vars: usize,
    /// The clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

/// Errors produced while parsing DIMACS text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The `p` header line was malformed.
    BadHeader {
        /// 1-based line number of the offending header.
        line: usize,
    },
    /// A token was neither an integer literal nor `0`.
    BadToken {
        /// 1-based line number of the offending token.
        line: usize,
        /// The token as read.
        token: String,
    },
    /// A literal's magnitude exceeded the representable range.
    LiteralOutOfRange {
        /// 1-based line number of the offending literal.
        line: usize,
        /// The out-of-range value.
        value: i64,
    },
    /// Input ended in the middle of a clause (no terminating `0`).
    UnterminatedClause,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader { line } => write!(f, "malformed `p cnf` header on line {line}"),
            ParseError::BadToken { line, token } => {
                write!(f, "unexpected token {token:?} on line {line}")
            }
            ParseError::LiteralOutOfRange { line, value } => {
                write!(f, "literal {value} out of range on line {line}")
            }
            ParseError::UnterminatedClause => write!(f, "input ended inside a clause"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses DIMACS CNF text.
pub fn parse(input: &str) -> Result<Cnf, ParseError> {
    let mut cnf = Cnf::default();
    let mut current: Vec<Lit> = Vec::new();
    let mut declared_vars: Option<usize> = None;

    for (line_index, line) in input.lines().enumerate() {
        let line_no = line_index + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let (p, fmt) = (parts.next(), parts.next());
            let vars = parts.next().and_then(|t| t.parse::<usize>().ok());
            let clauses = parts.next().and_then(|t| t.parse::<usize>().ok());
            if p != Some("p") || fmt != Some("cnf") || vars.is_none() || clauses.is_none() {
                return Err(ParseError::BadHeader { line: line_no });
            }
            declared_vars = vars;
            continue;
        }
        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseError::BadToken {
                line: line_no,
                token: token.to_string(),
            })?;
            if value == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                let lit = Lit::from_dimacs(value)
                    .ok_or(ParseError::LiteralOutOfRange { line: line_no, value })?;
                cnf.num_vars = cnf.num_vars.max(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseError::UnterminatedClause);
    }
    if let Some(v) = declared_vars {
        cnf.num_vars = cnf.num_vars.max(v);
    }
    Ok(cnf)
}

/// Renders a CNF instance as DIMACS text.
pub fn write(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Loads a CNF instance into a solver, returning `false` when the instance
/// is trivially unsatisfiable during loading.
pub fn load_into(solver: &mut Solver, cnf: &Cnf) -> bool {
    solver.ensure_vars(cnf.num_vars);
    let mut ok = true;
    for clause in &cnf.clauses {
        ok &= solver.add_clause(clause.iter().copied());
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_simple_instance() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0][0].to_dimacs(), 1);
        assert_eq!(cnf.clauses[0][1].to_dimacs(), -2);
    }

    #[test]
    fn parse_without_header_infers_vars() {
        let cnf = parse("1 2 0\n-3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
    }

    #[test]
    fn parse_clause_across_lines() {
        let cnf = parse("p cnf 2 1\n1\n2 0\n").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(parse("p dnf 1 1\n"), Err(ParseError::BadHeader { .. })));
        assert!(matches!(parse("1 x 0\n"), Err(ParseError::BadToken { .. })));
        assert!(matches!(parse("1 2\n"), Err(ParseError::UnterminatedClause)));
    }

    #[test]
    fn roundtrip_write_parse() {
        let cnf = parse("p cnf 3 2\n1 -2 0\n-1 3 0\n").unwrap();
        let text = write(&cnf);
        assert_eq!(parse(&text).unwrap(), cnf);
    }

    #[test]
    fn load_and_solve() {
        let cnf = parse("p cnf 2 3\n1 2 0\n-1 0\n-2 1 0\n").unwrap();
        let mut s = Solver::new();
        assert!(!load_into(&mut s, &cnf) || s.solve() == SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_in_file_is_unsat() {
        let cnf = parse("p cnf 1 1\n0\n").unwrap();
        let mut s = Solver::new();
        assert!(!load_into(&mut s, &cnf));
    }
}
