//! Certified restart-boundary inprocessing.
//!
//! Three simplification passes run over the clause arena whenever the
//! restart cadence (`SolverConfig::inprocess_interval`) fires, always with
//! the trail at the root level:
//!
//! 1. **Subsumption / self-subsumption** — occurrence lists plus the 64-bit
//!    variable-set abstractions stored in [`crate::clause`] find clauses
//!    `C ⊆ D` (delete `D`) and near-misses where exactly one literal of `C`
//!    appears negated in `D` (resolve, strengthening `D` by one literal).
//! 2. **Vivification** — each candidate clause is detached and its literals
//!    probed as decisions; propagation that falsifies a literal or
//!    contradicts a prefix shrinks the clause.
//! 3. **Bounded variable elimination (BVE)** — unfrozen variables with a
//!    small occurrence product are resolved away (Davis–Putnam style,
//!    no-growth policy); deleted clauses go onto an elimination stack that
//!    [`Solver::extend_model`] walks in reverse so SAT models still satisfy
//!    the *original* formula.
//!
//! Every transformation is DRAT-certified: strengthened clauses and BVE
//! resolvents are RUP against the clause set that existed when they were
//! derived, so they are logged as additions *before* the clauses they
//! replace are logged as deletions. Refutations found with inprocessing on
//! therefore remain checkable by [`crate::checker`] unchanged.
//!
//! The *freeze contract*: variables the caller may still mention in future
//! clauses or assumptions must be exempted from BVE via
//! [`Solver::freeze_var`]. `solve_with` freezes assumption variables
//! automatically; the incremental encoder in `netarch-logic` freezes every
//! variable it allocates, so session engines keep their zero-recompile
//! guarantee while still benefiting from subsumption and vivification.

use super::Solver;
use crate::clause::ClauseRef;
use crate::lit::{LBool, Lit, Var};

impl Solver {
    /// Cadence gate called at every restart boundary; runs
    /// [`Solver::inprocess`] after `inprocess_interval` restarts, then
    /// doubles the gap after every round (geometric cadence): the first
    /// round strips cheap redundancy early, while long searches are not
    /// dominated by repeated pass overhead.
    pub(crate) fn maybe_inprocess(&mut self) -> bool {
        if !self.config.inprocessing_enabled {
            return self.ok;
        }
        if self.inprocess_gap == 0 {
            self.inprocess_gap = self.config.inprocess_interval.max(1);
        }
        self.restarts_since_inprocess += 1;
        if self.restarts_since_inprocess < self.inprocess_gap {
            return self.ok;
        }
        self.restarts_since_inprocess = 0;
        self.inprocess_gap = self.inprocess_gap.saturating_mul(2);
        self.inprocess()
    }

    /// Runs one full inprocessing round: level-0 simplification, then
    /// subsumption/self-subsumption, vivification, and bounded variable
    /// elimination. Returns `false` when the instance is proved
    /// unsatisfiable outright (the empty clause is then in the proof).
    ///
    /// Public so tests and embedders can force a round deterministically;
    /// during solving it runs automatically at restart boundaries.
    pub fn inprocess(&mut self) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        // Step 1: reuse the incremental-session simplifier — propagates,
        // drops root-satisfied clauses, strips root-false literals, and
        // rebuilds the watch lists.
        if !self.simplify() {
            return false;
        }
        self.stats.inprocessings += 1;
        if !self.subsume_pass() {
            return false;
        }
        if !self.vivify_pass() {
            return false;
        }
        if !self.bve_pass() {
            return false;
        }
        // The passes may have deleted clauses that level-0 trail entries
        // recorded as reasons. Root-level assignments never need their
        // reasons again (conflict analysis only dereferences reasons above
        // level 0), so clear them all rather than track which died.
        for r in &mut self.reason {
            *r = ClauseRef::INVALID;
        }
        if self.db.should_compact() {
            self.compact();
        }
        true
    }

    /// Records the root-level empty clause and marks the instance
    /// unsatisfiable. Returns `false` for use as a tail call in passes.
    fn level0_conflict(&mut self) -> bool {
        self.proof_add(&[]);
        self.ok = false;
        false
    }

    /// Forward subsumption and self-subsumption over occurrence lists.
    ///
    /// For each clause `C` (shortest first), candidates sharing `C`'s
    /// cheapest literal (either sign) are screened with the stored
    /// abstractions; exact matches delete the superset clause, one-flip
    /// matches strengthen it by resolution.
    fn subsume_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let live: Vec<ClauseRef> = (0..self.db.len())
            .map(|i| ClauseRef(i as u32))
            .filter(|&c| !self.db.is_deleted(c))
            .collect();
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); self.num_vars() * 2];
        for &c in &live {
            for &l in self.db.lits(c) {
                occ[l.code()].push(c);
            }
        }
        let mut order = live;
        order.sort_by_key(|&c| self.db.lits(c).len());
        for &c in &order {
            if self.db.is_deleted(c) {
                continue;
            }
            let c_lits = self.db.lits(c).to_vec();
            // Clauses touching mid-pass unit assignments are left for the
            // next round's simplification.
            if c_lits.iter().any(|&l| self.lit_value(l) != LBool::Undef) {
                continue;
            }
            let c_abst = self.db.abstraction(c);
            let best = c_lits
                .iter()
                .copied()
                .min_by_key(|&l| occ[l.code()].len() + occ[(!l).code()].len())
                .expect("stored clauses are non-empty");
            let mut candidates: Vec<ClauseRef> = Vec::new();
            candidates.extend_from_slice(&occ[best.code()]);
            candidates.extend_from_slice(&occ[(!best).code()]);
            for d in candidates {
                if d == c || self.db.is_deleted(d) || self.db.is_deleted(c) {
                    continue;
                }
                let d_lits = self.db.lits(d).to_vec();
                if d_lits.iter().any(|&l| self.lit_value(l) != LBool::Undef) {
                    continue;
                }
                match subsume_match(&c_lits, c_abst, &d_lits, self.db.abstraction(d)) {
                    None => {}
                    Some(None) => {
                        // C ⊆ D: D is redundant. If a learnt clause subsumes
                        // an original one it must be promoted first, or a
                        // later reduce_db could drop the last witness of an
                        // original constraint.
                        if !self.db.is_learnt(d) && self.db.is_learnt(c) {
                            self.db.make_original(c);
                        }
                        self.proof_delete(&d_lits);
                        self.detach(d);
                        self.db.delete(d);
                        self.stats.subsumed += 1;
                    }
                    Some(Some(flip)) => {
                        // Self-subsumption: resolving C with D on `flip`
                        // yields D \ {¬flip}, which subsumes D. The
                        // strengthened clause is RUP while C and D are both
                        // live, so it is logged before D is deleted.
                        let new: Vec<Lit> =
                            d_lits.iter().copied().filter(|&x| x != !flip).collect();
                        debug_assert_eq!(new.len() + 1, d_lits.len());
                        self.proof_add(&new);
                        self.proof_delete(&d_lits);
                        self.stats.strengthened += 1;
                        self.detach(d);
                        if new.len() == 1 {
                            self.db.delete(d);
                            if !self.assert_unit(new[0]) {
                                return false;
                            }
                        } else {
                            self.db.shrink(d, &new);
                            self.attach(d);
                            // D stays listed under its surviving literals;
                            // the stale occurrence under ¬flip is harmless
                            // because matches recheck actual literals.
                        }
                    }
                }
            }
        }
        true
    }

    /// Clause vivification under a propagation budget.
    ///
    /// Each candidate is detached (so it cannot propagate against itself)
    /// and its literals asserted false one at a time as probe decisions:
    /// a literal propagated false is redundant, and a propagated truth or a
    /// conflict proves the probed prefix suffices. The shrunken clause is
    /// RUP via the very propagations just witnessed.
    fn vivify_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let budget_end = self.stats.propagations + self.config.vivify_budget;
        let candidates: Vec<ClauseRef> = (0..self.db.len())
            .map(|i| ClauseRef(i as u32))
            .filter(|&c| !self.db.is_deleted(c) && self.db.lits(c).len() >= 3)
            .collect();
        for c in candidates {
            if self.stats.propagations >= budget_end {
                break;
            }
            if self.db.is_deleted(c) {
                continue;
            }
            let lits = self.db.lits(c).to_vec();
            if lits.iter().any(|&l| self.lit_value(l) != LBool::Undef) {
                continue;
            }
            self.detach(c);
            let mut keep: Vec<Lit> = Vec::with_capacity(lits.len());
            let mut changed = false;
            for (i, &l) in lits.iter().enumerate() {
                match self.lit_value(l) {
                    LBool::True => {
                        // The negated prefix implies l: every literal after
                        // l can be dropped.
                        keep.push(l);
                        changed |= i + 1 < lits.len();
                        break;
                    }
                    LBool::False => {
                        // The negated prefix implies ¬l: l is redundant.
                        changed = true;
                    }
                    LBool::Undef => {
                        keep.push(l);
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(!l, ClauseRef::INVALID);
                        if self.propagate().is_some() {
                            // ¬keep is contradictory: the prefix suffices.
                            changed |= i + 1 < lits.len();
                            break;
                        }
                    }
                }
            }
            self.backtrack_to(0);
            if !changed {
                self.attach(c);
                continue;
            }
            self.stats.vivified += 1;
            self.proof_add(&keep);
            self.proof_delete(&lits);
            debug_assert!(!keep.is_empty(), "probing starts from unassigned literals");
            if keep.len() == 1 {
                self.db.delete(c);
                if !self.assert_unit(keep[0]) {
                    return false;
                }
            } else {
                self.db.shrink(c, &keep);
                self.attach(c);
            }
        }
        true
    }

    /// Bounded variable elimination with a no-growth policy.
    ///
    /// A variable qualifies when it is unfrozen, unassigned, and its
    /// positive×negative occurrence product (over original clauses) is at
    /// most `bve_product_limit`. All original×original resolvents on the
    /// pivot are computed; if (after tautology and duplicate removal) they
    /// number no more than the clauses they replace, the resolvents are
    /// logged and added, the pivot's clauses are deleted (originals onto
    /// the elimination stack for model reconstruction), and the variable
    /// leaves the search. Learnt clauses mentioning the pivot are simply
    /// deleted — they are implied and never needed for reconstruction.
    fn bve_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); self.num_vars() * 2];
        for i in 0..self.db.len() {
            let c = ClauseRef(i as u32);
            if self.db.is_deleted(c) {
                continue;
            }
            for &l in self.db.lits(c) {
                occ[l.code()].push(c);
            }
        }
        for vi in 0..self.num_vars() {
            if self.frozen[vi] || self.eliminated[vi] || self.assigns[vi].is_assigned() {
                continue;
            }
            let v = Var::from_index(vi);
            let (pos_lit, neg_lit) = (v.positive(), v.negative());
            let mut pos_orig = Vec::new();
            let mut pos_learnt = Vec::new();
            for &c in &occ[pos_lit.code()] {
                if self.db.is_deleted(c) {
                    continue;
                }
                if self.db.is_learnt(c) {
                    pos_learnt.push(c);
                } else {
                    pos_orig.push(c);
                }
            }
            let mut neg_orig = Vec::new();
            let mut neg_learnt = Vec::new();
            for &c in &occ[neg_lit.code()] {
                if self.db.is_deleted(c) {
                    continue;
                }
                if self.db.is_learnt(c) {
                    neg_learnt.push(c);
                } else {
                    neg_orig.push(c);
                }
            }
            if pos_orig.len() * neg_orig.len() > self.config.bve_product_limit {
                continue;
            }
            // Clauses touching mid-pass unit assignments are skipped; the
            // next round's simplification cleans them up first.
            let touches_assigned = pos_orig
                .iter()
                .chain(&neg_orig)
                .chain(&pos_learnt)
                .chain(&neg_learnt)
                .any(|&c| {
                    self.db
                        .lits(c)
                        .iter()
                        .any(|&l| self.lit_value(l) != LBool::Undef)
                });
            if touches_assigned {
                continue;
            }
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            for &pc in &pos_orig {
                for &nc in &neg_orig {
                    let mut r: Vec<Lit> = Vec::new();
                    r.extend(self.db.lits(pc).iter().copied().filter(|&l| l != pos_lit));
                    r.extend(self.db.lits(nc).iter().copied().filter(|&l| l != neg_lit));
                    r.sort_unstable();
                    r.dedup();
                    // Complementary literals are code-adjacent after the
                    // sort, so tautologies show up as neighbouring pairs.
                    if r.windows(2).any(|w| w[1] == !w[0]) {
                        continue;
                    }
                    debug_assert!(!r.is_empty(), "stored parents have >= 2 literals");
                    resolvents.push(r);
                }
            }
            resolvents.sort();
            resolvents.dedup();
            // No-growth policy: eliminating must not add clauses.
            if resolvents.len() > pos_orig.len() + neg_orig.len() {
                continue;
            }
            // Resolvents are RUP while both parents are live: log every
            // addition before any parent deletion.
            for r in &resolvents {
                self.proof_add(r);
            }
            for &c in pos_orig.iter().chain(neg_orig.iter()) {
                let lits = self.db.lits(c).to_vec();
                let pivot = if lits.contains(&pos_lit) { pos_lit } else { neg_lit };
                self.proof_delete(&lits);
                self.elim_stack.push((pivot, lits));
                self.detach(c);
                self.db.delete(c);
            }
            for &c in pos_learnt.iter().chain(neg_learnt.iter()) {
                let lits = self.db.lits(c).to_vec();
                self.proof_delete(&lits);
                self.detach(c);
                self.db.delete(c);
            }
            self.eliminated[vi] = true;
            self.stats.eliminated_vars += 1;
            let mut units: Vec<Lit> = Vec::new();
            for r in resolvents {
                if r.len() == 1 {
                    units.push(r[0]);
                } else {
                    let cref = self.db.add(&r, false);
                    self.attach(cref);
                    // Later pivots must see the resolvent, or their own
                    // elimination would silently drop a constraint.
                    for &l in &r {
                        occ[l.code()].push(cref);
                    }
                }
            }
            for u in units {
                if !self.assert_unit(u) {
                    return false;
                }
            }
        }
        true
    }

    /// Asserts a derived unit at the root level and settles propagation.
    /// Returns `false` (after logging the empty clause) on contradiction.
    fn assert_unit(&mut self, unit: Lit) -> bool {
        match self.lit_value(unit) {
            LBool::True => true,
            LBool::False => self.level0_conflict(),
            LBool::Undef => {
                self.enqueue(unit, ClauseRef::INVALID);
                if self.propagate().is_some() {
                    self.level0_conflict()
                } else {
                    true
                }
            }
        }
    }

    /// Extends a SAT model over eliminated variables by walking the
    /// elimination stack in reverse: any recorded clause not satisfied by
    /// the model forces its pivot literal true. (At most one polarity can be
    /// forced — a positive and a negative clause both unsatisfied modulo
    /// the pivot would falsify their resolvent, which was added to the
    /// formula the model satisfies.)
    pub(crate) fn extend_model(&mut self) {
        if self.elim_stack.is_empty() {
            return;
        }
        for i in (0..self.elim_stack.len()).rev() {
            let satisfied = {
                let (_, clause) = &self.elim_stack[i];
                clause.iter().any(|&l| {
                    self.model
                        .get(l.var().index())
                        .is_some_and(|v| v.under_polarity(l.is_positive()) == LBool::True)
                })
            };
            if !satisfied {
                let pivot = self.elim_stack[i].0;
                self.model[pivot.var().index()] = LBool::from_bool(pivot.is_positive());
            }
        }
        // Eliminated variables no clause ever forced get a definite default
        // so the model stays total.
        for (vi, val) in self.model.iter_mut().enumerate() {
            if *val == LBool::Undef && self.eliminated[vi] {
                *val = LBool::False;
            }
        }
    }
}

/// Subsumption check with one allowed sign flip, after the abstraction
/// prefilter. Returns `Some(None)` when every literal of `c` occurs in `d`
/// (plain subsumption), `Some(Some(l))` when exactly one literal `l ∈ c`
/// occurs negated in `d` and the rest occur directly (self-subsumption:
/// resolving on `l` removes `¬l` from `d`), and `None` otherwise.
fn subsume_match(c: &[Lit], c_abst: u64, d: &[Lit], d_abst: u64) -> Option<Option<Lit>> {
    if c.len() > d.len() || (c_abst & !d_abst) != 0 {
        return None;
    }
    let mut flipped: Option<Lit> = None;
    for &l in c {
        if d.contains(&l) {
            continue;
        }
        if flipped.is_none() && d.contains(&!l) {
            flipped = Some(l);
            continue;
        }
        return None;
    }
    Some(flipped)
}

#[cfg(test)]
mod tests {
    use crate::{SolveResult, Solver, SolverConfig};

    /// Allocates `n` frozen variables so BVE stays inert and a test can
    /// observe a single pass in isolation.
    fn frozen_lits(s: &mut Solver, n: usize) -> Vec<crate::Lit> {
        (0..n)
            .map(|_| {
                let v = s.new_var();
                s.freeze_var(v);
                v.positive()
            })
            .collect()
    }

    #[test]
    fn subsumption_deletes_superset_clauses() {
        let mut s = Solver::new();
        let v = frozen_lits(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]); // subsumed
        s.add_clause([v[0], v[1], v[2], v[3]]); // subsumed
        s.add_clause([v[2], v[3]]);
        assert!(s.inprocess());
        assert_eq!(s.stats().subsumed, 2);
        assert_eq!(s.num_clauses(), 2);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn self_subsumption_strengthens() {
        let mut s = Solver::new();
        let v = frozen_lits(&mut s, 3);
        // (a ∨ b) and (a ∨ ¬b ∨ c) resolve on b to (a ∨ c), strengthening
        // the ternary clause.
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1], v[2]]);
        assert!(s.inprocess());
        assert_eq!(s.stats().strengthened, 1);
        assert_eq!(s.num_clauses(), 2);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_clauses_are_deduplicated() {
        let mut s = Solver::new();
        let v = frozen_lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[1], v[0]]); // same clause after normalization
        assert!(s.inprocess());
        assert_eq!(s.stats().subsumed, 1);
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn vivification_drops_implied_tail() {
        let mut s = Solver::new();
        let v = frozen_lits(&mut s, 4);
        let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
        // Implication chain a → b → c. Probing ¬a on C = (¬a ∨ c ∨ d)
        // asserts a, propagation derives b then c, and the probe hits a
        // true literal: C shrinks to (¬a ∨ c). Two resolution steps are
        // needed to see this, so subsumption alone cannot find it.
        s.add_clause([!a, b]);
        s.add_clause([!b, c]);
        s.add_clause([!a, c, d]);
        assert!(s.inprocess());
        assert_eq!(s.stats().vivified, 1);
        assert_eq!(s.num_clauses(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn bve_eliminates_and_model_reconstructs() {
        let mut s = Solver::with_config(SolverConfig::default());
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let x = s.new_var().positive();
        let clauses = [vec![a, x], vec![b, !x]];
        for c in &clauses {
            s.add_clause(c.clone());
        }
        assert!(s.inprocess());
        assert!(s.stats().eliminated_vars >= 1);
        assert!(s.is_eliminated(x.var()) || s.is_eliminated(a.var()));
        assert_eq!(s.solve(), SolveResult::Sat);
        // The reconstructed model must satisfy the *original* clauses, not
        // just the simplified formula.
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.model_lit_value(l) == Some(true)),
                "original clause {c:?} unsatisfied by reconstructed model"
            );
        }
    }

    #[test]
    fn frozen_variables_survive_bve() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let x = s.new_var().positive();
        let b = s.new_var().positive();
        let y = s.new_var().positive();
        s.freeze_var(a.var());
        s.freeze_var(x.var());
        s.freeze_var(b.var());
        // y is eliminable (pure in one clause); x is frozen despite having
        // the same occurrence shape.
        s.add_clause([a, x, y]);
        s.add_clause([b, !x]);
        assert!(s.inprocess());
        assert!(s.is_eliminated(y.var()));
        assert!(!s.is_eliminated(x.var()));
        // Frozen variables remain legal in later clauses and assumptions.
        assert!(s.add_clause([!x, a]));
        assert_eq!(s.solve_with(&[x]), SolveResult::Sat);
        assert_eq!(s.model_lit_value(x), Some(true));
    }

    #[test]
    fn assumption_variables_are_auto_frozen() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let x = s.new_var().positive();
        let b = s.new_var().positive();
        s.add_clause([a, x]);
        s.add_clause([b, !x]);
        // Solving under x freezes it; a later inprocess must not remove it.
        assert_eq!(s.solve_with(&[x]), SolveResult::Sat);
        assert!(s.inprocess());
        assert!(!s.is_eliminated(x.var()));
        assert_eq!(s.solve_with(&[!x]), SolveResult::Sat);
        assert_eq!(s.model_lit_value(x), Some(false));
    }

    #[test]
    fn pure_literal_elimination_falls_out_of_bve() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let b = s.new_var().positive();
        let p = s.new_var().positive();
        s.freeze_var(a.var());
        s.freeze_var(b.var());
        s.add_clause([a, b, p]); // p occurs only positively
        s.add_clause([a, !b, p]);
        assert!(s.inprocess());
        assert!(s.is_eliminated(p.var()));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_lit_value(p), Some(true));
    }

    #[test]
    fn inprocess_detects_root_unsat() {
        let mut s = Solver::new();
        let v: Vec<_> = (0..2).map(|_| s.new_var().positive()).collect();
        let (a, b) = (v[0], v[1]);
        s.record_proof();
        // Unsatisfiable 2-SAT core that needs resolution to expose.
        s.add_clause([a, b]);
        s.add_clause([a, !b]);
        s.add_clause([!a, b]);
        s.add_clause([!a, !b]);
        // Self-subsumption resolves these down to complementary units.
        assert!(!s.inprocess());
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.take_proof().expect("recorder active");
        let formula: Vec<Vec<crate::Lit>> = vec![
            vec![a, b],
            vec![a, !b],
            vec![!a, b],
            vec![!a, !b],
        ];
        let outcome = crate::checker::check_refutation(2, &formula, &proof);
        assert!(outcome.is_ok(), "inprocessing refutation rejected: {outcome:?}");
    }

    #[test]
    fn inprocessed_solver_agrees_with_plain_config() {
        // Seeded random 3-SAT sweep: aggressive inprocessing + chronological
        // backtracking must agree with the ablated configuration.
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545F4914F6CDD1D)
        };
        for case in 0..40 {
            let num_vars = 12 + (case % 5);
            let num_clauses = (num_vars as f64 * 4.4) as usize;
            let clauses: Vec<Vec<crate::Lit>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let r = next();
                            let v = crate::Var::from_index((r % num_vars as u64) as usize);
                            crate::Lit::new(v, (r >> 32) & 1 == 1)
                        })
                        .collect()
                })
                .collect();
            let aggressive = SolverConfig {
                inprocessing_enabled: true,
                inprocess_interval: 1,
                chrono_threshold: 1,
                restart_base: 4,
                ..SolverConfig::default()
            };
            let plain = SolverConfig {
                inprocessing_enabled: false,
                chrono_threshold: 0,
                ..SolverConfig::default()
            };
            let mut verdicts = Vec::new();
            for config in [aggressive, plain] {
                let mut s = Solver::with_config(config);
                s.ensure_vars(num_vars);
                for c in &clauses {
                    s.add_clause(c.clone());
                }
                let r = s.solve();
                if r == SolveResult::Sat {
                    for c in &clauses {
                        assert!(
                            c.iter().any(|&l| s.model_lit_value(l) == Some(true)),
                            "case {case}: model violates clause {c:?}"
                        );
                    }
                }
                verdicts.push(r);
            }
            assert_eq!(verdicts[0], verdicts[1], "case {case}: verdict mismatch");
        }
    }
}
