//! Clause storage.
//!
//! Clauses live in a flat arena ([`ClauseDb`]) addressed by [`ClauseRef`].
//! Each clause carries a small header (learnt flag, activity, LBD glue value)
//! followed by its literals. Deleted clauses are tombstoned and reclaimed by
//! a periodic compaction pass that rewrites all external references.

use crate::lit::Lit;

/// An index into the clause arena. Stable between garbage collections.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// A sentinel that never refers to a live clause.
    pub const INVALID: ClauseRef = ClauseRef(u32::MAX);
}

/// Header bookkeeping for one stored clause.
#[derive(Clone, Debug)]
struct ClauseHeader {
    /// Offset of the first literal in `lits`.
    start: u32,
    /// Number of literals.
    len: u32,
    /// True for conflict-learnt clauses (candidates for deletion).
    learnt: bool,
    /// Tombstone flag; deleted clauses are skipped until compaction.
    deleted: bool,
    /// Literal-block distance ("glue") measured when the clause was learnt.
    lbd: u32,
    /// Bump-based activity used to rank learnt clauses for deletion.
    activity: f64,
    /// 64-bit variable-set signature: bit `v % 64` is set for every variable
    /// in the clause. `C ⊆ D` implies `abstraction(C) & !abstraction(D) == 0`,
    /// so the inprocessing subsumption passes use it as a constant-time
    /// prefilter before the literal-level subset check. Variable-based (not
    /// literal-based) so the same signature also prefilters
    /// self-subsumption, where one literal appears with its sign flipped.
    abstraction: u64,
}

/// Computes the variable-set signature used for subsumption prefiltering.
pub fn compute_abstraction(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |acc, l| acc | 1u64 << (l.var().index() & 63))
}

/// Arena of clauses with tombstone deletion and explicit compaction.
#[derive(Default)]
pub struct ClauseDb {
    headers: Vec<ClauseHeader>,
    lits: Vec<Lit>,
    /// Count of live (non-deleted) learnt clauses.
    num_learnt: usize,
    /// Count of live problem (original) clauses.
    num_original: usize,
    /// Literals wasted in tombstoned clauses, to decide when to compact.
    wasted: usize,
}

impl ClauseDb {
    /// Creates an empty clause database.
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Adds a clause with at least two literals; returns its reference.
    ///
    /// Unit and empty clauses are handled at the solver level and never
    /// stored here.
    pub fn add(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "stored clauses must have >= 2 literals");
        let start = self.lits.len() as u32;
        self.lits.extend_from_slice(lits);
        let header = ClauseHeader {
            start,
            len: lits.len() as u32,
            learnt,
            deleted: false,
            lbd: lits.len() as u32,
            activity: 0.0,
            abstraction: compute_abstraction(lits),
        };
        self.headers.push(ClauseHeader { ..header });
        if learnt {
            self.num_learnt += 1;
        } else {
            self.num_original += 1;
        }
        ClauseRef(self.headers.len() as u32 - 1)
    }

    /// Returns the literals of a clause.
    #[inline]
    pub fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let h = &self.headers[cref.0 as usize];
        &self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    /// Returns the literals of a clause, mutably (used to reorder watches).
    #[inline]
    pub fn lits_mut(&mut self, cref: ClauseRef) -> &mut [Lit] {
        let h = &self.headers[cref.0 as usize];
        &mut self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    /// Returns `true` if the clause was learnt from a conflict.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.headers[cref.0 as usize].learnt
    }

    /// Returns `true` if the clause has been tombstoned.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.headers[cref.0 as usize].deleted
    }

    /// Records the literal-block distance for a learnt clause.
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        self.headers[cref.0 as usize].lbd = lbd;
    }

    /// Returns the recorded literal-block distance.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.headers[cref.0 as usize].lbd
    }

    /// Returns the clause's deletion-ranking activity.
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f64 {
        self.headers[cref.0 as usize].activity
    }

    /// Bumps the clause's activity by `amount`; returns true when a global
    /// rescale is needed (activities overflowing the f64 range).
    #[inline]
    pub fn bump_activity(&mut self, cref: ClauseRef, amount: f64) -> bool {
        let a = &mut self.headers[cref.0 as usize].activity;
        *a += amount;
        *a > 1e100
    }

    /// Divides every learnt clause activity by `factor`.
    pub fn rescale_activities(&mut self, factor: f64) {
        for h in &mut self.headers {
            h.activity /= factor;
        }
    }

    /// Returns the clause's variable-set signature for subsumption
    /// prefiltering (see [`compute_abstraction`]).
    #[inline]
    pub fn abstraction(&self, cref: ClauseRef) -> u64 {
        self.headers[cref.0 as usize].abstraction
    }

    /// Shrinks a clause in place to `new_lits` (a strengthening: the new
    /// literal set must be a subset of the old one, and still ≥ 2 literals).
    ///
    /// The freed tail slots are counted as wasted storage so compaction
    /// heuristics stay honest. Callers must detach the clause from the watch
    /// lists before shrinking and re-attach afterwards, because the watched
    /// slots 0/1 are rewritten.
    pub fn shrink(&mut self, cref: ClauseRef, new_lits: &[Lit]) {
        let h = &self.headers[cref.0 as usize];
        debug_assert!(!h.deleted, "cannot shrink a tombstoned clause");
        debug_assert!(new_lits.len() >= 2, "stored clauses must have >= 2 literals");
        debug_assert!(new_lits.len() <= h.len as usize, "shrink cannot grow a clause");
        let start = h.start as usize;
        let old_len = h.len as usize;
        self.lits[start..start + new_lits.len()].copy_from_slice(new_lits);
        let h = &mut self.headers[cref.0 as usize];
        h.len = new_lits.len() as u32;
        h.abstraction = compute_abstraction(new_lits);
        self.wasted += old_len - new_lits.len();
    }

    /// Promotes a learnt clause to an original (irredundant) clause.
    ///
    /// Used when a learnt clause subsumes an original one: the original may
    /// only be deleted if its subsumer is immune to learnt-clause reduction,
    /// otherwise a later `reduce_db` could silently drop the last witness of
    /// an original constraint.
    pub fn make_original(&mut self, cref: ClauseRef) {
        let h = &mut self.headers[cref.0 as usize];
        if h.learnt && !h.deleted {
            h.learnt = false;
            self.num_learnt -= 1;
            self.num_original += 1;
        }
    }

    /// Tombstones a clause. The reference remains valid but inert.
    pub fn delete(&mut self, cref: ClauseRef) {
        let h = &mut self.headers[cref.0 as usize];
        if !h.deleted {
            h.deleted = true;
            self.wasted += h.len as usize;
            if h.learnt {
                self.num_learnt -= 1;
            } else {
                self.num_original -= 1;
            }
        }
    }

    /// Number of live learnt clauses.
    #[inline]
    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Number of live original clauses.
    #[inline]
    pub fn num_original(&self) -> usize {
        self.num_original
    }

    /// Total number of live clauses.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.num_learnt + self.num_original
    }

    /// Number of arena slots (live + tombstoned); valid [`ClauseRef`]
    /// indices are `0..len()`.
    #[inline]
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// True when the arena holds no clauses at all.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// Returns live learnt clause references.
    pub fn iter_learnt(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.headers
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.deleted && h.learnt)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    /// True when enough storage is tombstoned that compaction pays off.
    pub fn should_compact(&self) -> bool {
        self.wasted * 4 > self.lits.len().max(1)
    }

    /// Compacts the arena, dropping tombstoned clauses.
    ///
    /// Returns a remap table: `remap[old_ref] == Some(new_ref)` for surviving
    /// clauses, `None` for deleted ones. Callers must rewrite every stored
    /// [`ClauseRef`] (watch lists, reason slots) using this table.
    pub fn compact(&mut self) -> Vec<Option<ClauseRef>> {
        let mut remap = vec![None; self.headers.len()];
        let mut new_headers = Vec::with_capacity(self.num_live());
        let mut new_lits = Vec::with_capacity(self.lits.len() - self.wasted);
        for (i, h) in self.headers.iter().enumerate() {
            if h.deleted {
                continue;
            }
            let start = new_lits.len() as u32;
            new_lits.extend_from_slice(&self.lits[h.start as usize..(h.start + h.len) as usize]);
            remap[i] = Some(ClauseRef(new_headers.len() as u32));
            new_headers.push(ClauseHeader { start, ..h.clone() });
        }
        self.headers = new_headers;
        self.lits = new_lits;
        self.wasted = 0;
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::new(Var::from_index(i), pos)
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        assert!(db.is_empty());
        let c1 = db.add(&[lit(0, true), lit(1, false)], false);
        assert!(!db.is_empty());
        assert_eq!(db.len(), 1);
        let c2 = db.add(&[lit(2, true), lit(0, false), lit(1, true)], true);
        assert_eq!(db.lits(c1), &[lit(0, true), lit(1, false)]);
        assert_eq!(db.lits(c2).len(), 3);
        assert!(!db.is_learnt(c1));
        assert!(db.is_learnt(c2));
        assert_eq!(db.num_original(), 1);
        assert_eq!(db.num_learnt(), 1);
    }

    #[test]
    fn delete_is_idempotent_and_counted() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&[lit(0, true), lit(1, true)], true);
        db.delete(c1);
        db.delete(c1);
        assert!(db.is_deleted(c1));
        assert_eq!(db.num_learnt(), 0);
        assert_eq!(db.num_live(), 0);
    }

    #[test]
    fn compaction_remaps_surviving_clauses() {
        let mut db = ClauseDb::new();
        let c1 = db.add(&[lit(0, true), lit(1, true)], false);
        let c2 = db.add(&[lit(2, true), lit(3, true)], true);
        let c3 = db.add(&[lit(4, true), lit(5, true)], false);
        db.delete(c2);
        let remap = db.compact();
        assert_eq!(remap[c1.0 as usize], Some(ClauseRef(0)));
        assert_eq!(remap[c2.0 as usize], None);
        let new_c3 = remap[c3.0 as usize].unwrap();
        assert_eq!(db.lits(new_c3), &[lit(4, true), lit(5, true)]);
        assert_eq!(db.num_live(), 2);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let c = db.add(&[lit(0, true), lit(1, true)], true);
        assert!(!db.bump_activity(c, 1.0));
        assert!(db.bump_activity(c, 2e100));
        db.rescale_activities(1e100);
        assert!(db.activity(c) < 1.0e10);
    }

    #[test]
    fn abstraction_is_subset_prefilter() {
        let mut db = ClauseDb::new();
        let c = db.add(&[lit(0, true), lit(2, false)], false);
        let d = db.add(&[lit(0, true), lit(1, true), lit(2, false)], false);
        // C ⊆ D (as variable sets) ⇒ abst(C) & !abst(D) == 0.
        assert_eq!(db.abstraction(c) & !db.abstraction(d), 0);
        // D ⊄ C: bit for var 1 survives.
        assert_ne!(db.abstraction(d) & !db.abstraction(c), 0);
        // Sign-insensitive: flipping polarity keeps the same signature.
        assert_eq!(
            compute_abstraction(&[lit(0, true)]),
            compute_abstraction(&[lit(0, false)])
        );
    }

    #[test]
    fn shrink_updates_len_abstraction_and_waste() {
        let mut db = ClauseDb::new();
        let c = db.add(&[lit(0, true), lit(1, true), lit(2, true)], false);
        assert!(!db.should_compact());
        db.shrink(c, &[lit(0, true), lit(2, true)]);
        assert_eq!(db.lits(c), &[lit(0, true), lit(2, true)]);
        assert_eq!(db.abstraction(c), compute_abstraction(&[lit(0, true), lit(2, true)]));
        // One of three slots is now wasted; compaction threshold is 4:1.
        assert!(db.should_compact());
        let remap = db.compact();
        let c = remap[c.0 as usize].unwrap();
        assert_eq!(db.lits(c), &[lit(0, true), lit(2, true)]);
    }

    #[test]
    fn make_original_promotes_learnt() {
        let mut db = ClauseDb::new();
        let c = db.add(&[lit(0, true), lit(1, true)], true);
        assert_eq!(db.num_learnt(), 1);
        db.make_original(c);
        assert!(!db.is_learnt(c));
        assert_eq!(db.num_learnt(), 0);
        assert_eq!(db.num_original(), 1);
        db.make_original(c); // idempotent
        assert_eq!(db.num_original(), 1);
    }

    #[test]
    fn lbd_roundtrip() {
        let mut db = ClauseDb::new();
        let c = db.add(&[lit(0, true), lit(1, true), lit(2, true)], true);
        assert_eq!(db.lbd(c), 3);
        db.set_lbd(c, 2);
        assert_eq!(db.lbd(c), 2);
    }
}
