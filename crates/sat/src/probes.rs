//! Persistent probe workers for parallel query loops.
//!
//! The portfolio ([`crate::Portfolio`]) races N diversified solvers on *one*
//! decisive verdict and then throws the workers away. The query loops that
//! PR extends — MaxSAT descent, the capacity binary search — instead issue a
//! *sequence of related probes* over one fixed formula: same CNF, different
//! assumption sets, round after round. A [`ProbePool`] keeps one solver per
//! seat alive across the whole loop, so the CNF is built once per worker and
//! every learnt clause stays warm for the next round's probe.
//!
//! Within a round the seats race under the portfolio's first-winner-cancels
//! protocol: any seat reaching a decisive verdict raises the shared
//! interrupt flag, and the other seats abandon their (now redundant) probes
//! at the next poll. Because the caller races probes at *different* bounds,
//! one decisive answer usually re-anchors the whole search window — the
//! interrupted probes' answers would have been subsumed anyway.
//!
//! In deterministic mode there is no interrupt flag: every seat runs its
//! probe to completion (or its conflict budget), so seat `i`'s outcome is a
//! pure function of the formula and the sequence of probes dispatched to
//! seat `i`. A caller that dispatches probes positionally and folds results
//! in a fixed order gets bit-identical runs.

use crate::lit::{Lit, Var};
use crate::portfolio::diversified_config;
use crate::solver::{SolveResult, Solver, SolverConfig};
use crate::stats::Stats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Configuration for a [`ProbePool`].
#[derive(Clone, Debug)]
pub struct ProbePoolConfig {
    /// Number of worker seats (clamped to at least 1).
    pub seats: usize,
    /// Variable count of the formula.
    pub num_vars: usize,
    /// The formula every seat loads once at startup.
    pub clauses: Arc<Vec<Vec<Lit>>>,
    /// Base solver configuration; seat 0 runs it unmodified, later seats
    /// run seeded variations (see [`diversified_config`]).
    pub base: SolverConfig,
    /// Variables any round's probe may assume, frozen in every seat at
    /// startup. The session solver freezes assumption variables lazily at
    /// first use, but pool seats see a *different* assumption set each
    /// round — a variable only assumed in round N could be eliminated by a
    /// seat's restart-boundary inprocessing during rounds 1..N, and
    /// assuming an eliminated variable is a protocol violation. Callers
    /// must declare the full assumable set up front.
    pub frozen: Vec<Var>,
    /// Deterministic mode: no cancellation; each seat's outcome depends
    /// only on its own probe sequence.
    pub deterministic: bool,
    /// Diversification seed (as in the portfolio).
    pub seed: u64,
    /// Optional per-probe conflict budget; exhausted probes report
    /// [`SolveResult::Unknown`].
    pub conflict_budget: Option<u64>,
}

/// Outcome of one probe on one seat.
#[derive(Clone, Debug)]
pub struct ProbeOutcome {
    /// The probe verdict (`Unknown` when interrupted or budget-bounded).
    pub result: SolveResult,
    /// Full model (indexed by variable) when the verdict is SAT.
    pub model: Option<Vec<Option<bool>>>,
}

/// Reads a literal's value out of a raw model vector (as carried by
/// [`ProbeOutcome::model`] and the portfolio result).
pub fn lit_value_in(model: &[Option<bool>], lit: Lit) -> Option<bool> {
    model
        .get(lit.var().index())
        .copied()
        .flatten()
        .map(|b| if lit.is_positive() { b } else { !b })
}

struct Seat {
    jobs: mpsc::Sender<Vec<Lit>>,
    handle: thread::JoinHandle<Stats>,
}

/// A pool of persistent probe workers over one formula. See the
/// [module docs](self).
pub struct ProbePool {
    seats: Vec<Seat>,
    results: mpsc::Receiver<(usize, ProbeOutcome)>,
    interrupt: Arc<AtomicBool>,
}

impl ProbePool {
    /// Spawns the worker seats; each builds its solver from the shared
    /// formula once and then waits for probes.
    pub fn new(config: ProbePoolConfig) -> ProbePool {
        let n = config.seats.max(1);
        let interrupt = Arc::new(AtomicBool::new(false));
        let (results_tx, results) = mpsc::channel::<(usize, ProbeOutcome)>();
        let mut seats = Vec::with_capacity(n);
        for seat in 0..n {
            let (jobs_tx, jobs_rx) = mpsc::channel::<Vec<Lit>>();
            let seat_config = diversified_config(&config.base, seat, config.seed);
            let clauses = Arc::clone(&config.clauses);
            let interrupt = Arc::clone(&interrupt);
            let results_tx = results_tx.clone();
            let num_vars = config.num_vars;
            let deterministic = config.deterministic;
            let budget = config.conflict_budget;
            let frozen = config.frozen.clone();
            let handle = thread::spawn(move || {
                let mut solver = Solver::with_config(seat_config);
                solver.ensure_vars(num_vars);
                for clause in clauses.iter() {
                    if !solver.add_clause(clause.iter().copied()) {
                        break;
                    }
                }
                for &v in &frozen {
                    solver.freeze_var(v);
                }
                solver.set_conflict_budget(budget);
                if !deterministic {
                    solver.set_interrupt(Arc::clone(&interrupt));
                }
                while let Ok(assumptions) = jobs_rx.recv() {
                    let result = solver.solve_with(&assumptions);
                    if matches!(result, SolveResult::Sat | SolveResult::Unsat) && !deterministic {
                        // Decisive: cancel the other seats' probes. The
                        // caller resets the flag before the next round.
                        interrupt.store(true, Ordering::Relaxed);
                    }
                    let model = if result == SolveResult::Sat {
                        Some(
                            (0..num_vars)
                                .map(|i| solver.model_value(Var::from_index(i)))
                                .collect(),
                        )
                    } else {
                        None
                    };
                    if results_tx.send((seat, ProbeOutcome { result, model })).is_err() {
                        break;
                    }
                }
                *solver.stats()
            });
            seats.push(Seat { jobs: jobs_tx, handle });
        }
        ProbePool { seats, results, interrupt }
    }

    /// Number of worker seats.
    pub fn seats(&self) -> usize {
        self.seats.len()
    }

    /// Races one round of probes: probe `i` runs on seat `i`, and the
    /// returned outcomes are positional (`outcomes[i]` answers `probes[i]`).
    /// At most [`ProbePool::seats`] probes per round.
    ///
    /// In racing mode the first decisive seat interrupts the rest, whose
    /// probes then come back `Unknown`; in deterministic mode every seat
    /// finishes. The call blocks until all of the round's probes report.
    pub fn solve_round(&mut self, probes: &[Vec<Lit>]) -> Vec<ProbeOutcome> {
        assert!(
            probes.len() <= self.seats.len(),
            "round of {} probes exceeds {} seats",
            probes.len(),
            self.seats.len()
        );
        self.interrupt.store(false, Ordering::Relaxed);
        for (seat, probe) in self.seats.iter().zip(probes) {
            seat.jobs
                .send(probe.clone())
                .expect("probe worker exited before the pool was finished");
        }
        let mut outcomes: Vec<Option<ProbeOutcome>> = Vec::with_capacity(probes.len());
        outcomes.resize_with(probes.len(), || None);
        for _ in 0..probes.len() {
            let (seat, outcome) = self
                .results
                .recv()
                .expect("probe worker exited before answering its probe");
            outcomes[seat] = Some(outcome);
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every dispatched seat reports exactly once"))
            .collect()
    }

    /// Shuts the pool down and returns each seat's accumulated solver
    /// statistics, so callers can fold worker effort into session totals.
    pub fn finish(self) -> Vec<Stats> {
        let ProbePool { seats, results, .. } = self;
        drop(results);
        seats
            .into_iter()
            .map(|seat| {
                drop(seat.jobs); // closes the job queue; the worker loop ends
                seat.handle.join().expect("probe worker panicked")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(seats: usize, clauses: Vec<Vec<Lit>>, num_vars: usize, deterministic: bool) -> ProbePool {
        ProbePool::new(ProbePoolConfig {
            seats,
            num_vars,
            clauses: Arc::new(clauses),
            base: SolverConfig::default(),
            frozen: (0..num_vars).map(Var::from_index).collect(),
            deterministic,
            seed: 7,
            conflict_budget: None,
        })
    }

    #[test]
    fn probes_answer_positionally() {
        // x0 ∨ x1; probe A assumes ¬x0 (SAT via x1), probe B assumes
        // ¬x0 ∧ ¬x1 (UNSAT). In deterministic mode both finish; in racing
        // mode the first decisive seat may cancel the other to `Unknown`,
        // but a decisive answer must still be the correct one.
        let v = |i: usize| Var::from_index(i);
        let clauses = vec![vec![v(0).positive(), v(1).positive()]];
        for deterministic in [false, true] {
            let mut p = pool(2, clauses.clone(), 2, deterministic);
            let outcomes = p.solve_round(&[
                vec![v(0).negative()],
                vec![v(0).negative(), v(1).negative()],
            ]);
            match outcomes[0].result {
                SolveResult::Sat => {
                    let model = outcomes[0].model.as_ref().expect("SAT carries a model");
                    assert_eq!(lit_value_in(model, v(1).positive()), Some(true));
                }
                SolveResult::Unknown => assert!(!deterministic, "only cancellation yields Unknown"),
                SolveResult::Unsat => panic!("probe A is satisfiable"),
            }
            match outcomes[1].result {
                SolveResult::Unsat => assert!(outcomes[1].model.is_none()),
                SolveResult::Unknown => assert!(!deterministic, "only cancellation yields Unknown"),
                SolveResult::Sat => panic!("probe B is unsatisfiable"),
            }
            assert!(
                outcomes.iter().any(|o| o.result != SolveResult::Unknown),
                "at least one seat reaches a decisive verdict"
            );
            let stats = p.finish();
            assert_eq!(stats.len(), 2);
            assert_eq!(stats[0].solves, 1);
            assert_eq!(stats[1].solves, 1);
        }
    }

    #[test]
    fn seats_persist_across_rounds() {
        let v = |i: usize| Var::from_index(i);
        let clauses = vec![vec![v(0).positive(), v(1).positive()]];
        let mut p = pool(2, clauses, 2, true);
        for _ in 0..3 {
            let outcomes = p.solve_round(&[vec![v(0).negative()], vec![v(1).negative()]]);
            assert_eq!(outcomes[0].result, SolveResult::Sat);
            assert_eq!(outcomes[1].result, SolveResult::Sat);
        }
        let stats = p.finish();
        // One solver per seat survived all three rounds.
        assert_eq!(stats[0].solves, 3);
        assert_eq!(stats[1].solves, 3);
    }

    #[test]
    fn deterministic_rounds_repeat_bit_identically() {
        let v = |i: usize| Var::from_index(i);
        // A slightly constrained formula so models are nontrivial.
        let clauses = vec![
            vec![v(0).positive(), v(1).positive(), v(2).positive()],
            vec![v(0).negative(), v(3).positive()],
        ];
        let run = || {
            let mut p = pool(3, clauses.clone(), 4, true);
            let mut transcripts = Vec::new();
            for _ in 0..2 {
                let outcomes =
                    p.solve_round(&[vec![], vec![v(1).negative()], vec![v(2).negative()]]);
                transcripts.extend(
                    outcomes.into_iter().map(|o| (o.result, o.model)),
                );
            }
            (transcripts, p.finish())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        for ((r1, m1), (r2, m2)) in t1.iter().zip(&t2) {
            assert_eq!(r1, r2);
            assert_eq!(m1, m2);
        }
        assert_eq!(s1, s2, "per-seat stats must be timing-independent");
    }

    #[test]
    fn declared_assumables_survive_seat_inprocessing() {
        // Regression: a variable assumed only in a *later* round must not
        // be BVE-eliminated by a seat's restart-boundary inprocessing
        // during an earlier round. The config forces inprocessing after
        // the very first conflict; (x0 ∨ x1) ∧ (x0 ∨ ¬x1) yields that
        // conflict under the all-false default polarity, and x2 — touched
        // by no round-1 assumption — is a prime BVE target via
        // (x2 ∨ x3) ∧ (¬x2 ∨ x4). Declaring x2 up front keeps round 2's
        // assumption legal; without the declaration the seat panics on an
        // eliminated-variable assumption.
        let v = |i: usize| Var::from_index(i);
        let clauses = vec![
            vec![v(0).positive(), v(1).positive()],
            vec![v(0).positive(), v(1).negative()],
            vec![v(2).positive(), v(3).positive()],
            vec![v(2).negative(), v(4).positive()],
        ];
        let mut p = ProbePool::new(ProbePoolConfig {
            seats: 2,
            num_vars: 5,
            clauses: Arc::new(clauses),
            base: SolverConfig {
                restart_base: 1,
                inprocess_interval: 1,
                ..SolverConfig::default()
            },
            frozen: vec![v(2)],
            deterministic: true,
            seed: 7,
            conflict_budget: None,
        });
        let first = p.solve_round(&[vec![], vec![]]);
        assert!(first.iter().all(|o| o.result == SolveResult::Sat));
        let second = p.solve_round(&[vec![v(2).positive()], vec![v(2).negative()]]);
        assert_eq!(second[0].result, SolveResult::Sat);
        assert_eq!(second[1].result, SolveResult::Sat);
        let model = second[0].model.as_ref().expect("SAT probes carry a model");
        assert_eq!(lit_value_in(model, v(2).positive()), Some(true));
        p.finish();
    }

    #[test]
    fn short_rounds_use_a_prefix_of_seats() {
        let v = |i: usize| Var::from_index(i);
        let mut p = pool(4, vec![vec![v(0).positive()]], 1, true);
        let outcomes = p.solve_round(&[vec![]]);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].result, SolveResult::Sat);
        let stats = p.finish();
        assert_eq!(stats[0].solves, 1);
        assert_eq!(stats[1].solves, 0, "idle seats stay idle");
    }
}
