//! Model enumeration.
//!
//! Enumerates satisfying assignments, optionally projected onto a subset of
//! variables. After each model, a blocking clause over the projection
//! variables excludes it, so projected enumeration yields each *projected*
//! assignment exactly once — this is what the architecture layer uses to
//! compute equivalence classes of designs (paper §6, "identify equivalence
//! classes of system deployments").

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver};

/// Result of an enumeration run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Enumeration {
    /// The models found, restricted to the projection variables, in
    /// discovery order. Each entry pairs a variable with its value.
    pub models: Vec<Vec<(Var, bool)>>,
    /// True when enumeration stopped because `limit` was reached rather
    /// than because the model space was exhausted.
    pub truncated: bool,
}

/// Enumerates up to `limit` models projected onto `projection`.
///
/// The solver is mutated: blocking clauses are added permanently. Callers
/// that need the solver afterwards should enumerate on a clone or rebuild.
/// An empty projection enumerates over all variables.
pub fn enumerate_projected(
    solver: &mut Solver,
    projection: &[Var],
    assumptions: &[Lit],
    limit: usize,
) -> Enumeration {
    let project_all: Vec<Var> = if projection.is_empty() {
        (0..solver.num_vars()).map(Var::from_index).collect()
    } else {
        projection.to_vec()
    };
    // Blocking clauses mention the projection variables on every iteration,
    // so they must be exempt from variable elimination (the freeze contract
    // — see `Solver::freeze_var`).
    for &v in &project_all {
        solver.freeze_var(v);
    }
    let mut models = Vec::new();
    let mut truncated = false;
    while models.len() < limit {
        match solver.solve_with(assumptions) {
            SolveResult::Sat => {
                let model: Vec<(Var, bool)> = project_all
                    .iter()
                    .map(|&v| (v, solver.model_value(v).unwrap_or(false)))
                    .collect();
                let blocking: Vec<Lit> = model
                    .iter()
                    .map(|&(v, value)| Lit::new(v, !value))
                    .collect();
                models.push(model);
                if !solver.add_clause(blocking) {
                    // Blocking clause made the instance unsatisfiable:
                    // the space is exhausted.
                    return Enumeration { models, truncated: false };
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Unknown => {
                truncated = true;
                break;
            }
        }
    }
    if models.len() == limit && solver.solve_with(assumptions) == SolveResult::Sat {
        truncated = true;
    }
    Enumeration { models, truncated }
}

/// Counts models projected onto `projection`, up to `limit`.
pub fn count_models(solver: &mut Solver, projection: &[Var], limit: usize) -> (usize, bool) {
    let e = enumerate_projected(solver, projection, &[], limit);
    (e.models.len(), e.truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_all_models_of_or() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        let e = enumerate_projected(&mut s, &[], &[], 10);
        assert_eq!(e.models.len(), 3); // TT, TF, FT
        assert!(!e.truncated);
    }

    #[test]
    fn projection_collapses_irrelevant_vars() {
        let mut s = Solver::new();
        let a = s.new_var();
        let _free = s.new_var(); // unconstrained variable
        s.add_clause([a.positive()]);
        let e = enumerate_projected(&mut s, &[a], &[], 10);
        // Projected onto {a}: exactly one model, regardless of `free`.
        assert_eq!(e.models.len(), 1);
        assert_eq!(e.models[0], vec![(a, true)]);
    }

    #[test]
    fn limit_reports_truncation() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(vars.iter().map(|v| v.positive())); // 7 models
        let e = enumerate_projected(&mut s, &[], &[], 2);
        assert_eq!(e.models.len(), 2);
        assert!(e.truncated);
    }

    #[test]
    fn enumeration_under_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        let e = enumerate_projected(&mut s, &[], &[a.negative()], 10);
        assert_eq!(e.models.len(), 1); // only FT survives a=false
        assert_eq!(e.models[0], vec![(a, false), (b, true)]);
    }

    #[test]
    fn count_models_of_unsat_is_zero() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        s.add_clause([a.negative()]);
        assert_eq!(count_models(&mut s, &[], 10), (0, false));
    }
}
