//! Model enumeration.
//!
//! Enumerates satisfying assignments, optionally projected onto a subset of
//! variables. After each model, a blocking clause over the projection
//! variables excludes it, so projected enumeration yields each *projected*
//! assignment exactly once — this is what the architecture layer uses to
//! compute equivalence classes of designs (paper §6, "identify equivalence
//! classes of system deployments").
//!
//! Two entry points:
//!
//! * [`enumerate_projected`] — sequential enumeration on a caller-provided
//!   solver (the incremental-session path).
//! * [`enumerate_projected_cubes`] — cube-and-conquer: the projection space
//!   is split on a small cube of decision literals, each cube enumerated on
//!   its own worker solver, and the per-cube model lists merged in cube
//!   index order. The merge rule has no timing dependence, so two runs over
//!   the same formula produce bit-identical output in every mode.

use crate::lit::{Lit, Var};
use crate::solver::{SolveResult, Solver, SolverConfig};
use crate::stats::Stats;
use std::thread;

/// Result of an enumeration run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Enumeration {
    /// The models found, restricted to the projection variables, in
    /// discovery order. Each entry pairs a variable with its value.
    pub models: Vec<Vec<(Var, bool)>>,
    /// True when enumeration stopped because `limit` was reached rather
    /// than because the model space was exhausted.
    pub truncated: bool,
}

/// Enumerates up to `limit` models projected onto `projection`.
///
/// The solver is mutated: blocking clauses are added permanently. Callers
/// that need the solver afterwards should enumerate on a clone or rebuild.
/// An empty projection enumerates over all variables.
pub fn enumerate_projected(
    solver: &mut Solver,
    projection: &[Var],
    assumptions: &[Lit],
    limit: usize,
) -> Enumeration {
    let project_all: Vec<Var> = if projection.is_empty() {
        (0..solver.num_vars()).map(Var::from_index).collect()
    } else {
        projection.to_vec()
    };
    // Blocking clauses mention the projection variables on every iteration,
    // so they must be exempt from variable elimination while the run lasts
    // (the freeze contract — see `Solver::freeze_var`). The pin is
    // temporary: variables frozen *here* are thawed again on every exit
    // path, so enumeration does not exempt them from elimination for the
    // rest of an incremental session. Variables that were already frozen —
    // or that appear in the assumptions, which `solve_with` freezes
    // permanently — stay pinned.
    let newly_frozen: Vec<Var> = project_all
        .iter()
        .copied()
        .filter(|&v| !solver.is_frozen(v) && !assumptions.iter().any(|l| l.var() == v))
        .collect();
    for &v in &project_all {
        solver.freeze_var(v);
    }
    let enumeration = enumerate_pinned(solver, &project_all, assumptions, limit);
    for &v in &newly_frozen {
        solver.thaw_var(v);
    }
    enumeration
}

/// The enumeration loop proper, with the projection already frozen.
fn enumerate_pinned(
    solver: &mut Solver,
    project_all: &[Var],
    assumptions: &[Lit],
    limit: usize,
) -> Enumeration {
    let mut models = Vec::new();
    let mut truncated = false;
    while models.len() < limit {
        match solver.solve_with(assumptions) {
            SolveResult::Sat => {
                let model: Vec<(Var, bool)> = project_all
                    .iter()
                    .map(|&v| (v, solver.model_value(v).unwrap_or(false)))
                    .collect();
                let blocking: Vec<Lit> = model
                    .iter()
                    .map(|&(v, value)| Lit::new(v, !value))
                    .collect();
                models.push(model);
                if !solver.add_clause(blocking) {
                    // Blocking clause made the instance unsatisfiable:
                    // the space is exhausted.
                    return Enumeration { models, truncated: false };
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Unknown => {
                truncated = true;
                break;
            }
        }
    }
    if models.len() == limit {
        match solver.solve_with(assumptions) {
            // More projected assignments exist — or the probe could not
            // decide, in which case claiming the space was exhausted would
            // be a lie. Both count as truncation; only a proven UNSAT may
            // report the enumeration as complete.
            SolveResult::Sat | SolveResult::Unknown => truncated = true,
            SolveResult::Unsat => {}
        }
    }
    Enumeration { models, truncated }
}

/// Counts models projected onto `projection`, up to `limit`.
pub fn count_models(solver: &mut Solver, projection: &[Var], limit: usize) -> (usize, bool) {
    let e = enumerate_projected(solver, projection, &[], limit);
    (e.models.len(), e.truncated)
}

/// Result of a cube-and-conquer enumeration ([`enumerate_projected_cubes`]).
#[derive(Clone, Debug)]
pub struct CubeEnumeration {
    /// Full models (indexed by variable), concatenated in cube index order
    /// and truncated to the requested limit. Within a cube, models appear
    /// in that worker's discovery order; the merge itself never depends on
    /// worker timing.
    pub models: Vec<Vec<Option<bool>>>,
    /// True when the model space was not provably exhausted: a cube hit the
    /// limit (or could not decide its final probe), or the merged total
    /// overflowed the limit.
    pub truncated: bool,
    /// Per-cube worker solver statistics, indexed by cube.
    pub stats: Vec<Stats>,
}

/// Cube-and-conquer projected enumeration over a standalone formula.
///
/// The first `cube_bits` projection variables (clamped to the projection
/// size) split the projected space into `2^cube_bits` disjoint cubes. Each
/// cube runs on a fresh worker solver built from `base` over `clauses`,
/// enumerating under `assumptions` plus the cube's decision literals with
/// per-cube blocking clauses. Because the cubes partition the projected
/// space, the merged list has no duplicates, and because workers never
/// exchange anything, each cube's output is a pure function of its inputs —
/// the merged result is bit-identical run to run in every mode.
///
/// Each cube enumerates up to `limit` models (a single cube may hold the
/// entire space), and the merge truncates the concatenation to `limit`.
pub fn enumerate_projected_cubes(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    base: &SolverConfig,
    projection: &[Var],
    assumptions: &[Lit],
    limit: usize,
    cube_bits: usize,
) -> CubeEnumeration {
    /// One cube's output: its models, whether it truncated, and its
    /// worker's solver statistics.
    type CubeOutcome = (Vec<Vec<Option<bool>>>, bool, Stats);
    let bits = cube_bits.min(projection.len());
    let num_cubes = 1usize << bits;
    let mut per_cube: Vec<Option<CubeOutcome>> = Vec::new();
    per_cube.resize_with(num_cubes, || None);

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_cubes);
        for cube in 0..num_cubes {
            handles.push(scope.spawn(move || {
                let mut solver = Solver::with_config(base.clone());
                solver.ensure_vars(num_vars);
                for clause in clauses {
                    if !solver.add_clause(clause.iter().copied()) {
                        break;
                    }
                }
                // Worker solvers are throwaway, but their own inprocessing
                // must still not eliminate variables the blocking clauses
                // will mention.
                for &v in projection {
                    solver.freeze_var(v);
                }
                let mut cube_assumptions = assumptions.to_vec();
                for (j, &v) in projection.iter().take(bits).enumerate() {
                    cube_assumptions.push(Lit::new(v, (cube >> j) & 1 == 1));
                }
                enumerate_cube(&mut solver, projection, &cube_assumptions, limit)
            }));
        }
        for (cube, handle) in handles.into_iter().enumerate() {
            per_cube[cube] = handle.join().ok();
        }
    });

    let mut models = Vec::new();
    let mut truncated = false;
    let mut stats = Vec::with_capacity(num_cubes);
    for outcome in per_cube {
        let (cube_models, cube_truncated, cube_stats) =
            outcome.expect("cube enumeration worker panicked");
        truncated |= cube_truncated;
        models.extend(cube_models);
        stats.push(cube_stats);
    }
    if models.len() > limit {
        models.truncate(limit);
        truncated = true;
    }
    CubeEnumeration { models, truncated, stats }
}

/// One cube's enumeration: full models, with per-cube blocking clauses over
/// the projection. Mirrors [`enumerate_pinned`], but keeps the complete
/// assignment so callers can extract representative designs from it.
fn enumerate_cube(
    solver: &mut Solver,
    projection: &[Var],
    assumptions: &[Lit],
    limit: usize,
) -> (Vec<Vec<Option<bool>>>, bool, Stats) {
    let num_vars = solver.num_vars();
    let mut models: Vec<Vec<Option<bool>>> = Vec::new();
    let mut truncated = false;
    while models.len() < limit {
        match solver.solve_with(assumptions) {
            SolveResult::Sat => {
                let full: Vec<Option<bool>> = (0..num_vars)
                    .map(|i| solver.model_value(Var::from_index(i)))
                    .collect();
                let blocking: Vec<Lit> = projection
                    .iter()
                    .map(|&v| Lit::new(v, !full[v.index()].unwrap_or(false)))
                    .collect();
                models.push(full);
                if !solver.add_clause(blocking) {
                    return (models, false, *solver.stats());
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Unknown => {
                truncated = true;
                break;
            }
        }
    }
    if models.len() == limit {
        match solver.solve_with(assumptions) {
            SolveResult::Sat | SolveResult::Unknown => truncated = true,
            SolveResult::Unsat => {}
        }
    }
    (models, truncated, *solver.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_all_models_of_or() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        let e = enumerate_projected(&mut s, &[], &[], 10);
        assert_eq!(e.models.len(), 3); // TT, TF, FT
        assert!(!e.truncated);
    }

    #[test]
    fn projection_collapses_irrelevant_vars() {
        let mut s = Solver::new();
        let a = s.new_var();
        let _free = s.new_var(); // unconstrained variable
        s.add_clause([a.positive()]);
        let e = enumerate_projected(&mut s, &[a], &[], 10);
        // Projected onto {a}: exactly one model, regardless of `free`.
        assert_eq!(e.models.len(), 1);
        assert_eq!(e.models[0], vec![(a, true)]);
    }

    #[test]
    fn limit_reports_truncation() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        s.add_clause(vars.iter().map(|v| v.positive())); // 7 models
        let e = enumerate_projected(&mut s, &[], &[], 2);
        assert_eq!(e.models.len(), 2);
        assert!(e.truncated);
    }

    #[test]
    fn enumeration_under_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        let e = enumerate_projected(&mut s, &[], &[a.negative()], 10);
        assert_eq!(e.models.len(), 1); // only FT survives a=false
        assert_eq!(e.models[0], vec![(a, false), (b, true)]);
    }

    #[test]
    fn count_models_of_unsat_is_zero() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        s.add_clause([a.negative()]);
        assert_eq!(count_models(&mut s, &[], 10), (0, false));
    }

    /// `p → PHP(n)`: a projection variable whose positive phase activates a
    /// pigeonhole contradiction. The p=false half of the space is trivially
    /// satisfiable; refuting the p=true half takes real conflicts.
    fn gated_pigeonhole(s: &mut Solver, pigeons: usize) -> Var {
        let p = s.new_var();
        let holes = pigeons - 1;
        let vars: Vec<Var> = (0..pigeons * holes).map(|_| s.new_var()).collect();
        let var = |pi: usize, h: usize| vars[pi * holes + h];
        for pi in 0..pigeons {
            let mut clause = vec![p.negative()];
            clause.extend((0..holes).map(|h| var(pi, h).positive()));
            s.add_clause(clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([p.negative(), var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        p
    }

    #[test]
    fn exhausted_space_at_the_limit_is_not_truncated() {
        // Exactly one projected model and limit 1: the final probe proves
        // UNSAT, so the enumeration may report the space exhausted.
        let mut s = Solver::new();
        let p = gated_pigeonhole(&mut s, 5);
        let e = enumerate_projected(&mut s, &[p], &[], 1);
        assert_eq!(e.models, vec![vec![(p, false)]]);
        assert!(!e.truncated, "a proven-UNSAT final probe means exhaustion");
    }

    #[test]
    fn inconclusive_final_probe_reports_truncation() {
        // Same space, but a conflict budget the pigeonhole refutation
        // cannot fit in: finding the p=false model is conflict-free, while
        // the final probe (forced into the contradiction) exhausts its
        // budget and returns Unknown. Claiming exhaustion here would be
        // wrong — the enumeration must report truncation.
        let mut s = Solver::new();
        let p = gated_pigeonhole(&mut s, 5);
        s.set_conflict_budget(Some(3));
        let e = enumerate_projected(&mut s, &[p], &[], 1);
        assert_eq!(e.models, vec![vec![(p, false)]]);
        assert!(
            e.truncated,
            "an inconclusive final probe must not claim the space was exhausted"
        );
    }

    #[test]
    fn enumeration_thaws_what_it_froze() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let pinned = s.new_var();
        s.freeze_var(pinned);
        s.add_clause([a.positive(), b.positive(), pinned.positive()]);
        let e = enumerate_projected(&mut s, &[a, pinned], &[b.positive()], 10);
        assert!(!e.models.is_empty());
        // The temporary projection pin is released; pre-existing freezes
        // (and the assumption-frozen variable) survive.
        assert!(!s.is_frozen(a), "projection freeze must be balanced by a thaw");
        assert!(s.is_frozen(pinned), "caller freezes outlive the enumeration");
        assert!(s.is_frozen(b), "assumption freezes are permanent");
    }

    #[test]
    fn cube_enumeration_matches_sequential() {
        // Exactly-one-of-3 via pairwise exclusions: 3 projected models.
        let build = |s: &mut Solver| -> Vec<Var> {
            let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
            s.add_clause(vars.iter().map(|v| v.positive()));
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause([vars[i].negative(), vars[j].negative()]);
                }
            }
            vars
        };
        let mut seq_solver = Solver::new();
        let vars = build(&mut seq_solver);
        let seq = enumerate_projected(&mut seq_solver, &vars, &[], 10);

        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        clauses.push(vars.iter().map(|v| v.positive()).collect());
        for i in 0..3 {
            for j in (i + 1)..3 {
                clauses.push(vec![vars[i].negative(), vars[j].negative()]);
            }
        }
        for bits in 0..=2 {
            let cubes = enumerate_projected_cubes(
                3,
                &clauses,
                &SolverConfig::default(),
                &vars,
                &[],
                10,
                bits,
            );
            assert_eq!(cubes.stats.len(), 1 << bits);
            assert!(!cubes.truncated);
            let mut seq_set: Vec<Vec<(Var, bool)>> = seq.models.clone();
            let mut cube_set: Vec<Vec<(Var, bool)>> = cubes
                .models
                .iter()
                .map(|m| vars.iter().map(|&v| (v, m[v.index()].unwrap_or(false))).collect())
                .collect();
            seq_set.sort();
            cube_set.sort();
            assert_eq!(seq_set, cube_set, "bits={bits}");
        }
    }

    #[test]
    fn cube_merge_is_deterministic_and_limit_aware() {
        // 3 free projected vars → 8 models; limit 5 truncates the merge.
        let clauses: Vec<Vec<Lit>> = vec![];
        let vars: Vec<Var> = (0..3).map(Var::from_index).collect();
        let run = || {
            enumerate_projected_cubes(
                3,
                &clauses,
                &SolverConfig::default(),
                &vars,
                &[],
                5,
                2,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.models.len(), 5);
        assert!(a.truncated);
        assert_eq!(a.models, b.models, "cube merge must be bit-identical across runs");
        assert_eq!(a.truncated, b.truncated);
    }
}
