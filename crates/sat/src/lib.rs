//! # netarch-sat
//!
//! A from-scratch conflict-driven clause-learning (CDCL) SAT solver. This is
//! the reasoning substrate for the `netarch` workspace, which reproduces
//! *Lightweight Automated Reasoning for Network Architectures* (HotNets '24):
//! the paper's prototype is "a shim layer over SAT solvers" (§5.1), and this
//! crate is that solver.
//!
//! Features:
//! - two-watched-literal unit propagation with blocker literals,
//! - first-UIP clause learning with local minimization,
//! - exponential VSIDS branching with phase saving,
//! - Luby restarts and LBD/activity-ranked learnt-clause deletion,
//! - incremental solving under assumptions with unsat-core extraction,
//! - model enumeration (optionally projected onto a variable subset),
//! - DRAT proof logging ([`proof`]) with an independent counter-based
//!   RUP/DRAT checker ([`checker`]) so UNSAT verdicts are certifiable,
//! - parallel portfolio solving ([`portfolio`]): diversified workers racing
//!   under first-winner-cancels, with LBD-filtered clause sharing,
//! - DIMACS CNF I/O,
//! - per-feature ablation switches in [`SolverConfig`].
//!
//! ```
//! use netarch_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! solver.add_clause([x.positive(), y.positive()]);
//! solver.add_clause([x.negative()]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(y), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clause;
pub mod checker;
pub mod dimacs;
pub mod enumerate;
mod heap;
mod lit;
pub mod portfolio;
pub mod probes;
pub mod proof;
mod solver;
mod stats;

pub use checker::{check_refutation, check_refutation_under_assumptions, CheckError, Checker};
pub use enumerate::{enumerate_projected_cubes, CubeEnumeration};
pub use lit::{LBool, Lit, Var};
pub use portfolio::{Portfolio, PortfolioConfig, PortfolioResult, PortfolioStats};
pub use probes::{lit_value_in, ProbeOutcome, ProbePool, ProbePoolConfig};
pub use proof::{DratProof, ProofSink, ProofStep};
pub use solver::{ClauseExchange, SolveResult, Solver, SolverConfig};
pub use stats::Stats;
