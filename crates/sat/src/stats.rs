//! Solver statistics counters.

use std::fmt;

/// Counters accumulated across the lifetime of a [`crate::Solver`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of `solve`/`solve_with` invocations.
    pub solves: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals enqueued by unit propagation (including decisions).
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt from conflicts (excluding learnt units).
    pub learnt_clauses: u64,
    /// Total literals across learnt clauses.
    pub learnt_literals: u64,
    /// Literals removed by learned-clause minimization.
    pub minimized_literals: u64,
    /// Learnt-clause database reductions.
    pub reductions: u64,
    /// Learnt clauses deleted by reductions.
    pub deleted_clauses: u64,
    /// Activation literals permanently retired via [`crate::Solver::retire`].
    pub retired_activations: u64,
    /// Root-satisfied clauses reclaimed by [`crate::Solver::simplify`]
    /// (mostly retired activation-gated clauses in incremental sessions).
    pub garbage_collected_clauses: u64,
    /// Learnt clauses accepted by the portfolio exchange on export.
    pub exported_clauses: u64,
    /// Foreign clauses integrated from the portfolio exchange.
    pub imported_clauses: u64,
    /// Solves that ended early because the interrupt flag was observed.
    pub interrupts: u64,
    /// Decisions taken by the seeded random policy instead of VSIDS.
    pub random_decisions: u64,
    /// Inprocessing rounds executed at restart boundaries.
    pub inprocessings: u64,
    /// Clauses deleted because another live clause subsumes them.
    pub subsumed: u64,
    /// Clauses strengthened by self-subsumption resolution.
    pub strengthened: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Clauses shortened by vivification probes.
    pub vivified: u64,
    /// Conflicts resolved by chronological backtracking (one level) instead
    /// of a far non-chronological backjump.
    pub chrono_backtracks: u64,
}

impl Stats {
    /// Adds every counter from `other` into `self`. The parallel query
    /// loops use this to fold worker-solver statistics into one session
    /// total, so counters never silently vanish with the throwaway workers.
    pub fn absorb(&mut self, other: &Stats) {
        self.solves += other.solves;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.learnt_literals += other.learnt_literals;
        self.minimized_literals += other.minimized_literals;
        self.reductions += other.reductions;
        self.deleted_clauses += other.deleted_clauses;
        self.retired_activations += other.retired_activations;
        self.garbage_collected_clauses += other.garbage_collected_clauses;
        self.exported_clauses += other.exported_clauses;
        self.imported_clauses += other.imported_clauses;
        self.interrupts += other.interrupts;
        self.random_decisions += other.random_decisions;
        self.inprocessings += other.inprocessings;
        self.subsumed += other.subsumed;
        self.strengthened += other.strengthened;
        self.eliminated_vars += other.eliminated_vars;
        self.vivified += other.vivified;
        self.chrono_backtracks += other.chrono_backtracks;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} conflicts={} restarts={} \
             learnt={} deleted={} minimized_lits={} retired={} gc={} \
             exported={} imported={} interrupts={} random_decisions={} \
             inprocessings={} subsumed={} strengthened={} eliminated_vars={} \
             vivified={} chrono_backtracks={}",
            self.solves,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_clauses,
            self.deleted_clauses,
            self.minimized_literals,
            self.retired_activations,
            self.garbage_collected_clauses,
            self.exported_clauses,
            self.imported_clauses,
            self.interrupts,
            self.random_decisions,
            self.inprocessings,
            self.subsumed,
            self.strengthened,
            self.eliminated_vars,
            self.vivified,
            self.chrono_backtracks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fieldwise() {
        let mut a = Stats { solves: 2, conflicts: 7, eliminated_vars: 1, ..Stats::default() };
        let b = Stats { solves: 3, conflicts: 5, interrupts: 4, ..Stats::default() };
        a.absorb(&b);
        assert_eq!(a.solves, 5);
        assert_eq!(a.conflicts, 12);
        assert_eq!(a.eliminated_vars, 1);
        assert_eq!(a.interrupts, 4);
        // Absorbing the default is the identity.
        let before = a;
        a.absorb(&Stats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn display_mentions_key_counters() {
        let s = Stats {
            conflicts: 7,
            ..Stats::default()
        };
        let text = s.to_string();
        assert!(text.contains("conflicts=7"));
        assert!(text.contains("decisions=0"));
    }
}
