//! DRAT proof logging.
//!
//! A solver that answers UNSAT is making a universally-quantified claim —
//! *no* assignment works — and a bug anywhere in propagation, conflict
//! analysis, or clause deletion can silently turn that claim into a lie.
//! Following modern SAT practice (the certified-UNSAT track of the SAT
//! competitions), the solver can record every clause it *adds* (learns) and
//! *deletes* as a DRAT proof: a sequence of clause additions, each checkable
//! by reverse unit propagation (RUP) or the resolution-asymmetric-tautology
//! (RAT) criterion, plus deletion hints. The independent verifier lives in
//! [`crate::checker`]; this module defines the proof representation, the
//! [`ProofSink`] trait the solver logs through, and the standard text and
//! binary DRAT serialization formats.
//!
//! Text DRAT is DIMACS-like: an addition is a clause line (`1 -2 0`), a
//! deletion is prefixed with `d` (`d 1 -2 0`). Binary DRAT prefixes each
//! step with `a` (0x61) or `d` (0x64) and encodes each literal as the
//! variable-length 7-bit integer of `2·|lit| + sign`, zero-terminated.

use crate::lit::Lit;
use std::fmt::Write as _;

/// One step of a DRAT proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// Addition of a clause claimed to be redundant (RUP/RAT) with respect
    /// to the formula accumulated so far.
    Add(Vec<Lit>),
    /// Deletion of a clause from the accumulated formula.
    Delete(Vec<Lit>),
}

impl ProofStep {
    /// The clause this step adds or deletes.
    pub fn clause(&self) -> &[Lit] {
        match self {
            ProofStep::Add(c) | ProofStep::Delete(c) => c,
        }
    }

    /// True for [`ProofStep::Add`].
    pub fn is_add(&self) -> bool {
        matches!(self, ProofStep::Add(_))
    }
}

/// A consumer of proof events, threaded through the solver's learn,
/// minimization, and deletion sites.
///
/// Implementations may record steps in memory ([`DratProof`]), stream them
/// to a writer, or compute statistics. Sinks observe *derived* clauses
/// only: the original problem clauses are the CNF the proof is checked
/// against, not part of the proof itself.
///
/// Sinks must be `Send`: a solver carrying one is a long-lived session
/// object that serving layers hand off between worker threads, so the
/// whole solver (sink included) has to be movable across threads.
pub trait ProofSink: Send {
    /// A clause was derived (learned, strengthened, or concluded). The
    /// clause must be redundant with respect to the clauses accumulated so
    /// far (original CNF plus earlier additions, minus deletions).
    fn add_clause(&mut self, clause: &[Lit]);

    /// A clause was removed from the solver's working set.
    fn delete_clause(&mut self, clause: &[Lit]);
}

/// An in-memory DRAT proof: the default [`ProofSink`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DratProof {
    steps: Vec<ProofStep>,
}

/// Errors from parsing serialized DRAT proofs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofParseError {
    /// A token in a text proof was neither an integer nor `d`.
    BadToken {
        /// 1-based line number of the offending token.
        line: usize,
        /// The token as read.
        token: String,
    },
    /// A literal's magnitude exceeded the representable range.
    LiteralOutOfRange {
        /// The out-of-range value.
        value: i64,
    },
    /// Input ended in the middle of a step (missing terminating `0`).
    UnterminatedStep,
    /// A binary proof step began with a byte other than `a`/`d`.
    BadStepTag {
        /// The unexpected tag byte.
        tag: u8,
    },
}

impl std::fmt::Display for ProofParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofParseError::BadToken { line, token } => {
                write!(f, "unexpected proof token {token:?} on line {line}")
            }
            ProofParseError::LiteralOutOfRange { value } => {
                write!(f, "proof literal {value} out of range")
            }
            ProofParseError::UnterminatedStep => write!(f, "proof ended inside a step"),
            ProofParseError::BadStepTag { tag } => {
                write!(f, "binary proof step tag {tag:#04x} is neither 'a' nor 'd'")
            }
        }
    }
}

impl std::error::Error for ProofParseError {}

impl DratProof {
    /// Creates an empty proof.
    pub fn new() -> DratProof {
        DratProof::default()
    }

    /// The recorded steps, in derivation order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step directly (used by parsers and tests; the solver goes
    /// through the [`ProofSink`] methods).
    pub fn push(&mut self, step: ProofStep) {
        self.steps.push(step);
    }

    /// True when the proof ends in (contains) an empty-clause addition —
    /// the shape of a complete refutation.
    pub fn adds_empty_clause(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, ProofStep::Add(c) if c.is_empty()))
    }

    /// Number of addition steps.
    pub fn num_additions(&self) -> usize {
        self.steps.iter().filter(|s| s.is_add()).count()
    }

    /// Number of deletion steps.
    pub fn num_deletions(&self) -> usize {
        self.steps.len() - self.num_additions()
    }

    /// Renders the proof in text DRAT format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            if let ProofStep::Delete(_) = step {
                out.push_str("d ");
            }
            for lit in step.clause() {
                let _ = write!(out, "{} ", lit.to_dimacs());
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses a text DRAT proof. Lines starting with `c` are comments;
    /// steps may span lines, exactly like DIMACS clauses.
    pub fn parse_text(input: &str) -> Result<DratProof, ProofParseError> {
        let mut proof = DratProof::new();
        let mut current: Vec<Lit> = Vec::new();
        let mut deleting = false;
        let mut mid_step = false;
        for (line_index, line) in input.lines().enumerate() {
            let line_no = line_index + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('c') {
                continue;
            }
            for token in trimmed.split_whitespace() {
                if token == "d" && !mid_step {
                    deleting = true;
                    mid_step = true;
                    continue;
                }
                let value: i64 = token.parse().map_err(|_| ProofParseError::BadToken {
                    line: line_no,
                    token: token.to_string(),
                })?;
                if value == 0 {
                    let clause = std::mem::take(&mut current);
                    proof.push(if deleting {
                        ProofStep::Delete(clause)
                    } else {
                        ProofStep::Add(clause)
                    });
                    deleting = false;
                    mid_step = false;
                } else {
                    mid_step = true;
                    let lit = Lit::from_dimacs(value)
                        .ok_or(ProofParseError::LiteralOutOfRange { value })?;
                    current.push(lit);
                }
            }
        }
        if mid_step {
            return Err(ProofParseError::UnterminatedStep);
        }
        Ok(proof)
    }

    /// Renders the proof in binary DRAT format.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for step in &self.steps {
            out.push(if step.is_add() { b'a' } else { b'd' });
            for lit in step.clause() {
                push_varint(&mut out, binary_code(*lit));
            }
            out.push(0);
        }
        out
    }

    /// Parses a binary DRAT proof.
    pub fn parse_binary(input: &[u8]) -> Result<DratProof, ProofParseError> {
        let mut proof = DratProof::new();
        let mut bytes = input.iter().copied().peekable();
        while let Some(tag) = bytes.next() {
            let deleting = match tag {
                b'a' => false,
                b'd' => true,
                other => return Err(ProofParseError::BadStepTag { tag: other }),
            };
            let mut clause = Vec::new();
            loop {
                let code = read_varint(&mut bytes)?;
                if code == 0 {
                    break;
                }
                clause.push(lit_from_binary(code)?);
            }
            proof.push(if deleting {
                ProofStep::Delete(clause)
            } else {
                ProofStep::Add(clause)
            });
        }
        Ok(proof)
    }
}

impl ProofSink for DratProof {
    fn add_clause(&mut self, clause: &[Lit]) {
        self.steps.push(ProofStep::Add(clause.to_vec()));
    }

    fn delete_clause(&mut self, clause: &[Lit]) {
        self.steps.push(ProofStep::Delete(clause.to_vec()));
    }
}

/// The binary-DRAT unsigned mapping: `2·|lit| + (lit < 0)` over DIMACS
/// numbering, i.e. `(var_index + 1) << 1 | negative`.
fn binary_code(lit: Lit) -> u64 {
    let magnitude = (lit.var().index() as u64 + 1) << 1;
    magnitude | u64::from(lit.is_negative())
}

fn lit_from_binary(code: u64) -> Result<Lit, ProofParseError> {
    let magnitude = (code >> 1) as i64;
    let value = if code & 1 == 1 { -magnitude } else { magnitude };
    Lit::from_dimacs(value).ok_or(ProofParseError::LiteralOutOfRange { value })
}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(
    bytes: &mut std::iter::Peekable<impl Iterator<Item = u8>>,
) -> Result<u64, ProofParseError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes.next().ok_or(ProofParseError::UnterminatedStep)?;
        let chunk = u64::from(byte & 0x7F);
        // The tenth chunk lands at shift 63, where only its low bit fits in
        // a u64; a wider chunk must be rejected here (shifting would
        // silently drop its high bits, decoding to a wrong literal).
        if shift > 57 && chunk >> (64 - shift) != 0 {
            return Err(ProofParseError::LiteralOutOfRange { value: i64::MAX });
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(ProofParseError::LiteralOutOfRange { value: i64::MAX });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v).unwrap()
    }

    #[test]
    fn sink_records_steps_in_order() {
        let mut p = DratProof::new();
        p.add_clause(&[lit(1), lit(-2)]);
        p.delete_clause(&[lit(3)]);
        p.add_clause(&[]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_additions(), 2);
        assert_eq!(p.num_deletions(), 1);
        assert!(p.adds_empty_clause());
        assert_eq!(p.steps()[0], ProofStep::Add(vec![lit(1), lit(-2)]));
        assert_eq!(p.steps()[1], ProofStep::Delete(vec![lit(3)]));
    }

    #[test]
    fn text_roundtrip() {
        let mut p = DratProof::new();
        p.add_clause(&[lit(1), lit(-2), lit(3)]);
        p.delete_clause(&[lit(-1), lit(2)]);
        p.add_clause(&[lit(-3)]);
        p.add_clause(&[]);
        let text = p.to_text();
        assert!(text.contains("d -1 2 0"));
        assert_eq!(DratProof::parse_text(&text).unwrap(), p);
    }

    #[test]
    fn text_parse_tolerates_comments_and_linebreaks() {
        let p = DratProof::parse_text("c comment\n1 -2\nc mid-step comment\n3 0\nd 1\n0\n").unwrap();
        assert_eq!(p.steps()[0], ProofStep::Add(vec![lit(1), lit(-2), lit(3)]));
        assert_eq!(p.steps()[1], ProofStep::Delete(vec![lit(1)]));
    }

    #[test]
    fn text_parse_errors() {
        assert!(matches!(
            DratProof::parse_text("1 x 0\n"),
            Err(ProofParseError::BadToken { .. })
        ));
        assert!(matches!(
            DratProof::parse_text("1 2\n"),
            Err(ProofParseError::UnterminatedStep)
        ));
        assert!(matches!(
            DratProof::parse_text("9999999999 0\n"),
            Err(ProofParseError::LiteralOutOfRange { .. })
        ));
        // `d` not at the start of a step is a bad token.
        assert!(matches!(
            DratProof::parse_text("1 d 2 0\n"),
            Err(ProofParseError::BadToken { .. })
        ));
    }

    #[test]
    fn binary_roundtrip() {
        let mut p = DratProof::new();
        p.add_clause(&[lit(1), lit(-2), lit(300)]);
        p.delete_clause(&[lit(-1)]);
        p.add_clause(&[]);
        let bin = p.to_binary();
        assert_eq!(bin[0], b'a');
        assert_eq!(DratProof::parse_binary(&bin).unwrap(), p);
    }

    #[test]
    fn binary_varint_width() {
        // DIMACS literal 64 maps to 128, which needs two varint bytes.
        let big = Var::from_index(63).positive();
        let mut p = DratProof::new();
        p.add_clause(&[big]);
        let bin = p.to_binary();
        assert_eq!(bin, vec![b'a', 0x80, 0x01, 0x00]);
        assert_eq!(DratProof::parse_binary(&bin).unwrap(), p);
    }

    #[test]
    fn binary_parse_errors() {
        assert!(matches!(
            DratProof::parse_binary(&[b'x', 0x02, 0x00]),
            Err(ProofParseError::BadStepTag { tag: b'x' })
        ));
        assert!(matches!(
            DratProof::parse_binary(&[b'a', 0x02]),
            Err(ProofParseError::UnterminatedStep)
        ));
        assert!(matches!(
            DratProof::parse_binary(&[b'a', 0x82]),
            Err(ProofParseError::UnterminatedStep)
        ));
    }

    #[test]
    fn binary_varint_overflow_is_rejected() {
        // Nine continuation chunks put the terminating chunk at shift 63,
        // where only one payload bit fits. A wider terminator must error
        // instead of silently truncating to a wrong literal.
        let mut oversized = vec![b'a'];
        oversized.extend(std::iter::repeat_n(0x80, 9));
        oversized.push(0x02);
        assert!(matches!(
            DratProof::parse_binary(&oversized),
            Err(ProofParseError::LiteralOutOfRange { .. })
        ));
        // Eleven chunks overflow outright regardless of payload.
        let mut too_long = vec![b'a'];
        too_long.extend(std::iter::repeat_n(0x80, 10));
        too_long.push(0x01);
        assert!(matches!(
            DratProof::parse_binary(&too_long),
            Err(ProofParseError::LiteralOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_proof_roundtrips_both_ways() {
        let p = DratProof::new();
        assert_eq!(DratProof::parse_text(&p.to_text()).unwrap(), p);
        assert_eq!(DratProof::parse_binary(&p.to_binary()).unwrap(), p);
        assert!(!p.adds_empty_clause());
    }
}
