//! Indexed max-heap over variables ordered by VSIDS activity.
//!
//! The solver needs three operations not offered by `std::collections`:
//! membership testing, key increase for an element already in the heap, and
//! removal of the maximum — all O(log n) with O(1) lookup. This is the
//! standard indexed binary heap used by MiniSat-family solvers.

use crate::lit::Var;

/// Binary max-heap of variables keyed by an external activity table.
#[derive(Default)]
pub struct VarHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `position[v]` = index of `v` in `heap`, or `NOT_IN_HEAP`.
    position: Vec<u32>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Extends internal tables to cover `num_vars` variables.
    pub fn grow_to(&mut self, num_vars: usize) {
        if self.position.len() < num_vars {
            self.position.resize(num_vars, NOT_IN_HEAP);
        }
    }

    /// Returns `true` when no variable is queued.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued variables.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if `var` is currently queued.
    pub fn contains(&self, var: Var) -> bool {
        self.position
            .get(var.index())
            .is_some_and(|&p| p != NOT_IN_HEAP)
    }

    /// Inserts `var` if absent. `activity[v]` supplies the ordering key.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow_to(var.index() + 1);
        if self.contains(var) {
            return;
        }
        self.position[var.index()] = self.heap.len() as u32;
        self.heap.push(var.0);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores heap order after `var`'s activity increased.
    pub fn increased(&mut self, var: Var, activity: &[f64]) {
        if let Some(&p) = self.position.get(var.index()) {
            if p != NOT_IN_HEAP {
                self.sift_up(p as usize, activity);
            }
        }
    }

    /// Removes and returns the most active queued variable.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.position[top as usize] = NOT_IN_HEAP;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    fn better(&self, a: u32, b: u32, activity: &[f64]) -> bool {
        let (ka, kb) = (activity[a as usize], activity[b as usize]);
        ka > kb || (ka == kb && a < b)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent], activity) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut best = i;
            if left < self.heap.len() && self.better(self.heap[left], self.heap[best], activity) {
                best = left;
            }
            if right < self.heap.len() && self.better(self.heap[right], self.heap[best], activity) {
                best = right;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i] as usize] = i as u32;
        self.position[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = VarHeap::new();
        for i in 0..4 {
            h.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert!(h.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var::from_index(0), &activity);
        h.insert(Var::from_index(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn increased_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        h.increased(Var::from_index(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn ties_broken_by_index() {
        let activity = vec![1.0; 5];
        let mut h = VarHeap::new();
        for i in (0..5).rev() {
            h.insert(Var::from_index(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let mut h = VarHeap::new();
        assert_eq!(h.pop_max(&[]), None);
    }
}
