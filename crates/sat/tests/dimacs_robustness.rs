//! DIMACS parser robustness: fuzz-style edge cases plus a round-trip
//! property.
//!
//! The parser is the trust boundary for every external instance (and for
//! the proof-check corpus in CI), so it must be total: every input either
//! parses to a well-formed `Cnf` or returns a typed `ParseError` — never a
//! panic, never a silently wrong clause list.

use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{prop_assert, prop_assert_eq, Rng};
use netarch_sat::dimacs::{self, Cnf, ParseError};
use netarch_sat::Lit;

#[test]
fn comments_and_satlib_trailers_anywhere() {
    // `c` comments and SATLIB `%` trailers may appear before, between,
    // and after clauses — even between the literals of one clause.
    let text = "c head\np cnf 3 2\nc mid\n1 -2\nc split clause\n3 0\n% trailer\n2 0\nc tail\n";
    let cnf = dimacs::parse(text).unwrap();
    assert_eq!(cnf.num_vars, 3);
    assert_eq!(cnf.clauses.len(), 2);
    assert_eq!(cnf.clauses[0].len(), 3, "comment inside a clause must not split it");
}

#[test]
fn malformed_headers_are_rejected_with_the_line_number() {
    for text in [
        "p cnf\n1 0\n",          // missing both counts
        "p cnf 3\n1 0\n",        // missing clause count
        "p cnf three 2\n1 0\n",  // non-numeric var count
        "p cnf 3 two\n1 0\n",    // non-numeric clause count
        "p dnf 3 2\n1 0\n",      // wrong format tag
        "p cnf -3 2\n1 0\n",     // negative count
    ] {
        assert_eq!(
            dimacs::parse(text),
            Err(ParseError::BadHeader { line: 1 }),
            "input {text:?} must be rejected"
        );
    }
    // A later header line reports its own line number.
    assert_eq!(dimacs::parse("c x\np cnf\n"), Err(ParseError::BadHeader { line: 2 }));
}

#[test]
fn whitespace_variations_parse_identically() {
    let canonical = dimacs::parse("p cnf 3 2\n1 -2 0\n3 0\n").unwrap();
    for text in [
        "p cnf 3 2\n  1\t-2   0\n\n\n 3  0 \n",     // tabs, runs, blanks
        "p cnf 3 2\r\n1 -2 0\r\n3 0\r\n",           // CRLF line endings
        "p cnf 3 2\n1\n-2\n0\n3\n0\n",              // one token per line
        "p cnf 3 2\n1 -2 0 3 0\n",                  // everything on one line
    ] {
        assert_eq!(dimacs::parse(text).unwrap(), canonical, "input {text:?}");
    }
}

#[test]
fn trailing_and_lone_zeros_are_empty_clauses() {
    // Every `0` terminates a clause; extra zeros terminate empty ones.
    let cnf = dimacs::parse("1 0 0\n").unwrap();
    assert_eq!(cnf.clauses.len(), 2);
    assert!(cnf.clauses[1].is_empty());

    let cnf = dimacs::parse("p cnf 1 1\n0\n").unwrap();
    assert_eq!(cnf.clauses, vec![Vec::<Lit>::new()]);

    // "-0" parses as the integer zero, i.e. a clause terminator.
    let cnf = dimacs::parse("1 -0\n").unwrap();
    assert_eq!(cnf.clauses.len(), 1);
    assert_eq!(cnf.clauses[0].len(), 1);
}

#[test]
fn bad_tokens_and_out_of_range_literals_are_typed_errors() {
    assert!(matches!(
        dimacs::parse("1 x 0\n"),
        Err(ParseError::BadToken { line: 1, ref token }) if token == "x"
    ));
    // Larger than i64: not even parseable as an integer.
    assert!(matches!(
        dimacs::parse("99999999999999999999 0\n"),
        Err(ParseError::BadToken { line: 1, .. })
    ));
    // Parseable as i64 but beyond the literal range.
    assert_eq!(
        dimacs::parse("c pad\n3000000000 0\n"),
        Err(ParseError::LiteralOutOfRange { line: 2, value: 3_000_000_000 })
    );
    assert!(matches!(
        dimacs::parse("-3000000000 0\n"),
        Err(ParseError::LiteralOutOfRange { value: -3_000_000_000, .. })
    ));
    // Input ending mid-clause.
    assert_eq!(dimacs::parse("1 2\n"), Err(ParseError::UnterminatedClause));
    assert_eq!(dimacs::parse("1 0\n-2"), Err(ParseError::UnterminatedClause));
}

#[test]
fn header_vars_and_inferred_vars_reconcile_upward() {
    // Declared count below the largest literal: inferred wins.
    assert_eq!(dimacs::parse("p cnf 1 1\n5 0\n").unwrap().num_vars, 5);
    // Declared count above: declared wins (isolated variables exist).
    assert_eq!(dimacs::parse("p cnf 9 1\n1 0\n").unwrap().num_vars, 9);
    // No header at all: inferred from the literals.
    assert_eq!(dimacs::parse("2 -7 0\n").unwrap().num_vars, 7);
}

/// A random syntactically valid instance, possibly with empty clauses and
/// duplicate/opposed literals (the parser must not normalize).
fn gen_cnf(rng: &mut Rng) -> Vec<Vec<i64>> {
    let num_vars = rng.gen_range(1..=20i64);
    gen_vec(rng, 0..=15, |r| {
        gen_vec(r, 0..=6, |r| {
            let v = r.gen_range(1..=num_vars);
            if r.gen_bool(0.5) {
                v
            } else {
                -v
            }
        })
    })
}

#[test]
fn write_parse_roundtrip_is_identity() {
    prop::check(&Config::with_cases(256), gen_cnf, |raw| {
        let clauses: Vec<Vec<Lit>> = raw
            .iter()
            .map(|c| {
                c.iter()
                    // Shrinking can drive a literal to 0; nudge it back.
                    .map(|&v| Lit::from_dimacs(if v == 0 { 1 } else { v }).unwrap())
                    .collect()
            })
            .collect();
        let num_vars = clauses
            .iter()
            .flatten()
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0);
        let cnf = Cnf { num_vars, clauses };
        let text = dimacs::write(&cnf);
        let reparsed = dimacs::parse(&text).map_err(|e| format!("reparse failed: {e}"))?;
        prop_assert_eq!(&reparsed, &cnf, "write→parse must be the identity");
        // And writing again is a fixpoint.
        prop_assert_eq!(dimacs::write(&reparsed), text);
        Ok(())
    });
}

#[test]
fn parser_is_total_on_token_soup() {
    // Random garbage from a DIMACS-flavored alphabet: parse must return
    // (Ok or Err), never panic, and Ok implies no clause is left open.
    prop::check(
        &Config::with_cases(256),
        |rng| {
            let tokens = [
                "p", "cnf", "c", "%", "0", "1", "-1", "2", "-0", "x", "9e9",
                "\n", " ", "\t", "p cnf 2 1", "--3", "+4", "0x1f",
            ];
            gen_vec(rng, 0..=30, |r| r.gen_range(0..tokens.len())).iter().map(|&i| tokens[i]).collect::<Vec<_>>().join(" ")
        },
        |soup| {
            if let Ok(cnf) = dimacs::parse(soup) {
                let max_var =
                    cnf.clauses.iter().flatten().map(|l| l.var().index() + 1).max().unwrap_or(0);
                prop_assert!(cnf.num_vars >= max_var, "num_vars below a used variable");
            }
            Ok(())
        },
    );
}
