//! Property-based and stress tests for the CDCL solver.
//!
//! The central oracle is a brute-force evaluator over up to ~14 variables:
//! for random formulas the solver must agree with exhaustive enumeration on
//! satisfiability, returned models must actually satisfy the formula, and
//! unsat cores must themselves be unsatisfiable subsets.

use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{prop_assert, prop_assert_eq, Rng};
use netarch_sat::{dimacs, enumerate, Lit, SolveResult, Solver, SolverConfig, Var};

/// A clause as signed variable indices (generator-friendly form).
type RawClause = Vec<(usize, bool)>;

/// A formula: variable count plus clauses over those variables.
type Formula = (usize, Vec<RawClause>);

/// Draws a random formula: 2–10 variables, up to 40 clauses of 1–4
/// literals each.
fn gen_formula(rng: &mut Rng) -> Formula {
    let num_vars = rng.gen_range(2..=10usize);
    let clauses = gen_vec(rng, 0..=40, |r| {
        gen_vec(r, 1..=4, |r| (r.gen_range(0..num_vars), r.gen_bool(0.5)))
    });
    (num_vars, clauses)
}

/// Re-establishes the formula invariant (`var < num_vars`, `num_vars` in
/// brute-force range) after structure-blind shrinking.
fn normalize(f: &Formula) -> (usize, Vec<RawClause>) {
    let num_vars = f.0.clamp(1, 14);
    let clauses = f
        .1
        .iter()
        .map(|c| c.iter().map(|&(v, pos)| (v % num_vars, pos)).collect())
        .collect();
    (num_vars, clauses)
}

fn build_solver(num_vars: usize, clauses: &[RawClause], config: SolverConfig) -> Solver {
    let mut s = Solver::with_config(config);
    s.ensure_vars(num_vars);
    for c in clauses {
        s.add_clause(
            c.iter()
                .map(|&(v, pos)| Lit::new(Var::from_index(v), pos)),
        );
    }
    s
}

/// Exhaustive satisfiability check.
fn brute_force_sat(num_vars: usize, clauses: &[RawClause]) -> bool {
    assert!(num_vars <= 20);
    'assignment: for bits in 0u32..(1 << num_vars) {
        for clause in clauses {
            let satisfied = clause
                .iter()
                .any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos);
            if !satisfied && !clause.is_empty() {
                continue 'assignment;
            }
            if clause.is_empty() {
                return false;
            }
        }
        return true;
    }
    false
}

fn model_satisfies(s: &Solver, clauses: &[RawClause]) -> bool {
    clauses.iter().all(|clause| {
        clause.iter().any(|&(v, pos)| {
            s.model_value(Var::from_index(v)) == Some(pos)
        })
    })
}

#[test]
fn agrees_with_brute_force() {
    prop::check(&Config::with_cases(256), gen_formula, |f| {
        let (num_vars, clauses) = normalize(f);
        let mut s = build_solver(num_vars, &clauses, SolverConfig::default());
        let expected = brute_force_sat(num_vars, &clauses);
        match s.solve() {
            SolveResult::Sat => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                prop_assert!(model_satisfies(&s, &clauses), "model does not satisfy formula");
            }
            SolveResult::Unsat => {
                prop_assert!(!expected, "solver said UNSAT, brute force says SAT")
            }
            SolveResult::Unknown => prop_assert!(false, "unbounded solve returned Unknown"),
        }
        Ok(())
    });
}

#[test]
fn ablated_configs_agree_with_brute_force() {
    prop::check(&Config::with_cases(256), gen_formula, |f| {
        let (num_vars, clauses) = normalize(f);
        for config in [
            SolverConfig { vsids_enabled: false, ..SolverConfig::default() },
            SolverConfig { restarts_enabled: false, ..SolverConfig::default() },
            SolverConfig { minimize_enabled: false, ..SolverConfig::default() },
            SolverConfig { reduce_enabled: false, ..SolverConfig::default() },
        ] {
            let mut s = build_solver(num_vars, &clauses, config);
            let expected = brute_force_sat(num_vars, &clauses);
            let got = s.solve();
            prop_assert_eq!(got == SolveResult::Sat, expected);
            if got == SolveResult::Sat {
                prop_assert!(model_satisfies(&s, &clauses));
            }
        }
        Ok(())
    });
}

#[test]
fn inprocessing_and_chrono_configs_agree_with_brute_force() {
    // Inprocessing every restart (with restarts forced early) and
    // chronological backtracking on every long backjump, separately and
    // together, against the exhaustive oracle. Models must satisfy the
    // *original* formula — this is what proves BVE model reconstruction.
    prop::check(&Config::with_cases(192), gen_formula, |f| {
        let (num_vars, clauses) = normalize(f);
        let expected = brute_force_sat(num_vars, &clauses);
        for config in [
            SolverConfig {
                inprocess_interval: 1,
                restart_base: 1,
                ..SolverConfig::default()
            },
            SolverConfig { inprocessing_enabled: false, ..SolverConfig::default() },
            SolverConfig { chrono_threshold: 1, ..SolverConfig::default() },
            SolverConfig {
                inprocess_interval: 1,
                restart_base: 1,
                chrono_threshold: 1,
                ..SolverConfig::default()
            },
        ] {
            let mut s = build_solver(num_vars, &clauses, config);
            let got = s.solve();
            prop_assert_eq!(got == SolveResult::Sat, expected);
            if got == SolveResult::Sat {
                prop_assert!(
                    model_satisfies(&s, &clauses),
                    "model violates original formula after inprocessing"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn unsat_cores_stay_sound_under_aggressive_inprocessing() {
    prop::check(
        &Config::with_cases(192),
        |rng| (gen_formula(rng), rng.gen_range(0..=u16::MAX)),
        |(f, assumption_bits)| {
            let (num_vars, clauses) = normalize(f);
            let config = SolverConfig {
                inprocess_interval: 1,
                restart_base: 1,
                chrono_threshold: 1,
                ..SolverConfig::default()
            };
            let mut s = build_solver(num_vars, &clauses, config.clone());
            let assumptions: Vec<Lit> = (0..num_vars)
                .map(|v| Lit::new(Var::from_index(v), (assumption_bits >> v) & 1 == 1))
                .collect();
            if s.solve_with(&assumptions) == SolveResult::Unsat {
                let core = s.unsat_core().to_vec();
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core literal not an assumption");
                }
                let mut s2 = build_solver(num_vars, &clauses, SolverConfig::default());
                prop_assert_eq!(s2.solve_with(&core), SolveResult::Unsat);
            }
            Ok(())
        },
    );
}

#[test]
fn unsat_core_is_unsat_subset() {
    prop::check(
        &Config::with_cases(256),
        |rng| (gen_formula(rng), rng.gen_range(0..=u16::MAX)),
        |(f, assumption_bits)| {
            let (num_vars, clauses) = normalize(f);
            let mut s = build_solver(num_vars, &clauses, SolverConfig::default());
            let assumptions: Vec<Lit> = (0..num_vars)
                .map(|v| Lit::new(Var::from_index(v), (assumption_bits >> v) & 1 == 1))
                .collect();
            if s.solve_with(&assumptions) == SolveResult::Unsat {
                let core = s.unsat_core().to_vec();
                // Every core literal must be one of the assumptions.
                for l in &core {
                    prop_assert!(assumptions.contains(l), "core literal not an assumption");
                }
                // The core alone must still be UNSAT.
                let mut s2 = build_solver(num_vars, &clauses, SolverConfig::default());
                prop_assert_eq!(
                    s2.solve_with(&core),
                    SolveResult::Unsat,
                    "unsat core is not itself unsatisfiable"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn enumeration_counts_match_brute_force() {
    // Variable counts stay <= 8 so full enumeration is cheap.
    prop::check(
        &Config::with_cases(256),
        |rng| {
            let num_vars = rng.gen_range(2..=8usize);
            let clauses = gen_vec(rng, 0..=40, |r| {
                gen_vec(r, 1..=4, |r| (r.gen_range(0..num_vars), r.gen_bool(0.5)))
            });
            (num_vars, clauses)
        },
        |f| {
            let (num_vars, clauses) = normalize(f);
            let num_vars = num_vars.min(8);
            let clauses: Vec<RawClause> = clauses
                .iter()
                .map(|c| c.iter().map(|&(v, pos)| (v % num_vars, pos)).collect())
                .collect();
            let mut expected = 0usize;
            for bits in 0u32..(1 << num_vars) {
                let ok = clauses.iter().all(|clause| {
                    clause.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos)
                });
                if ok {
                    expected += 1;
                }
            }
            let mut s = build_solver(num_vars, &clauses, SolverConfig::default());
            let (count, truncated) = enumerate::count_models(&mut s, &[], 1 << num_vars);
            prop_assert!(!truncated);
            prop_assert_eq!(count, expected);
            Ok(())
        },
    );
}

#[test]
fn dimacs_roundtrip_preserves_satisfiability() {
    prop::check(&Config::with_cases(256), gen_formula, |f| {
        let (num_vars, clauses) = normalize(f);
        let cnf = dimacs::Cnf {
            num_vars,
            clauses: clauses
                .iter()
                .map(|c| c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)).collect())
                .collect(),
        };
        let reparsed = dimacs::parse(&dimacs::write(&cnf)).unwrap();
        let mut s1 = Solver::new();
        let mut s2 = Solver::new();
        dimacs::load_into(&mut s1, &cnf);
        dimacs::load_into(&mut s2, &reparsed);
        prop_assert_eq!(s1.solve(), s2.solve());
        Ok(())
    });
}

#[test]
fn incremental_equals_monolithic() {
    // Adding clauses in two batches with a solve in between must agree
    // with adding them all up front.
    prop::check(
        &Config::with_cases(256),
        |rng| (gen_formula(rng), rng.gen_range(0..40usize)),
        |(f, split)| {
            let (num_vars, clauses) = normalize(f);
            let split = (*split).min(clauses.len());
            let mut incremental = Solver::new();
            incremental.ensure_vars(num_vars);
            for c in &clauses[..split] {
                incremental.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
            }
            let _ = incremental.solve();
            for c in &clauses[split..] {
                incremental.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
            }
            let mut monolithic = build_solver(num_vars, &clauses, SolverConfig::default());
            prop_assert_eq!(incremental.solve(), monolithic.solve());
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Structured stress instances
// ---------------------------------------------------------------------

/// Pigeonhole principle: n pigeons into n-1 holes, always UNSAT.
#[allow(clippy::needless_range_loop)]
fn pigeonhole(n: usize) -> (Solver, SolveResult) {
    let mut s = Solver::new();
    let holes = n - 1;
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row.clone());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!p[i][hole], !p[j][hole]]);
            }
        }
    }
    let r = s.solve();
    (s, r)
}

#[test]
fn pigeonhole_instances_are_unsat() {
    for n in 2..=7 {
        let (_, result) = pigeonhole(n);
        assert_eq!(result, SolveResult::Unsat, "php({n}) must be UNSAT");
    }
}

#[test]
fn pigeonhole_exercises_learning_and_restarts() {
    let (s, result) = pigeonhole(7);
    assert_eq!(result, SolveResult::Unsat);
    assert!(s.stats().conflicts > 50, "php(7) should require real search");
    assert!(s.stats().learnt_clauses > 0);
}

/// 3-colorability of a cycle: odd cycles need 3 colors, so 2-coloring fails.
#[test]
#[allow(clippy::needless_range_loop)]
fn graph_coloring_cycles() {
    for (cycle_len, colors, expect_sat) in
        [(5usize, 3usize, true), (5, 2, false), (6, 2, true), (7, 2, false)]
    {
        let mut s = Solver::new();
        let v: Vec<Vec<Lit>> = (0..cycle_len)
            .map(|_| (0..colors).map(|_| s.new_var().positive()).collect())
            .collect();
        for node in &v {
            s.add_clause(node.clone());
        }
        for i in 0..cycle_len {
            let j = (i + 1) % cycle_len;
            for c in 0..colors {
                s.add_clause([!v[i][c], !v[j][c]]);
            }
        }
        let expected = if expect_sat { SolveResult::Sat } else { SolveResult::Unsat };
        assert_eq!(s.solve(), expected, "C{cycle_len} with {colors} colors");
    }
}

#[test]
fn random_3sat_under_threshold_is_mostly_sat() {
    // At clause/variable ratio 2.0 (well under the ~4.27 threshold),
    // random 3-SAT instances are satisfiable with overwhelming probability.
    let mut rng = Rng::seed_from_u64(0xA5A5_1234);
    let num_vars = 60;
    let num_clauses = 120;
    let mut sat_count = 0;
    for _ in 0..10 {
        let mut s = Solver::new();
        s.ensure_vars(num_vars);
        for _ in 0..num_clauses {
            let mut clause = Vec::with_capacity(3);
            while clause.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                if clause.iter().all(|l: &Lit| l.var().index() != v) {
                    clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
                }
            }
            s.add_clause(clause);
        }
        if s.solve() == SolveResult::Sat {
            sat_count += 1;
        }
    }
    assert!(sat_count >= 9, "expected nearly all low-ratio instances SAT, got {sat_count}/10");
}

#[test]
fn random_3sat_far_above_threshold_is_unsat() {
    let mut rng = Rng::seed_from_u64(0x5A5A_4321);
    let num_vars = 40;
    let num_clauses = 400; // ratio 10: essentially always UNSAT
    let mut s = Solver::new();
    s.ensure_vars(num_vars);
    for _ in 0..num_clauses {
        let mut clause = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        s.add_clause(clause);
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn clause_database_reduction_triggers_on_long_runs() {
    // A hard-enough instance to force learnt-clause reductions.
    let (s, result) = pigeonhole(8);
    assert_eq!(result, SolveResult::Unsat);
    // php(8) generates thousands of conflicts; with the default cap the
    // solver must have reduced at least once.
    assert!(
        s.stats().conflicts < 2_000_000,
        "php(8) unexpectedly expensive: {}",
        s.stats()
    );
}

#[test]
fn long_unsat_run_exercises_reduction_and_stays_correct() {
    // A hard random instance well above the phase transition: thousands
    // of conflicts, forcing learnt-clause reductions (and usually arena
    // compaction) while the UNSAT verdict must stay right.
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let num_vars = 120;
    let num_clauses = 720; // ratio 6
    let mut s = Solver::new();
    s.ensure_vars(num_vars);
    for _ in 0..num_clauses {
        let mut clause = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        s.add_clause(clause);
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(
        s.stats().reductions > 0,
        "expected clause-db reductions on a long run: {}",
        s.stats()
    );
    assert!(s.stats().deleted_clauses > 0);
}

#[test]
fn solver_survives_many_incremental_rounds() {
    // Interleave solving, assumptions, and clause addition for many
    // rounds — the incremental path (trail rewinds, watch maintenance,
    // core extraction) must stay consistent throughout.
    let mut rng = Rng::seed_from_u64(7_771);
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..40).map(|_| s.new_var()).collect();
    let mut sat_rounds = 0;
    for round in 0..200 {
        // Add a random clause.
        let mut clause = Vec::new();
        for _ in 0..rng.gen_range(2..4) {
            let v = vars[rng.gen_range(0..vars.len())];
            clause.push(Lit::new(v, rng.gen_bool(0.5)));
        }
        s.add_clause(clause);
        // Solve under random assumptions.
        let assumptions: Vec<Lit> = (0..rng.gen_range(0..4))
            .map(|_| Lit::new(vars[rng.gen_range(0..vars.len())], rng.gen_bool(0.5)))
            .collect();
        match s.solve_with(&assumptions) {
            SolveResult::Sat => {
                sat_rounds += 1;
                // Every assumption must hold in the model.
                for a in &assumptions {
                    assert_eq!(s.model_lit_value(*a), Some(true), "round {round}");
                }
            }
            SolveResult::Unsat => {
                // The core must be a subset of the assumptions.
                for l in s.unsat_core() {
                    assert!(assumptions.contains(l), "round {round}");
                }
            }
            SolveResult::Unknown => panic!("unbounded solve returned Unknown"),
        }
    }
    assert!(sat_rounds > 0, "generator should produce some SAT rounds");
}

#[test]
fn simplify_preserves_satisfiability_and_models() {
    prop::check(
        &Config::with_cases(128),
        |rng| (gen_formula(rng), rng.gen_range(0..40usize)),
        |(f, split)| {
            let (num_vars, clauses) = normalize(f);
            let split = (*split).min(clauses.len());
            let mut s = Solver::new();
            s.ensure_vars(num_vars);
            for c in &clauses[..split] {
                s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
            }
            let _ = s.solve();
            let consistent = s.simplify();
            for c in &clauses[split..] {
                s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
            }
            let expected = brute_force_sat(num_vars, &clauses);
            if !consistent {
                prop_assert!(!expected);
                return Ok(());
            }
            match s.solve() {
                SolveResult::Sat => {
                    prop_assert!(expected);
                    prop_assert!(model_satisfies(&s, &clauses));
                }
                SolveResult::Unsat => prop_assert!(!expected),
                SolveResult::Unknown => prop_assert!(false),
            }
            Ok(())
        },
    );
}

#[test]
fn simplify_shrinks_clause_count_after_units() {
    let mut s = Solver::new();
    let v: Vec<Lit> = (0..6).map(|_| s.new_var().positive()).collect();
    // Clauses that become satisfied or shortened once v0 is known true.
    s.add_clause([v[0], v[1]]);          // satisfied by v0
    s.add_clause([v[0], v[2], v[3]]);    // satisfied by v0
    s.add_clause([!v[0], v[4], v[5]]);   // shortens to (v4 ∨ v5)
    s.add_clause([v[0]]);                // the unit
    assert_eq!(s.solve(), SolveResult::Sat);
    let before = s.num_clauses();
    assert!(s.simplify());
    let after = s.num_clauses();
    assert!(after < before, "before={before} after={after}");
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.model_lit_value(v[0]), Some(true));
}

#[test]
fn simplify_detects_root_contradiction() {
    let mut s = Solver::new();
    let a = s.new_var().positive();
    s.add_clause([a]);
    s.add_clause([!a]);
    assert!(!s.simplify());
    assert_eq!(s.solve(), SolveResult::Unsat);
}
