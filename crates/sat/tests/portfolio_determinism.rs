//! Reproducibility of the portfolio's deterministic mode.
//!
//! Deterministic mode removes every timing dependence: no cancellation, no
//! clause sharing, and the winner is the lowest-index decisive worker. Two
//! runs with the same seed must therefore produce identical verdicts,
//! winners, models, cores, and — the strictest check — bit-identical
//! per-worker [`netarch_sat::Stats`]. Any wall-clock or ambient-entropy
//! leak into the search or the arbitration shows up here as a diff.

use netarch_rt::Rng;
use netarch_sat::{Lit, Portfolio, PortfolioConfig, SolveResult, Var};

fn gen_formula(rng: &mut Rng) -> (usize, Vec<Vec<Lit>>, Vec<Lit>) {
    let num_vars = rng.gen_range(4..=14usize);
    let num_clauses = rng.gen_range(4..=60usize);
    let clauses = (0..num_clauses)
        .map(|_| {
            (0..rng.gen_range(1..=3usize))
                .map(|_| {
                    Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5))
                })
                .collect()
        })
        .collect();
    let assumptions = if rng.gen_bool(0.4) {
        vec![Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5))]
    } else {
        Vec::new()
    };
    (num_vars, clauses, assumptions)
}

#[test]
fn deterministic_mode_is_run_to_run_identical() {
    let mut rng = Rng::seed_from_u64(0xD37E_4513);
    for case in 0..40 {
        let (num_vars, clauses, assumptions) = gen_formula(&mut rng);
        let config = PortfolioConfig {
            num_threads: 4,
            deterministic: true,
            seed: 0xC0FFEE ^ case,
            ..Default::default()
        };
        let a = Portfolio::new(config.clone()).solve(num_vars, &clauses, &assumptions);
        let b = Portfolio::new(config).solve(num_vars, &clauses, &assumptions);
        assert_eq!(a.result, b.result, "case {case}: verdict drifted between runs");
        assert_eq!(a.winner, b.winner, "case {case}: arbitration drifted between runs");
        assert_eq!(a.model, b.model, "case {case}: model drifted between runs");
        assert_eq!(a.core, b.core, "case {case}: core drifted between runs");
        assert_eq!(
            a.stats, b.stats,
            "case {case}: per-worker statistics drifted — something in the \
             search depends on wall clock or ambient randomness"
        );
        // Deterministic mode never shares and never interrupts.
        assert_eq!(a.stats.pool_published, 0);
        for w in &a.stats.workers {
            assert_eq!(w.interrupts, 0);
            assert_eq!(w.imported_clauses, 0);
        }
    }
}

#[test]
fn deterministic_winner_is_lowest_index_decisive() {
    // Without a conflict budget every worker is decisive, so the winner is
    // always worker 0 — regardless of which diversified worker would have
    // finished first on the wall clock.
    let mut rng = Rng::seed_from_u64(0x10DEC);
    for _ in 0..20 {
        let (num_vars, clauses, assumptions) = gen_formula(&mut rng);
        let out = Portfolio::new(PortfolioConfig {
            num_threads: 3,
            deterministic: true,
            ..Default::default()
        })
        .solve(num_vars, &clauses, &assumptions);
        assert!(matches!(out.result, SolveResult::Sat | SolveResult::Unsat));
        assert_eq!(out.winner, Some(0));
    }
}

#[test]
fn different_seeds_still_agree_on_verdicts() {
    // The seed changes the search trajectory, never the answer.
    let mut rng = Rng::seed_from_u64(0x5EED_5EED);
    for _ in 0..25 {
        let (num_vars, clauses, assumptions) = gen_formula(&mut rng);
        let verdict = |seed: u64| {
            Portfolio::new(PortfolioConfig {
                num_threads: 2,
                deterministic: true,
                seed,
                ..Default::default()
            })
            .solve(num_vars, &clauses, &assumptions)
            .result
        };
        let r1 = verdict(1);
        let r2 = verdict(0xFFFF_FFFF);
        assert_eq!(r1, r2);
    }
}
