//! End-to-end DRAT pipeline tests: the solver records proofs, the
//! independent checker validates them, and corrupted proofs are rejected.
//!
//! These tests close the trust loop the paper's diagnosis story depends on:
//! an UNSAT verdict ("this design cannot work") is only as good as the
//! refutation behind it, so every UNSAT here must carry a machine-checkable
//! proof — validated by propagation code the solver does not share.

use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{prop_assert_eq, Rng};
use netarch_sat::{
    check_refutation, check_refutation_under_assumptions, CheckError, DratProof, Lit, ProofStep,
    SolveResult, Solver, SolverConfig, Var,
};

type RawClause = Vec<(usize, bool)>;
type Formula = (usize, Vec<RawClause>);

fn gen_formula(rng: &mut Rng) -> Formula {
    let num_vars = rng.gen_range(2..=10usize);
    let clauses = gen_vec(rng, 0..=40, |r| {
        gen_vec(r, 1..=4, |r| (r.gen_range(0..num_vars), r.gen_bool(0.5)))
    });
    (num_vars, clauses)
}

fn normalize(f: &Formula) -> (usize, Vec<RawClause>) {
    let num_vars = f.0.clamp(1, 14);
    let clauses = f
        .1
        .iter()
        .map(|c| c.iter().map(|&(v, pos)| (v % num_vars, pos)).collect())
        .collect();
    (num_vars, clauses)
}

fn to_lits(clauses: &[RawClause]) -> Vec<Vec<Lit>> {
    clauses
        .iter()
        .map(|c| c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)).collect())
        .collect()
}

/// Builds a recording solver over the clause list.
fn recording_solver(num_vars: usize, clauses: &[Vec<Lit>], config: SolverConfig) -> Solver {
    let mut s = Solver::with_config(config);
    s.record_proof();
    s.ensure_vars(num_vars);
    for c in clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

fn random_3sat(rng: &mut Rng, num_vars: usize, ratio: f64) -> Vec<Vec<Lit>> {
    let num_clauses = (num_vars as f64 * ratio) as usize;
    (0..num_clauses)
        .map(|_| {
            let mut clause: Vec<Lit> = Vec::with_capacity(3);
            while clause.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                if clause.iter().all(|l| l.var().index() != v) {
                    clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
                }
            }
            clause
        })
        .collect()
}

#[allow(clippy::needless_range_loop)]
fn pigeonhole_clauses(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let holes = n - 1;
    let var = |pigeon: usize, hole: usize| Var::from_index(pigeon * holes + hole);
    let mut clauses = Vec::new();
    for pigeon in 0..n {
        clauses.push((0..holes).map(|h| var(pigeon, h).positive()).collect());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                clauses.push(vec![var(i, hole).negative(), var(j, hole).negative()]);
            }
        }
    }
    (n * holes, clauses)
}

#[test]
fn every_random_unsat_verdict_has_a_checkable_proof() {
    prop::check(&Config::with_cases(256), gen_formula, |f| {
        let (num_vars, raw) = normalize(f);
        let clauses = to_lits(&raw);
        let mut s = recording_solver(num_vars, &clauses, SolverConfig::default());
        if s.solve() == SolveResult::Unsat {
            let proof = s.recorded_proof().expect("recording was enabled");
            prop_assert_eq!(
                check_refutation(num_vars, &clauses, proof),
                Ok(()),
                "checker rejected the solver's refutation"
            );
        }
        Ok(())
    });
}

#[test]
fn ablated_configs_also_produce_checkable_proofs() {
    // Minimization and deletion are the instrumentation sites most likely
    // to desynchronize the proof from the clause database; run them both
    // ways.
    prop::check(&Config::with_cases(128), gen_formula, |f| {
        let (num_vars, raw) = normalize(f);
        let clauses = to_lits(&raw);
        for config in [
            SolverConfig { minimize_enabled: false, ..SolverConfig::default() },
            SolverConfig { reduce_enabled: false, ..SolverConfig::default() },
            SolverConfig { restarts_enabled: false, ..SolverConfig::default() },
        ] {
            let mut s = recording_solver(num_vars, &clauses, config);
            if s.solve() == SolveResult::Unsat {
                let proof = s.recorded_proof().expect("recording was enabled");
                prop_assert_eq!(check_refutation(num_vars, &clauses, proof), Ok(()));
            }
        }
        Ok(())
    });
}

#[test]
fn assumption_unsat_verdicts_certify_their_cores() {
    prop::check(
        &Config::with_cases(256),
        |rng| (gen_formula(rng), rng.gen_range(0..=u16::MAX)),
        |(f, assumption_bits)| {
            let (num_vars, raw) = normalize(f);
            let clauses = to_lits(&raw);
            let mut s = recording_solver(num_vars, &clauses, SolverConfig::default());
            let assumptions: Vec<Lit> = (0..num_vars)
                .map(|v| Lit::new(Var::from_index(v), (assumption_bits >> v) & 1 == 1))
                .collect();
            if s.solve_with(&assumptions) == SolveResult::Unsat {
                let core = s.unsat_core().to_vec();
                let proof = s.recorded_proof().expect("recording was enabled");
                prop_assert_eq!(
                    check_refutation_under_assumptions(num_vars, &clauses, proof, &core),
                    Ok(()),
                    "checker rejected the core certificate"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn incremental_unsat_verdicts_stay_checkable() {
    // Interleave solving and clause addition: the proof accumulates across
    // solve calls, and each UNSAT verdict is checked against the clauses
    // added so far.
    prop::check(
        &Config::with_cases(128),
        |rng| (gen_formula(rng), rng.gen_range(0..40usize)),
        |(f, split)| {
            let (num_vars, raw) = normalize(f);
            let clauses = to_lits(&raw);
            let split = (*split).min(clauses.len());
            let mut s = Solver::new();
            s.record_proof();
            s.ensure_vars(num_vars);
            for c in &clauses[..split] {
                s.add_clause(c.iter().copied());
            }
            if s.solve() == SolveResult::Unsat {
                let proof = s.recorded_proof().unwrap();
                prop_assert_eq!(check_refutation(num_vars, &clauses[..split], proof), Ok(()));
            }
            for c in &clauses[split..] {
                s.add_clause(c.iter().copied());
            }
            if s.solve() == SolveResult::Unsat {
                let proof = s.recorded_proof().unwrap();
                prop_assert_eq!(check_refutation(num_vars, &clauses, proof), Ok(()));
            }
            Ok(())
        },
    );
}

#[test]
fn simplify_keeps_proofs_checkable() {
    // Level-0 simplification rewrites the clause database wholesale; its
    // add/delete logging must keep the proof aligned.
    prop::check(
        &Config::with_cases(128),
        |rng| (gen_formula(rng), rng.gen_range(0..40usize)),
        |(f, split)| {
            let (num_vars, raw) = normalize(f);
            let clauses = to_lits(&raw);
            let split = (*split).min(clauses.len());
            let mut s = Solver::new();
            s.record_proof();
            s.ensure_vars(num_vars);
            for c in &clauses[..split] {
                s.add_clause(c.iter().copied());
            }
            let _ = s.solve();
            let _ = s.simplify();
            for c in &clauses[split..] {
                s.add_clause(c.iter().copied());
            }
            if s.solve() == SolveResult::Unsat {
                let proof = s.recorded_proof().unwrap();
                prop_assert_eq!(check_refutation(num_vars, &clauses, proof), Ok(()));
            }
            Ok(())
        },
    );
}

#[test]
fn pigeonhole_proofs_check_and_roundtrip() {
    for n in 3..=6 {
        let (num_vars, clauses) = pigeonhole_clauses(n);
        let mut s = recording_solver(num_vars, &clauses, SolverConfig::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.take_proof().unwrap();
        assert!(proof.adds_empty_clause(), "php({n}) refutation must conclude");
        assert_eq!(check_refutation(num_vars, &clauses, &proof), Ok(()), "php({n})");
        // The serialized forms carry the same proof.
        let text = DratProof::parse_text(&proof.to_text()).unwrap();
        let binary = DratProof::parse_binary(&proof.to_binary()).unwrap();
        assert_eq!(text, proof);
        assert_eq!(binary, proof);
        assert_eq!(check_refutation(num_vars, &clauses, &text), Ok(()));
    }
}

#[test]
fn hard_instance_with_deletions_stays_checkable() {
    // Ratio-6 random 3-SAT is far above the phase transition: reliably
    // UNSAT with enough conflicts to trigger learnt-clause reduction, so
    // the proof contains deletion steps the checker must honor.
    let mut rng = Rng::seed_from_u64(0xD2A7_0001);
    let num_vars = 60;
    let clauses = random_3sat(&mut rng, num_vars, 6.0);
    let mut s = recording_solver(num_vars, &clauses, SolverConfig::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
    let proof = s.take_proof().unwrap();
    assert_eq!(check_refutation(num_vars, &clauses, &proof), Ok(()));
}

#[test]
fn truncated_proof_is_rejected() {
    // Note that simply dropping the final empty-clause addition is NOT a
    // reliable corruption: the checker's persistent propagation usually
    // re-derives the root conflict from the learned units alone. Instead,
    // strip every short (≤ 1 literal) addition — without units the checker
    // can never reach a root conflict, so the residue must either fail a
    // RUP check or fail to refute.
    let (num_vars, clauses) = pigeonhole_clauses(4);
    let mut s = recording_solver(num_vars, &clauses, SolverConfig::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
    let proof = s.take_proof().unwrap();
    let mut truncated = DratProof::new();
    for step in proof.steps() {
        if matches!(step, ProofStep::Add(c) if c.len() <= 1) {
            continue;
        }
        truncated.push(step.clone());
    }
    assert!(truncated.len() < proof.len(), "php(4) proof should contain unit/empty adds");
    assert!(
        check_refutation(num_vars, &clauses, &truncated).is_err(),
        "checker accepted a truncated proof"
    );
    // The empty proof is likewise no refutation.
    assert_eq!(
        check_refutation(num_vars, &clauses, &DratProof::new()),
        Err(CheckError::NoEmptyClause)
    );
}

#[test]
fn corrupted_proof_step_is_rejected() {
    // A real refutation of php(4) replayed against a *weakened, satisfiable*
    // formula (pigeon 0's placement clause dropped) must be rejected: by
    // soundness no sequence of RUP/RAT steps can refute a satisfiable
    // formula, so some step — at the latest the empty-clause addition —
    // fails its check.
    let (num_vars, clauses) = pigeonhole_clauses(4);
    let mut s = recording_solver(num_vars, &clauses, SolverConfig::default());
    assert_eq!(s.solve(), SolveResult::Unsat);
    let proof = s.take_proof().unwrap();
    let weakened: Vec<Vec<Lit>> = clauses[1..].to_vec();
    let mut sat_check = Solver::new();
    sat_check.ensure_vars(num_vars);
    for c in &weakened {
        sat_check.add_clause(c.iter().copied());
    }
    assert_eq!(sat_check.solve(), SolveResult::Sat, "weakened php(4) should be SAT");
    assert!(
        check_refutation(num_vars, &weakened, &proof).is_err(),
        "checker accepted a refutation of a satisfiable formula"
    );
}

#[test]
fn unsat_on_satisfiable_formula_is_rejected() {
    // The strongest negative test: claim UNSAT on a SAT formula. Whatever
    // the proof says, the checker must refuse — here the refutation is
    // forged by replaying a real php(4) proof against a satisfiable
    // weakening of php (one conflict pair removed per hole... simply: the
    // first at-most-one clause dropped changes nothing for php, so instead
    // check a plain satisfiable formula with a fabricated conclusion).
    let a = Var::from_index(0).positive();
    let b = Var::from_index(1).positive();
    let clauses = vec![vec![a, b], vec![!a, b]];
    let mut forged = DratProof::new();
    forged.push(ProofStep::Add(vec![b])); // genuinely RUP
    forged.push(ProofStep::Add(vec![])); // the lie
    assert!(matches!(
        check_refutation(2, &clauses, &forged),
        Err(CheckError::NotRedundant { step: 1, .. })
    ));
}

#[test]
fn aggressive_inprocessing_keeps_proofs_checkable() {
    // Inprocessing every restart with restarts forced every conflict: the
    // proof stream now carries subsumption deletions, strengthenings,
    // vivification rewrites, and BVE resolvents, and must stay checkable.
    prop::check(&Config::with_cases(128), gen_formula, |f| {
        let (num_vars, raw) = normalize(f);
        let clauses = to_lits(&raw);
        let config = SolverConfig {
            inprocess_interval: 1,
            restart_base: 1,
            chrono_threshold: 1,
            ..SolverConfig::default()
        };
        let mut s = recording_solver(num_vars, &clauses, config);
        if s.solve() == SolveResult::Unsat {
            let proof = s.recorded_proof().expect("recording was enabled");
            prop_assert_eq!(
                check_refutation(num_vars, &clauses, proof),
                Ok(()),
                "checker rejected an inprocessed refutation"
            );
        }
        Ok(())
    });
}

/// A formula whose refutation needs real resolution: BVE on `x` over
/// `(a ∨ x) ∧ (b ∨ ¬x)` yields the resolvent `(a ∨ b)`, and the 2×2 block
/// over `p, q` is unsatisfiable but not unit-refutable, so no tampered
/// step can lean on pre-existing units being propagated for free. The
/// clauses `(¬a ∨ r)` and `(¬b ∨ s)` give `¬a`/`¬b` live occurrences, so
/// a forged clause with pivot `a` cannot slip through the checker's RAT
/// fallback as a vacuous pure-literal case.
fn bve_shaped_formula() -> (usize, Vec<Vec<Lit>>) {
    let v = |i: usize| Var::from_index(i).positive();
    let (a, b, x, p, q, r, s) = (v(0), v(1), v(2), v(3), v(4), v(5), v(6));
    let clauses = vec![
        vec![a, x],
        vec![b, !x],
        vec![!a, r],
        vec![!b, s],
        vec![p, q],
        vec![p, !q],
        vec![!p, q],
        vec![!p, !q],
    ];
    (7, clauses)
}

/// The honest certificate for [`bve_shaped_formula`]: the BVE resolvent,
/// deletion of its parents, then the unit `p` and the empty clause.
fn bve_shaped_proof() -> Vec<ProofStep> {
    let v = |i: usize| Var::from_index(i).positive();
    let (a, b, x, p) = (v(0), v(1), v(2), v(3));
    vec![
        ProofStep::Add(vec![a, b]), // resolvent of (a ∨ x) and (b ∨ ¬x) on x
        ProofStep::Delete(vec![a, x]),
        ProofStep::Delete(vec![b, !x]),
        ProofStep::Add(vec![p]),
        ProofStep::Add(vec![]),
    ]
}

#[test]
fn tampered_bve_resolvent_is_rejected() {
    let (num_vars, clauses) = bve_shaped_formula();
    // The honest BVE-shaped certificate is accepted…
    let mut honest = DratProof::new();
    for step in bve_shaped_proof() {
        honest.push(step);
    }
    assert_eq!(check_refutation(num_vars, &clauses, &honest), Ok(()));
    // …but a resolvent that drops a literal (claiming `a` instead of
    // `a ∨ b`) is not RUP — nothing propagates `b`'s clause into conflict —
    // and must be rejected at exactly that step.
    let v = |i: usize| Var::from_index(i).positive();
    let mut tampered = DratProof::new();
    for (i, step) in bve_shaped_proof().into_iter().enumerate() {
        tampered.push(if i == 0 { ProofStep::Add(vec![v(0)]) } else { step });
    }
    assert!(
        matches!(
            check_refutation(num_vars, &clauses, &tampered),
            Err(CheckError::NotRedundant { step: 0, .. })
        ),
        "checker accepted a tampered BVE resolvent"
    );
}

#[test]
fn forged_deletion_of_needed_clause_is_rejected() {
    // DRAT deletions are permissive in isolation, so forging a deletion of
    // a clause later steps still need must surface as a failed RUP check on
    // the first step that relied on it. Here the deleted `(p ∨ q)` is the
    // clause that makes the unit `p` RUP.
    let (num_vars, clauses) = bve_shaped_formula();
    let v = |i: usize| Var::from_index(i).positive();
    let (p, q) = (v(3), v(4));
    let mut forged = DratProof::new();
    forged.push(ProofStep::Delete(vec![p, q]));
    forged.push(ProofStep::Add(vec![p]));
    forged.push(ProofStep::Add(vec![]));
    assert!(
        matches!(
            check_refutation(num_vars, &clauses, &forged),
            Err(CheckError::NotRedundant { step: 1, .. })
        ),
        "checker accepted a unit derived from a deleted reason clause"
    );
}

#[test]
fn proof_logging_observably_off_by_default() {
    let mut s = Solver::new();
    let v = s.new_var();
    s.add_clause([v.positive()]);
    s.add_clause([v.negative()]);
    assert!(!s.proof_logging_enabled());
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(s.recorded_proof().is_none());
    assert!(s.take_proof().is_none());
}

#[test]
fn streaming_sink_receives_the_same_steps() {
    // Arc<Mutex<…>>, not Rc<RefCell<…>>: ProofSink is Send (sinks travel
    // inside solvers that serving layers move across threads).
    struct CountingSink(std::sync::Arc<std::sync::Mutex<(usize, usize)>>);
    impl netarch_sat::ProofSink for CountingSink {
        fn add_clause(&mut self, _clause: &[Lit]) {
            self.0.lock().unwrap().0 += 1;
        }
        fn delete_clause(&mut self, _clause: &[Lit]) {
            self.0.lock().unwrap().1 += 1;
        }
    }
    let counts = std::sync::Arc::new(std::sync::Mutex::new((0usize, 0usize)));
    let (num_vars, clauses) = pigeonhole_clauses(4);

    let mut recorder = recording_solver(num_vars, &clauses, SolverConfig::default());
    assert_eq!(recorder.solve(), SolveResult::Unsat);
    let proof = recorder.take_proof().unwrap();

    let mut streamer = Solver::new();
    streamer.set_proof_sink(Box::new(CountingSink(counts.clone())));
    streamer.ensure_vars(num_vars);
    for c in &clauses {
        streamer.add_clause(c.iter().copied());
    }
    assert_eq!(streamer.solve(), SolveResult::Unsat);
    // A streaming sink is not the recorder, so there is nothing to take…
    assert!(streamer.take_proof().is_none());
    // …but it saw exactly the steps the recorder recorded (the solver is
    // deterministic for a fixed instance and configuration).
    let (adds, deletes) = *counts.lock().unwrap();
    assert_eq!(adds, proof.num_additions());
    assert_eq!(deletes, proof.num_deletions());
}
