//! Differential property sweep for cube-and-conquer projected enumeration.
//!
//! Over seeded random formulas, [`enumerate_projected_cubes`] with 0, 1,
//! and 2 cube bits must produce exactly the sequential
//! [`enumerate_projected`] walk's projected model *set* (the cube merge
//! reorders classes, never adds or drops them), agree on truncation when
//! the limit is not binding, and be bit-identical across repeat runs (the
//! merge rule is deterministic in every mode).
//!
//! All randomness is seeded — running the sweep twice explores the same
//! formulas.

use netarch_rt::Rng;
use netarch_sat::enumerate::enumerate_projected;
use netarch_sat::{enumerate_projected_cubes, Lit, Solver, SolverConfig, Var};

struct Case {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    projection: Vec<Var>,
    assumptions: Vec<Lit>,
}

fn gen_case(rng: &mut Rng) -> Case {
    let num_vars = rng.gen_range(6..=14usize);
    // Sparse 2/3-clauses keep the projected model count nontrivial.
    let num_clauses = rng.gen_range(4..=(2 * num_vars));
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let len = if rng.gen_bool(0.5) { 2 } else { 3 };
        let mut clause: Vec<Lit> = Vec::with_capacity(len);
        while clause.len() < len {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        clauses.push(clause);
    }
    let proj_len = rng.gen_range(1..=4usize.min(num_vars));
    let mut projection: Vec<Var> = Vec::new();
    while projection.len() < proj_len {
        let v = Var::from_index(rng.gen_range(0..num_vars));
        if !projection.contains(&v) {
            projection.push(v);
        }
    }
    let assumptions = if rng.gen_bool(0.3) {
        let v = rng.gen_range(0..num_vars);
        if projection.iter().any(|p| p.index() == v) {
            Vec::new()
        } else {
            vec![Lit::new(Var::from_index(v), rng.gen_bool(0.5))]
        }
    } else {
        Vec::new()
    };
    Case { num_vars, clauses, projection, assumptions }
}

/// Projected models from the sequential walk, as a sorted set of
/// `(var, value)` assignments.
fn sequential_model_set(case: &Case, limit: usize) -> (Vec<Vec<(usize, bool)>>, bool) {
    let mut s = Solver::with_config(SolverConfig::default());
    s.ensure_vars(case.num_vars);
    for c in &case.clauses {
        s.add_clause(c.iter().copied());
    }
    let out = enumerate_projected(&mut s, &case.projection, &case.assumptions, limit);
    let mut set: Vec<Vec<(usize, bool)>> = out
        .models
        .iter()
        .map(|m| m.iter().map(|&(v, b)| (v.index(), b)).collect())
        .collect();
    set.sort();
    (set, out.truncated)
}

/// Projected models from the cube walk, restricted to the projection vars.
fn cube_model_set(case: &Case, limit: usize, bits: usize) -> (Vec<Vec<(usize, bool)>>, bool) {
    let out = enumerate_projected_cubes(
        case.num_vars,
        &case.clauses,
        &SolverConfig::default(),
        &case.projection,
        &case.assumptions,
        limit,
        bits,
    );
    let mut set: Vec<Vec<(usize, bool)>> = out
        .models
        .iter()
        .map(|m| {
            case.projection
                .iter()
                .map(|&v| (v.index(), m[v.index()].unwrap_or(false)))
                .collect()
        })
        .collect();
    set.sort();
    (set, out.truncated)
}

#[test]
fn cube_split_matches_sequential_enumeration() {
    let mut rng = Rng::seed_from_u64(0xC0BE_5EED);
    let mut nonempty = 0usize;
    for case_idx in 0..40 {
        let case = gen_case(&mut rng);
        // A limit larger than the projected space (2^projection) so the
        // model sets must match exactly, truncation included.
        let limit = 1usize << case.projection.len();
        let (seq, seq_truncated) = sequential_model_set(&case, limit + 1);
        if !seq.is_empty() {
            nonempty += 1;
        }
        assert!(!seq_truncated, "case {case_idx}: limit was meant to cover the space");
        for bits in 0..=2usize.min(case.projection.len()) {
            let (cubes, cube_truncated) = cube_model_set(&case, limit + 1, bits);
            assert_eq!(
                seq, cubes,
                "case {case_idx} bits={bits}: projected model sets disagree"
            );
            assert!(!cube_truncated, "case {case_idx} bits={bits}: phantom truncation");
        }
    }
    assert!(nonempty >= 10, "degenerate sweep: only {nonempty} satisfiable cases");
}

#[test]
fn cube_enumeration_respects_the_global_limit() {
    let mut rng = Rng::seed_from_u64(0x0011_B17E);
    for case_idx in 0..20 {
        let case = gen_case(&mut rng);
        let space = 1usize << case.projection.len();
        let (seq, _) = sequential_model_set(&case, space + 1);
        if seq.len() < 2 {
            continue;
        }
        let limit = seq.len() - 1;
        for bits in 0..=2usize.min(case.projection.len()) {
            let (cubes, truncated) = cube_model_set(&case, limit, bits);
            assert_eq!(
                cubes.len(),
                limit,
                "case {case_idx} bits={bits}: limit not honored"
            );
            assert!(truncated, "case {case_idx} bits={bits}: truncation unreported");
            // Every returned class is a real class.
            for m in &cubes {
                assert!(seq.contains(m), "case {case_idx} bits={bits}: phantom class {m:?}");
            }
        }
    }
}

#[test]
fn cube_merge_order_is_bit_identical_across_runs() {
    let mut rng = Rng::seed_from_u64(0x0DE7_C0BE);
    for case_idx in 0..15 {
        let case = gen_case(&mut rng);
        let run = |bits: usize| {
            enumerate_projected_cubes(
                case.num_vars,
                &case.clauses,
                &SolverConfig::default(),
                &case.projection,
                &case.assumptions,
                1 << case.projection.len(),
                bits,
            )
        };
        for bits in [1usize, 2] {
            let bits = bits.min(case.projection.len());
            let a = run(bits);
            let b = run(bits);
            assert_eq!(a.models, b.models, "case {case_idx} bits={bits}: merge order drifted");
            assert_eq!(a.truncated, b.truncated);
        }
    }
}
