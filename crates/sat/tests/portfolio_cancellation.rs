//! Cancellation semantics: the interrupt flag is observed within a bounded
//! number of conflicts, and statistics stay consistent afterwards.
//!
//! The flag is polled as the *first* statement of every search-loop
//! iteration, which yields two testable bounds with no timing dependence:
//!
//! - a flag raised before `solve_with` is observed before the first
//!   conflict (zero extra work);
//! - a flag raised while the solver processes conflict N (injected here
//!   through a [`ClauseExchange`] that trips after N exports) stops the
//!   search within one further conflict.

use netarch_sat::{ClauseExchange, Lit, Portfolio, PortfolioConfig, SolveResult, Solver, Var};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let holes = n - 1;
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let mut clauses = Vec::new();
    for p in 0..n {
        clauses.push((0..holes).map(|h| var(p, h).positive()).collect());
    }
    for h in 0..holes {
        for p1 in 0..n {
            for p2 in (p1 + 1)..n {
                clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    (n * holes, clauses)
}

fn hard_solver() -> Solver {
    let (nv, clauses) = pigeonhole(7);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

#[test]
fn preset_flag_stops_before_any_conflict() {
    let mut s = hard_solver();
    let flag = Arc::new(AtomicBool::new(true));
    s.set_interrupt(Arc::clone(&flag));
    let result = s.solve();
    assert_eq!(result, SolveResult::Unknown);
    assert!(s.last_interrupted());
    let stats = s.stats();
    assert_eq!(stats.interrupts, 1);
    assert_eq!(stats.conflicts, 0, "a pre-set flag must cost zero conflicts");
    assert!(
        s.model_value(Var::from_index(0)).is_none(),
        "an interrupted solve must not leave a partial model visible"
    );
}

/// An exchange that raises the interrupt flag after `trip_after` learnt
/// clauses, recording how many export calls it saw in total. Because the
/// solver exports at most one clause per conflict and polls the flag at
/// the top of every iteration, no further exports may arrive after the
/// flag trips.
struct TripWire {
    flag: Arc<AtomicBool>,
    exports_seen: Arc<AtomicU64>,
    trip_after: u64,
}

impl ClauseExchange for TripWire {
    fn export(&mut self, _lits: &[Lit], _lbd: u32) -> bool {
        let seen = self.exports_seen.fetch_add(1, Ordering::Relaxed) + 1;
        if seen == self.trip_after {
            self.flag.store(true, Ordering::Relaxed);
        }
        false
    }

    fn import(&mut self, _buf: &mut Vec<(Vec<Lit>, u32)>) {}
}

#[test]
fn mid_search_flag_observed_within_one_conflict() {
    const TRIP_AFTER: u64 = 10;
    let mut s = hard_solver();
    let flag = Arc::new(AtomicBool::new(false));
    let exports_seen = Arc::new(AtomicU64::new(0));
    s.set_interrupt(Arc::clone(&flag));
    s.set_exchange(Box::new(TripWire {
        flag: Arc::clone(&flag),
        exports_seen: Arc::clone(&exports_seen),
        trip_after: TRIP_AFTER,
    }));
    let result = s.solve();
    assert_eq!(result, SolveResult::Unknown, "pigeonhole(7) cannot finish in 10 conflicts");
    assert!(s.last_interrupted());
    let stats = s.stats();
    assert_eq!(stats.interrupts, 1);
    assert_eq!(
        exports_seen.load(Ordering::Relaxed),
        TRIP_AFTER,
        "no conflict may be processed after the flag was raised"
    );
    // Every learnt clause passed through the trip wire, so the conflict
    // count is pinned to the trip point (+1 tolerates an in-flight
    // conflict at the moment the flag went up).
    assert!(
        stats.conflicts >= TRIP_AFTER && stats.conflicts <= TRIP_AFTER + 1,
        "interrupt observed {} conflicts after the flag, bound is 1",
        stats.conflicts.saturating_sub(TRIP_AFTER)
    );
}

#[test]
fn interrupted_solver_remains_usable() {
    // An interrupt is a pause, not a poison: clearing the flag and
    // re-solving must produce the real verdict with consistent counters.
    let (nv, clauses) = pigeonhole(5);
    let mut s = Solver::new();
    s.ensure_vars(nv);
    for c in &clauses {
        s.add_clause(c.iter().copied());
    }
    let flag = Arc::new(AtomicBool::new(true));
    s.set_interrupt(Arc::clone(&flag));
    assert_eq!(s.solve(), SolveResult::Unknown);
    let interrupted_stats = *s.stats();
    s.clear_interrupt();
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(!s.last_interrupted());
    let final_stats = s.stats();
    assert_eq!(final_stats.interrupts, interrupted_stats.interrupts);
    assert!(final_stats.conflicts > interrupted_stats.conflicts);
}

#[test]
fn portfolio_with_zero_budget_reports_unknown() {
    // When nobody is decisive (every worker exhausts its conflict budget),
    // the portfolio must admit Unknown instead of inventing a winner.
    let (nv, clauses) = pigeonhole(6);
    let out = Portfolio::new(PortfolioConfig {
        num_threads: 2,
        conflict_budget: Some(1),
        ..Default::default()
    })
    .solve(nv, &clauses, &[]);
    assert_eq!(out.result, SolveResult::Unknown);
    assert_eq!(out.winner, None);
    assert!(out.model.is_none());
    assert!(out.core.is_empty());
}

#[test]
fn racing_portfolio_keeps_worker_stats_consistent() {
    // After a race, every worker's statistics must still be well-formed:
    // interrupted workers report Unknown-compatible counters, and the
    // winner's verdict is decisive.
    let (nv, clauses) = pigeonhole(6);
    let out = Portfolio::new(PortfolioConfig { num_threads: 4, ..Default::default() })
        .solve(nv, &clauses, &[]);
    assert_eq!(out.result, SolveResult::Unsat);
    let w = out.winner.expect("decisive verdict has a winner");
    assert!(w < 4);
    assert_eq!(out.stats.workers.len(), 4);
    for stats in &out.stats.workers {
        assert!(stats.interrupts <= 1, "one solve call polls one flag");
        assert!(stats.exported_clauses <= stats.conflicts);
    }
}
