//! Differential stress sweep: portfolio vs sequential solver.
//!
//! Over 220 seeded random formulas (a mix of SAT and UNSAT, roughly half
//! solved under assumptions), the racing portfolio at 1, 2, and 4 threads
//! must agree with the sequential solver's verdict. Every SAT verdict's
//! model must satisfy the formula and the assumptions; every UNSAT
//! verdict's core must be a subset of the assumptions that is itself
//! unsatisfiable (checked by re-solving under the core alone).
//!
//! All randomness is seeded — running the sweep twice explores the same
//! 220 formulas.

use netarch_rt::Rng;
use netarch_sat::{Lit, Portfolio, PortfolioConfig, SolveResult, Solver, Var};

const CASES: usize = 220;

struct Case {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    assumptions: Vec<Lit>,
}

fn gen_case(rng: &mut Rng) -> Case {
    let num_vars = rng.gen_range(3..=12usize);
    let num_clauses = rng.gen_range(2..=55usize);
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let len = rng.gen_range(1..=3usize);
        let clause: Vec<Lit> = (0..len)
            .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        clauses.push(clause);
    }
    let assumptions = if rng.gen_bool(0.5) {
        let n = rng.gen_range(1..=3usize);
        let mut lits: Vec<Lit> = (0..n)
            .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        // A variable assumed in both phases is trivially conflicting input;
        // keep one phase per variable so cores stay meaningful.
        lits.sort_by_key(|l| l.var().index());
        lits.dedup_by_key(|l| l.var().index());
        lits
    } else {
        Vec::new()
    };
    Case { num_vars, clauses, assumptions }
}

fn sequential_verdict(case: &Case) -> (SolveResult, Solver) {
    let mut s = Solver::new();
    s.ensure_vars(case.num_vars);
    for c in &case.clauses {
        s.add_clause(c.iter().copied());
    }
    let r = s.solve_with(&case.assumptions);
    (r, s)
}

fn model_satisfies(model: &[Option<bool>], clauses: &[Vec<Lit>], assumptions: &[Lit]) -> bool {
    let lit_true =
        |l: &Lit| model.get(l.var().index()).copied().flatten() == Some(l.is_positive());
    clauses.iter().all(|c| c.iter().any(lit_true)) && assumptions.iter().all(lit_true)
}

/// Re-solves the formula with the reported core as the only assumptions;
/// a sound core keeps it UNSAT.
fn core_is_sound(case: &Case, core: &[Lit]) -> bool {
    if !core.iter().all(|l| case.assumptions.contains(l)) {
        return false;
    }
    let mut s = Solver::new();
    s.ensure_vars(case.num_vars);
    for c in &case.clauses {
        s.add_clause(c.iter().copied());
    }
    s.solve_with(core) == SolveResult::Unsat
}

#[test]
fn portfolio_agrees_with_sequential_across_seeds() {
    let mut rng = Rng::seed_from_u64(0x5EED_D1FF);
    let mut sat = 0usize;
    let mut unsat = 0usize;
    for case_idx in 0..CASES {
        let case = gen_case(&mut rng);
        let (expected, _) = sequential_verdict(&case);
        match expected {
            SolveResult::Sat => sat += 1,
            SolveResult::Unsat => unsat += 1,
            SolveResult::Unknown => panic!("sequential solver must be decisive"),
        }
        for threads in [1usize, 2, 4] {
            let portfolio = Portfolio::new(PortfolioConfig {
                num_threads: threads,
                seed: case_idx as u64,
                ..Default::default()
            });
            let out = portfolio.solve(case.num_vars, &case.clauses, &case.assumptions);
            assert_eq!(
                out.result, expected,
                "case {case_idx} at {threads} threads disagrees with sequential"
            );
            match out.result {
                SolveResult::Sat => {
                    let model = out.model.as_ref().expect("SAT must carry a model");
                    assert!(
                        model_satisfies(model, &case.clauses, &case.assumptions),
                        "case {case_idx} at {threads} threads: invalid model"
                    );
                }
                SolveResult::Unsat => {
                    if !case.assumptions.is_empty() {
                        assert!(
                            core_is_sound(&case, &out.core),
                            "case {case_idx} at {threads} threads: unsound core {:?}",
                            out.core
                        );
                    }
                }
                SolveResult::Unknown => unreachable!(),
            }
            assert_eq!(out.stats.workers.len(), threads);
        }
    }
    // The sweep must actually exercise both verdicts, or it proves nothing.
    assert!(sat >= 30, "degenerate sweep: only {sat} SAT cases");
    assert!(unsat >= 30, "degenerate sweep: only {unsat} UNSAT cases");
}

#[test]
fn inprocessing_portfolio_agrees_with_plain_sequential() {
    // Workers inherit inprocessing through the base configuration. With
    // the most hostile schedule (inprocess every restart, restarts every
    // conflict, chronological backtracking on) the portfolio at 1, 2, and
    // 4 threads must still agree with a plain sequential solver that has
    // inprocessing off, with valid models and sound cores.
    use netarch_sat::SolverConfig;
    let mut rng = Rng::seed_from_u64(0x1A9C_BA5E);
    let plain = SolverConfig { inprocessing_enabled: false, ..SolverConfig::default() };
    let aggressive = SolverConfig {
        inprocess_interval: 1,
        restart_base: 1,
        chrono_threshold: 1,
        ..SolverConfig::default()
    };
    for case_idx in 0..80 {
        let case = gen_case(&mut rng);
        let mut seq = Solver::with_config(plain.clone());
        seq.ensure_vars(case.num_vars);
        for c in &case.clauses {
            seq.add_clause(c.iter().copied());
        }
        let expected = seq.solve_with(&case.assumptions);
        for threads in [1usize, 2, 4] {
            let portfolio = Portfolio::new(PortfolioConfig {
                num_threads: threads,
                base: aggressive.clone(),
                seed: case_idx as u64,
                ..Default::default()
            });
            let out = portfolio.solve(case.num_vars, &case.clauses, &case.assumptions);
            assert_eq!(
                out.result, expected,
                "case {case_idx} at {threads} threads: inprocessing changed the verdict"
            );
            match out.result {
                SolveResult::Sat => {
                    let model = out.model.as_ref().expect("SAT must carry a model");
                    assert!(
                        model_satisfies(model, &case.clauses, &case.assumptions),
                        "case {case_idx} at {threads} threads: invalid model"
                    );
                }
                SolveResult::Unsat if !case.assumptions.is_empty() => {
                    assert!(
                        core_is_sound(&case, &out.core),
                        "case {case_idx} at {threads} threads: unsound core {:?}",
                        out.core
                    );
                }
                _ => {}
            }
        }
    }
}

#[test]
fn one_thread_portfolio_matches_sequential_stats() {
    // Worker 0 runs the unmodified base configuration, so a 1-thread
    // portfolio is search-identical to a plain sequential solver.
    let mut rng = Rng::seed_from_u64(0xBA5E);
    for _ in 0..40 {
        let case = gen_case(&mut rng);
        let (expected, seq) = sequential_verdict(&case);
        let portfolio = Portfolio::new(PortfolioConfig { num_threads: 1, ..Default::default() });
        let out = portfolio.solve(case.num_vars, &case.clauses, &case.assumptions);
        assert_eq!(out.result, expected);
        assert_eq!(out.winner, Some(0));
        assert_eq!(
            out.stats.workers[0].conflicts,
            seq.stats().conflicts,
            "worker 0 must replay the sequential search exactly"
        );
        assert_eq!(out.stats.workers[0].decisions, seq.stats().decisions);
    }
}
