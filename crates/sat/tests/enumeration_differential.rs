//! Differential test: blocking-clause model enumeration vs brute force.
//!
//! Enumeration is how the architecture layer computes equivalence classes
//! of designs, and its blocking-clause loop is easy to get subtly wrong
//! (a bad blocking clause silently double-counts or drops models). The
//! oracle here is exhaustive: on random 3-CNFs up to 12 variables, the
//! enumerated model count must equal the brute-force count, every
//! enumerated model must satisfy the formula, and no model may repeat.
//! Projected enumeration is checked the same way against the brute-force
//! count of distinct projections.

use netarch_rt::prop::{self, gen_vec, Config};
use netarch_rt::{prop_assert, prop_assert_eq, Rng};
use netarch_sat::{enumerate, Lit, Solver, Var};
use std::collections::HashSet;

/// A 3-CNF clause as (variable index, polarity) triples.
type RawClause = Vec<(usize, bool)>;

/// 1–12 variables and up to 5·vars 3-literal clauses (ratio spanning both
/// sides of the SAT/UNSAT threshold, so counts of 0 occur too).
fn gen_3cnf(rng: &mut Rng) -> (usize, Vec<RawClause>) {
    let num_vars = rng.gen_range(1..=12usize);
    let max_clauses = 5 * num_vars;
    let clauses = gen_vec(rng, 0..=max_clauses, |r| {
        gen_vec(r, 3..=3, |r| (r.gen_range(0..num_vars), r.gen_bool(0.5)))
    });
    (num_vars, clauses)
}

/// Shrinking is structure-blind; clamp indices back into range.
fn normalize(f: &(usize, Vec<RawClause>)) -> (usize, Vec<RawClause>) {
    let num_vars = f.0.clamp(1, 12);
    let clauses = f
        .1
        .iter()
        .map(|c| c.iter().map(|&(v, pos)| (v % num_vars, pos)).collect())
        .collect();
    (num_vars, clauses)
}

fn satisfies(bits: u32, clauses: &[RawClause]) -> bool {
    clauses.iter().all(|clause| {
        clause.iter().any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos)
    })
}

fn build_solver(num_vars: usize, clauses: &[RawClause]) -> Solver {
    let mut s = Solver::new();
    s.ensure_vars(num_vars);
    for c in clauses {
        s.add_clause(c.iter().map(|&(v, pos)| Lit::new(Var::from_index(v), pos)));
    }
    s
}

#[test]
fn enumeration_count_matches_brute_force_on_3cnf() {
    prop::check(&Config::with_cases(128), gen_3cnf, |f| {
        let (num_vars, clauses) = normalize(f);
        let expected = (0u32..1 << num_vars).filter(|&bits| satisfies(bits, &clauses)).count();
        let mut s = build_solver(num_vars, &clauses);
        let limit = 1usize << num_vars;
        let e = enumerate::enumerate_projected(&mut s, &[], &[], limit);
        prop_assert!(!e.truncated, "limit covers the whole space");
        prop_assert_eq!(e.models.len(), expected, "model count mismatch");
        // Every enumerated model satisfies the formula, and none repeats.
        let mut seen = HashSet::new();
        for model in &e.models {
            let mut bits = 0u32;
            for &(v, value) in model {
                if value {
                    bits |= 1 << v.index();
                }
            }
            prop_assert!(satisfies(bits, &clauses), "enumerated model falsifies formula");
            prop_assert!(seen.insert(bits), "model enumerated twice");
        }
        Ok(())
    });
}

#[test]
fn projected_enumeration_counts_distinct_projections() {
    prop::check(
        &Config::with_cases(128),
        |rng| {
            let f = gen_3cnf(rng);
            // keep >= 1: an empty projection means "all variables" to the
            // API, which is a different (already tested) behavior.
            let keep = rng.gen_range(1..=f.0);
            (f, keep)
        },
        |(f, keep)| {
            let (num_vars, clauses) = normalize(f);
            let keep = (*keep).clamp(1, num_vars);
            let projection: Vec<Var> = (0..keep).map(Var::from_index).collect();
            // Brute-force: distinct restrictions of the models to the
            // projection variables.
            let mut expected: HashSet<u32> = HashSet::new();
            for bits in 0u32..1 << num_vars {
                if satisfies(bits, &clauses) {
                    expected.insert(bits & ((1u32 << keep) - 1));
                }
            }
            let mut s = build_solver(num_vars, &clauses);
            let e = enumerate::enumerate_projected(&mut s, &projection, &[], 1 << num_vars);
            prop_assert!(!e.truncated);
            prop_assert_eq!(e.models.len(), expected.len(), "projection count mismatch");
            for model in &e.models {
                let mut bits = 0u32;
                for &(v, value) in model {
                    if value {
                        bits |= 1 << v.index();
                    }
                }
                prop_assert!(expected.contains(&bits), "projection not among expected");
            }
            Ok(())
        },
    );
}

#[test]
fn enumeration_under_assumptions_restricts_the_space() {
    prop::check(&Config::with_cases(96), gen_3cnf, |f| {
        let (num_vars, clauses) = normalize(f);
        // Assume variable 0 true: counts must match brute force over the
        // restricted space, and enumeration must leave the assumption out
        // of the blocking clauses' permanent effects for var-0-false models.
        let expected = (0u32..1 << num_vars)
            .filter(|&bits| bits & 1 == 1 && satisfies(bits, &clauses))
            .count();
        let mut s = build_solver(num_vars, &clauses);
        let assumption = [Var::from_index(0).positive()];
        let e = enumerate::enumerate_projected(&mut s, &[], &assumption, 1 << num_vars);
        prop_assert!(!e.truncated);
        prop_assert_eq!(e.models.len(), expected);
        Ok(())
    });
}

#[test]
fn truncation_reports_exactly_at_the_limit() {
    // A formula with no clauses over n variables has 2^n models; a limit
    // below that must truncate, a limit at or above must not.
    for num_vars in [3usize, 5, 8] {
        let total = 1usize << num_vars;
        let mut s = Solver::new();
        s.ensure_vars(num_vars);
        let (count, truncated) = enumerate::count_models(&mut s, &[], total - 1);
        assert_eq!(count, total - 1);
        assert!(truncated, "limit below the space must truncate");

        let mut s = Solver::new();
        s.ensure_vars(num_vars);
        let (count, truncated) = enumerate::count_models(&mut s, &[], total);
        assert_eq!(count, total);
        assert!(!truncated, "limit equal to the space must not truncate");
    }
}
