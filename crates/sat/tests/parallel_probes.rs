//! Differential property sweep for the persistent probe pool.
//!
//! Over seeded random 3-SAT formulas, rounds of probes dispatched through a
//! [`ProbePool`] must agree with direct sequential solves of the same
//! (formula, assumptions) pairs — for 1, 2, and 4 seats, in deterministic
//! mode (where every seat must reach a decisive verdict) and in racing mode
//! (where cancelled seats may report `Unknown`, but decisive answers must
//! still match the oracle). Deterministic repeat runs must be bit-identical.
//!
//! All randomness is seeded — running the sweep twice explores the same
//! formulas.

use netarch_rt::Rng;
use netarch_sat::{
    lit_value_in, Lit, ProbePool, ProbePoolConfig, SolveResult, Solver, SolverConfig, Var,
};
use std::sync::Arc;

struct Case {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Assumption sets, one per probe.
    probes: Vec<Vec<Lit>>,
}

fn gen_case(rng: &mut Rng, max_probes: usize) -> Case {
    let num_vars = rng.gen_range(8..=20usize);
    let num_clauses = (num_vars as f64 * (3.0 + rng.gen_range(0..=20u32) as f64 / 10.0)) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut clause: Vec<Lit> = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        clauses.push(clause);
    }
    let probes = (0..rng.gen_range(1..=max_probes))
        .map(|_| {
            let n = rng.gen_range(0..=3usize);
            let mut lits: Vec<Lit> = (0..n)
                .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
                .collect();
            lits.sort_by_key(|l| l.var().index());
            lits.dedup_by_key(|l| l.var().index());
            lits
        })
        .collect();
    Case { num_vars, clauses, probes }
}

fn oracle_verdict(case: &Case, assumptions: &[Lit]) -> SolveResult {
    let mut s = Solver::with_config(SolverConfig::default());
    s.ensure_vars(case.num_vars);
    for c in &case.clauses {
        s.add_clause(c.iter().copied());
    }
    s.solve_with(assumptions)
}

fn model_satisfies(case: &Case, assumptions: &[Lit], model: &[Option<bool>]) -> bool {
    let lit_true = |l: &Lit| lit_value_in(model, *l) == Some(true);
    case.clauses.iter().all(|c| c.iter().any(lit_true)) && assumptions.iter().all(lit_true)
}

#[test]
fn pool_rounds_agree_with_sequential_oracle() {
    let mut rng = Rng::seed_from_u64(0x0092_0BE5);
    for seats in [1usize, 2, 4] {
        for deterministic in [true, false] {
            for case_idx in 0..25 {
                let case = gen_case(&mut rng, seats);
                let mut pool = ProbePool::new(ProbePoolConfig {
                    seats,
                    num_vars: case.num_vars,
                    clauses: Arc::new(case.clauses.clone()),
                    base: SolverConfig::default(),
                    frozen: (0..case.num_vars).map(Var::from_index).collect(),
                    deterministic,
                    seed: case_idx,
                    conflict_budget: None,
                });
                // Two rounds over the same probe set: persistent seats must
                // answer consistently as their clause databases warm up.
                for round in 0..2 {
                    let outcomes = pool.solve_round(&case.probes);
                    for (probe, outcome) in case.probes.iter().zip(&outcomes) {
                        let expected = oracle_verdict(&case, probe);
                        let label = format!(
                            "seats={seats} det={deterministic} case={case_idx} round={round}"
                        );
                        match outcome.result {
                            SolveResult::Unknown => {
                                assert!(!deterministic, "{label}: unexpected Unknown");
                            }
                            got => assert_eq!(got, expected, "{label}: verdict disagrees"),
                        }
                        if outcome.result == SolveResult::Sat {
                            let model = outcome.model.as_deref().expect("SAT carries a model");
                            assert!(
                                model_satisfies(&case, probe, model),
                                "{label}: probe model violates the formula"
                            );
                        }
                    }
                }
                pool.finish();
            }
        }
    }
}

#[test]
fn deterministic_pools_are_bit_identical_across_runs() {
    let mut rng = Rng::seed_from_u64(0x0DE7_E2A1);
    for case_idx in 0..10 {
        let case = gen_case(&mut rng, 4);
        let run = || {
            let mut pool = ProbePool::new(ProbePoolConfig {
                seats: 4,
                num_vars: case.num_vars,
                clauses: Arc::new(case.clauses.clone()),
                base: SolverConfig::default(),
                frozen: (0..case.num_vars).map(Var::from_index).collect(),
                deterministic: true,
                seed: 3,
                conflict_budget: None,
            });
            let mut transcript = Vec::new();
            for _ in 0..3 {
                for o in pool.solve_round(&case.probes) {
                    transcript.push((o.result, o.model));
                }
            }
            (transcript, pool.finish())
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "case {case_idx}: outcomes drifted between runs");
        assert_eq!(s1, s2, "case {case_idx}: per-seat stats drifted between runs");
    }
}
