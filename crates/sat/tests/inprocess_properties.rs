//! Differential stress sweep for restart-boundary inprocessing.
//!
//! Over seeded random formulas (SAT and UNSAT, half solved under
//! assumptions), a solver with aggressive inprocessing — subsumption,
//! vivification, and bounded variable elimination every restart, plus
//! chronological backtracking — must agree verdict-for-verdict with a
//! plain solver that has inprocessing off. SAT models must satisfy the
//! original formula (exercising model reconstruction across eliminated
//! variables), UNSAT cores must be sound, and every UNSAT verdict must
//! carry a DRAT proof the independent checker accepts, so the
//! strengthening/deletion/resolvent traffic inprocessing emits is
//! certified end-to-end.
//!
//! All randomness is seeded — running the sweep twice explores the same
//! formulas.

use netarch_rt::Rng;
use netarch_sat::{
    check_refutation, check_refutation_under_assumptions, Lit, SolveResult, Solver, SolverConfig,
    Var,
};

const CASES: usize = 160;

struct Case {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    assumptions: Vec<Lit>,
}

fn gen_case(rng: &mut Rng) -> Case {
    // Near the 3-SAT phase transition (ratio ≈ 3.5–6.0) with enough
    // variables that the solver restarts for real — tiny formulas learn
    // only units, never restart, and so never reach the inprocessing hook.
    let num_vars = rng.gen_range(18..=40usize);
    let ratio = 3.5 + rng.gen_range(0..=25u32) as f64 / 10.0;
    let num_clauses = (num_vars as f64 * ratio) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let len = 3usize;
        let mut clause: Vec<Lit> = Vec::with_capacity(len);
        while clause.len() < len {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        clauses.push(clause);
    }
    let assumptions = if rng.gen_bool(0.5) {
        let n = rng.gen_range(1..=3usize);
        let mut lits: Vec<Lit> = (0..n)
            .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        lits.sort_by_key(|l| l.var().index());
        lits.dedup_by_key(|l| l.var().index());
        lits
    } else {
        Vec::new()
    };
    Case { num_vars, clauses, assumptions }
}

/// Inprocessing every restart with restarts forced early, plus one-level
/// chronological backtracking on every long backjump — the most hostile
/// schedule the configuration space allows.
fn aggressive_config() -> SolverConfig {
    SolverConfig {
        inprocessing_enabled: true,
        inprocess_interval: 1,
        restart_base: 1,
        chrono_threshold: 1,
        ..SolverConfig::default()
    }
}

fn plain_config() -> SolverConfig {
    SolverConfig {
        inprocessing_enabled: false,
        chrono_threshold: 0,
        ..SolverConfig::default()
    }
}

fn build(case: &Case, config: SolverConfig, record: bool) -> Solver {
    let mut s = Solver::with_config(config);
    if record {
        s.record_proof();
    }
    s.ensure_vars(case.num_vars);
    for c in &case.clauses {
        s.add_clause(c.iter().copied());
    }
    s
}

fn model_satisfies(s: &Solver, case: &Case) -> bool {
    let lit_true = |l: &Lit| s.model_lit_value(*l) == Some(true);
    case.clauses.iter().all(|c| c.iter().any(lit_true))
        && case.assumptions.iter().all(lit_true)
}

fn core_is_sound(case: &Case, core: &[Lit]) -> bool {
    if !core.iter().all(|l| case.assumptions.contains(l)) {
        return false;
    }
    let mut s = build(case, plain_config(), false);
    s.solve_with(core) == SolveResult::Unsat
}

#[test]
fn aggressive_inprocessing_agrees_with_plain_solver() {
    let mut rng = Rng::seed_from_u64(0x1A9C_0FF5);
    let mut sat = 0usize;
    let mut unsat = 0usize;
    let mut inprocessings = 0u64;
    let mut eliminated = 0u64;
    for case_idx in 0..CASES {
        let case = gen_case(&mut rng);
        let mut plain = build(&case, plain_config(), false);
        let expected = plain.solve_with(&case.assumptions);
        match expected {
            SolveResult::Sat => sat += 1,
            SolveResult::Unsat => unsat += 1,
            SolveResult::Unknown => panic!("unbounded solve returned Unknown"),
        }
        let mut s = build(&case, aggressive_config(), true);
        let got = s.solve_with(&case.assumptions);
        assert_eq!(got, expected, "case {case_idx}: inprocessing changed the verdict");
        inprocessings += s.stats().inprocessings;
        eliminated += s.stats().eliminated_vars;
        match got {
            SolveResult::Sat => {
                assert!(
                    model_satisfies(&s, &case),
                    "case {case_idx}: reconstructed model violates the formula"
                );
            }
            SolveResult::Unsat => {
                let proof = s.recorded_proof().expect("recording was enabled");
                if case.assumptions.is_empty() {
                    assert_eq!(
                        check_refutation(case.num_vars, &case.clauses, proof),
                        Ok(()),
                        "case {case_idx}: checker rejected an inprocessed refutation"
                    );
                } else {
                    let core = s.unsat_core().to_vec();
                    assert!(core_is_sound(&case, &core), "case {case_idx}: unsound core");
                    assert_eq!(
                        check_refutation_under_assumptions(
                            case.num_vars,
                            &case.clauses,
                            proof,
                            &core,
                        ),
                        Ok(()),
                        "case {case_idx}: checker rejected the core certificate"
                    );
                }
            }
            SolveResult::Unknown => unreachable!(),
        }
    }
    // The sweep must exercise both verdicts and actually inprocess, or it
    // proves nothing about the passes under test.
    assert!(sat >= 20, "degenerate sweep: only {sat} SAT cases");
    assert!(unsat >= 20, "degenerate sweep: only {unsat} UNSAT cases");
    assert!(inprocessings > 0, "sweep never reached an inprocessing round");
    assert!(eliminated > 0, "sweep never eliminated a variable");
}

#[test]
fn explicit_inprocess_between_incremental_solves_is_transparent() {
    // Force a full inprocessing round between solve calls: verdicts under
    // fresh assumptions must match a plain solver's, and assumption
    // variables (auto-frozen by earlier solves) must survive elimination.
    let mut rng = Rng::seed_from_u64(0xD1FF_5EED);
    for round in 0..60 {
        let case = gen_case(&mut rng);
        let mut s = build(&case, SolverConfig::default(), false);
        let mut reference = build(&case, plain_config(), false);
        let first = s.solve_with(&case.assumptions);
        assert_eq!(first, reference.solve_with(&case.assumptions), "round {round}");
        let consistent = s.inprocess();
        let second = s.solve_with(&case.assumptions);
        let expected = reference.solve_with(&case.assumptions);
        assert_eq!(second, expected, "round {round}: inprocess changed a verdict");
        if !consistent {
            assert_eq!(s.solve(), SolveResult::Unsat, "round {round}");
        }
        for l in &case.assumptions {
            assert!(
                !s.is_eliminated(l.var()),
                "round {round}: assumption variable eliminated despite freeze"
            );
        }
        if second == SolveResult::Sat {
            assert!(model_satisfies(&s, &case), "round {round}: bad model after inprocess");
        }
    }
}

#[test]
fn inprocessing_counters_fire_on_redundant_formulas() {
    // A formula deliberately padded with subsumed supersets and a chain of
    // implications: one explicit inprocessing round must exercise all three
    // passes (the statistics are the observable contract the engine's
    // `--json` stats surface builds on).
    let mut s = Solver::with_config(SolverConfig::default());
    let vars: Vec<Var> = (0..30).map(|_| s.new_var()).collect();
    let lit = |i: usize| vars[i].positive();
    // Frozen tail vars keep the clauses below alive through BVE so the
    // subsumption/vivification counters are attributable.
    for &v in &vars[..12] {
        s.freeze_var(v);
    }
    // Implication chain for vivification: x0 → x1 → … → x5.
    for i in 0..5 {
        s.add_clause([!lit(i), lit(i + 1)]);
    }
    // A clause with a vivifiable tail: (¬x0 ∨ x5 ∨ x6 ∨ x7).
    s.add_clause([!lit(0), lit(5), lit(6), lit(7)]);
    // Subsumed supersets of (x8 ∨ x9).
    s.add_clause([lit(8), lit(9)]);
    s.add_clause([lit(8), lit(9), lit(10)]);
    s.add_clause([lit(8), lit(9), lit(11), lit(10)]);
    // Eliminable auxiliaries: x20 bridges two frozen vars.
    s.add_clause([lit(4), vars[20].positive()]);
    s.add_clause([lit(6), vars[20].negative()]);
    assert!(s.inprocess());
    let stats = *s.stats();
    assert!(stats.subsumed >= 2, "expected subsumption work: {stats}");
    assert!(stats.vivified >= 1, "expected vivification work: {stats}");
    assert!(stats.eliminated_vars >= 1, "expected BVE work: {stats}");
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn enumeration_projection_vars_are_eliminable_again_afterwards() {
    // Regression for the freeze/thaw balance in `enumerate_projected`: the
    // projection freeze used to be permanent, pinning projection variables
    // against BVE for the rest of a session's life. After the fix,
    // enumeration thaws what it froze, so a later inprocessing round can
    // eliminate a variable that only ever served as a projection target.
    use netarch_sat::enumerate::enumerate_projected;
    let mut s = Solver::with_config(SolverConfig::default());
    let b = s.new_var();
    let c = s.new_var();
    let v1 = s.new_var();
    let a = s.new_var();
    s.freeze_var(b);
    s.freeze_var(c);
    // v1 bridges two frozen vars: (b ∨ v1) ∧ (c ∨ ¬v1) resolves to
    // (b ∨ c), so BVE can eliminate v1 — unless a stale freeze pins it.
    s.add_clause([b.positive(), v1.positive()]);
    s.add_clause([c.positive(), v1.negative()]);
    // Enumerate projected onto v1 under an unsatisfied assumption so the
    // walk terminates immediately and adds no blocking clauses.
    s.add_clause([a.positive()]);
    let out = enumerate_projected(&mut s, &[v1], &[a.negative()], 10);
    assert!(out.models.is_empty() && !out.truncated);
    assert!(!s.is_frozen(v1), "enumeration must thaw its projection freeze");
    assert!(s.inprocess());
    assert!(
        s.is_eliminated(v1),
        "post-enumeration BVE should be able to eliminate the projection var"
    );
}
