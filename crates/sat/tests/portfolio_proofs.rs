//! Proof mode: every UNSAT verdict a portfolio returns must carry a DRAT
//! proof the independent checker accepts.
//!
//! Clause sharing is disabled under `verify_proofs` — an imported clause is
//! not derivable from the importer's own proof log, so sharing would make
//! the winning proof unreplayable. These tests assert both halves: the
//! proofs check out, and the sharing machinery stayed cold.

use netarch_rt::Rng;
use netarch_sat::{
    check_refutation, check_refutation_under_assumptions, Lit, Portfolio, PortfolioConfig,
    SolveResult, Solver, Var,
};

fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let holes = n - 1;
    let var = |p: usize, h: usize| Var::from_index(p * holes + h);
    let mut clauses = Vec::new();
    for p in 0..n {
        clauses.push((0..holes).map(|h| var(p, h).positive()).collect());
    }
    for h in 0..holes {
        for p1 in 0..n {
            for p2 in (p1 + 1)..n {
                clauses.push(vec![var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    (n * holes, clauses)
}

/// An odd cycle of equivalences with one inverted edge: UNSAT with short,
/// structured refutations.
fn odd_cycle(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let v = |i: usize| Var::from_index(i % n);
    let mut clauses = Vec::new();
    for i in 0..n {
        if i + 1 == n {
            clauses.push(vec![v(i).positive(), v(i + 1).positive()]);
            clauses.push(vec![v(i).negative(), v(i + 1).negative()]);
        } else {
            clauses.push(vec![v(i).negative(), v(i + 1).positive()]);
            clauses.push(vec![v(i).positive(), v(i + 1).negative()]);
        }
    }
    (n, clauses)
}

fn proof_config(threads: usize, seed: u64) -> PortfolioConfig {
    PortfolioConfig { num_threads: threads, verify_proofs: true, seed, ..Default::default() }
}

fn assert_checked_refutation(
    label: &str,
    threads: usize,
    num_vars: usize,
    clauses: &[Vec<Lit>],
) {
    let out = Portfolio::new(proof_config(threads, 7)).solve(num_vars, clauses, &[]);
    assert_eq!(out.result, SolveResult::Unsat, "{label} at {threads} threads");
    let proof = out.proof.as_ref().expect("UNSAT in proof mode must attach a proof");
    check_refutation(num_vars, clauses, proof)
        .unwrap_or_else(|e| panic!("{label} at {threads} threads: proof rejected: {e}"));
    // Sharing must be disabled in proof mode.
    assert_eq!(out.stats.pool_published, 0);
    for w in &out.stats.workers {
        assert_eq!(w.imported_clauses, 0, "{label}: a worker imported under proof mode");
        assert_eq!(w.exported_clauses, 0, "{label}: a worker exported under proof mode");
    }
}

#[test]
fn structured_unsat_proofs_check_out() {
    for threads in [1usize, 2, 4] {
        let (nv, clauses) = pigeonhole(5);
        assert_checked_refutation("pigeonhole(5)", threads, nv, &clauses);
        let (nv, clauses) = odd_cycle(9);
        assert_checked_refutation("odd_cycle(9)", threads, nv, &clauses);
    }
}

#[test]
fn random_unsat_proofs_check_out() {
    // Seeded random formulas, filtered to UNSAT by a sequential probe —
    // the same corpus shape exp_proof_check sweeps.
    let mut rng = Rng::seed_from_u64(0x9F00F5);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 25 && attempts < 400 {
        attempts += 1;
        let num_vars = rng.gen_range(4..=10usize);
        let clauses: Vec<Vec<Lit>> = (0..rng.gen_range(10..=50usize))
            .map(|_| {
                (0..rng.gen_range(1..=3usize))
                    .map(|_| {
                        Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5))
                    })
                    .collect()
            })
            .collect();
        let mut probe = Solver::new();
        probe.ensure_vars(num_vars);
        for c in &clauses {
            probe.add_clause(c.iter().copied());
        }
        if probe.solve() != SolveResult::Unsat {
            continue;
        }
        assert_checked_refutation("random", 2, num_vars, &clauses);
        checked += 1;
    }
    assert!(checked >= 25, "corpus too easy: only {checked} UNSAT formulas in {attempts}");
}

#[test]
fn assumption_unsat_proofs_check_out_against_core() {
    let mut rng = Rng::seed_from_u64(0xC04E);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 15 && attempts < 400 {
        attempts += 1;
        let num_vars = rng.gen_range(4..=10usize);
        let clauses: Vec<Vec<Lit>> = (0..rng.gen_range(5..=35usize))
            .map(|_| {
                (0..rng.gen_range(1..=3usize))
                    .map(|_| {
                        Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5))
                    })
                    .collect()
            })
            .collect();
        let mut assumptions: Vec<Lit> = (0..rng.gen_range(1..=3usize))
            .map(|_| Lit::new(Var::from_index(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        assumptions.sort_by_key(|l| l.var().index());
        assumptions.dedup_by_key(|l| l.var().index());
        // Keep only cases UNSAT *because of* the assumptions (the base
        // formula alone is SAT) so the core/proof interplay is exercised.
        let mut probe = Solver::new();
        probe.ensure_vars(num_vars);
        for c in &clauses {
            probe.add_clause(c.iter().copied());
        }
        if probe.solve() != SolveResult::Sat || probe.solve_with(&assumptions) != SolveResult::Unsat
        {
            continue;
        }
        let out = Portfolio::new(proof_config(2, 11)).solve(num_vars, &clauses, &assumptions);
        assert_eq!(out.result, SolveResult::Unsat);
        let proof = out.proof.as_ref().expect("proof mode attaches a proof");
        check_refutation_under_assumptions(num_vars, &clauses, proof, &out.core)
            .unwrap_or_else(|e| panic!("assumption proof rejected: {e}"));
        checked += 1;
    }
    assert!(checked >= 15, "corpus too easy: only {checked} assumption-UNSAT cases");
}
