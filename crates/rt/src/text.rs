//! Generic block-structured text parsing: a lexer with line/column spans
//! and a recursive-descent parser for an HCL-ish surface syntax.
//!
//! This module is *syntax only*. It turns text like
//!
//! ```text
//! system "SIMON" {
//!   category = monitoring
//!   solves   = [capture_delays, detect_queue_length]
//!   requires "needs-nic-timestamps" {
//!     condition = nics.have(NIC_TIMESTAMPS)
//!   }
//! }
//! ```
//!
//! into a generic tree of [`Block`]s, [`Attr`]s, and [`Expr`]s, each
//! carrying a [`Span`]. Assigning *meaning* to keywords and expressions is
//! the job of a frontend layered on top (the `netarch-dsl` crate); keeping
//! the split here mirrors how [`crate::json`] parses values without knowing
//! the shapes deserialized from them.
//!
//! The grammar, informally:
//!
//! ```text
//! document := block*
//! block    := IDENT STRING* '{' item* '}'
//! item     := IDENT '=' expr            (attribute)
//!           | IDENT STRING* '{' ... '}' (nested block)
//! expr     := sum (CMPOP sum)?          CMPOP ∈ { < <= > >= == }
//! sum      := product ('+' product)*
//! product  := primary ('*' primary)*
//! primary  := STRING | NUMBER | '-' NUMBER | INT '..' INT
//!           | 'true' | 'false'
//!           | path | path '(' expr,* ')'
//!           | '[' expr,* ']' | '(' expr ')'
//! path     := IDENT ('.' IDENT)*
//! ```
//!
//! `#` starts a comment running to end of line.

use std::fmt;

/// A position in the source text, 1-based, in characters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters, not bytes).
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A source region, inclusive of `start`, exclusive of `end`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// Where the region begins.
    pub start: Pos,
    /// Where the region ends.
    pub end: Pos,
}

impl Span {
    /// A zero-width span at a position.
    pub fn at(pos: Pos) -> Span {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both operands.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start, end: other.end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// A value paired with the span it was parsed from.
#[derive(Clone, PartialEq, Debug)]
pub struct Spanned<T> {
    /// The parsed value.
    pub value: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs a value with its span.
    pub fn new(value: T, span: Span) -> Spanned<T> {
        Spanned { value, span }
    }
}

/// A syntax error with the position it occurred at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TextError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl TextError {
    /// Creates an error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> TextError {
        TextError { message: message.into(), span }
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for TextError {}

/// Binary operators appearing in expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `*`
    Mul,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Mul => "*",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::EqEq => "==",
        };
        f.write_str(s)
    }
}

/// A generic attribute-value expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A quoted string literal.
    Str(String),
    /// An integer literal (possibly negative).
    Int(i64),
    /// A float literal (possibly negative).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A dotted identifier path, e.g. `monitoring` or `nics.have`.
    Path(Vec<String>),
    /// A call, e.g. `nics.have(NIC_TIMESTAMPS)` or `all(a, b)`.
    Call {
        /// The dotted callee path.
        path: Vec<String>,
        /// Argument expressions.
        args: Vec<Spanned<Expr>>,
    },
    /// A bracketed list.
    List(Vec<Spanned<Expr>>),
    /// An integer range `lo..hi`.
    Range(i64, i64),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Spanned<Expr>>,
        /// Right operand.
        rhs: Box<Spanned<Expr>>,
    },
}

impl Expr {
    /// The path segments if the expression is a bare single-segment path.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Path(segments) if segments.len() == 1 => Some(&segments[0]),
            _ => None,
        }
    }
}

/// A `key = value` attribute.
#[derive(Clone, PartialEq, Debug)]
pub struct Attr {
    /// Attribute name.
    pub key: Spanned<String>,
    /// Attribute value.
    pub value: Spanned<Expr>,
}

/// One entry in a block body.
#[derive(Clone, PartialEq, Debug)]
pub enum Item {
    /// A `key = value` attribute.
    Attr(Attr),
    /// A nested block.
    Block(Block),
}

/// A block: keyword, optional quoted labels, and a braced body.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// The leading keyword (`system`, `hardware`, …).
    pub keyword: Spanned<String>,
    /// Quoted labels between the keyword and the brace.
    pub labels: Vec<Spanned<String>>,
    /// Body entries in source order.
    pub body: Vec<Item>,
    /// The whole block, keyword through closing brace.
    pub span: Span,
}

impl Block {
    /// The first label, if present.
    pub fn label(&self) -> Option<&Spanned<String>> {
        self.labels.first()
    }

    /// Iterates the body's attributes.
    pub fn attrs(&self) -> impl Iterator<Item = &Attr> {
        self.body.iter().filter_map(|item| match item {
            Item::Attr(attr) => Some(attr),
            Item::Block(_) => None,
        })
    }

    /// Iterates the body's nested blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.body.iter().filter_map(|item| match item {
            Item::Block(block) => Some(block),
            Item::Attr(_) => None,
        })
    }

    /// Finds an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&Attr> {
        self.attrs().find(|a| a.key.value == key)
    }
}

/// A parsed document: top-level blocks in source order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Document {
    /// The top-level blocks.
    pub blocks: Vec<Block>,
}

/// Parses a block-structured document.
pub fn parse(input: &str) -> Result<Document, TextError> {
    let tokens = lex(input)?;
    Parser { tokens, at: 0 }.document()
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Eq,
    Comma,
    Dot,
    DotDot,
    Plus,
    Minus,
    Star,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(name) => format!("identifier `{name}`"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Int(v) => format!("integer `{v}`"),
            Tok::Float(v) => format!("number `{v}`"),
            Tok::LBrace => "`{`".to_string(),
            Tok::RBrace => "`}`".to_string(),
            Tok::LBracket => "`[`".to_string(),
            Tok::RBracket => "`]`".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Dot => "`.`".to_string(),
            Tok::DotDot => "`..`".to_string(),
            Tok::Plus => "`+`".to_string(),
            Tok::Minus => "`-`".to_string(),
            Tok::Star => "`*`".to_string(),
            Tok::Lt => "`<`".to_string(),
            Tok::Le => "`<=`".to_string(),
            Tok::Gt => "`>`".to_string(),
            Tok::Ge => "`>=`".to_string(),
            Tok::EqEq => "`==`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }
}

fn lex(input: &str) -> Result<Vec<(Tok, Span)>, TextError> {
    let mut lx = Lexer { chars: input.chars().peekable(), pos: Pos { line: 1, col: 1 } };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and `#` comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_whitespace() => {
                    lx.bump();
                }
                Some('#') => {
                    while let Some(c) = lx.peek() {
                        if c == '\n' {
                            break;
                        }
                        lx.bump();
                    }
                }
                _ => break,
            }
        }
        let start = lx.pos;
        let Some(c) = lx.peek() else {
            out.push((Tok::Eof, Span::at(start)));
            return Ok(out);
        };
        let tok = match c {
            '{' => {
                lx.bump();
                Tok::LBrace
            }
            '}' => {
                lx.bump();
                Tok::RBrace
            }
            '[' => {
                lx.bump();
                Tok::LBracket
            }
            ']' => {
                lx.bump();
                Tok::RBracket
            }
            '(' => {
                lx.bump();
                Tok::LParen
            }
            ')' => {
                lx.bump();
                Tok::RParen
            }
            ',' => {
                lx.bump();
                Tok::Comma
            }
            '+' => {
                lx.bump();
                Tok::Plus
            }
            '-' => {
                lx.bump();
                Tok::Minus
            }
            '*' => {
                lx.bump();
                Tok::Star
            }
            '=' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::EqEq
                } else {
                    Tok::Eq
                }
            }
            '<' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '.' => {
                lx.bump();
                if lx.peek() == Some('.') {
                    lx.bump();
                    Tok::DotDot
                } else {
                    Tok::Dot
                }
            }
            '"' => lex_string(&mut lx)?,
            c if c.is_ascii_digit() => lex_number(&mut lx)?,
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(name)
            }
            other => {
                return Err(TextError::new(
                    format!("unexpected character `{other}`"),
                    Span::at(start),
                ))
            }
        };
        let end = lx.pos;
        out.push((tok, Span { start, end }));
    }
}

fn lex_string(lx: &mut Lexer<'_>) -> Result<Tok, TextError> {
    let open = lx.pos;
    lx.bump(); // consume the opening quote
    let mut value = String::new();
    loop {
        let at = lx.pos;
        match lx.bump() {
            None => {
                return Err(TextError::new("unterminated string literal", Span::at(open)));
            }
            Some('"') => return Ok(Tok::Str(value)),
            Some('\n') => {
                return Err(TextError::new(
                    "newline inside string literal (escape it as \\n)",
                    Span::at(at),
                ));
            }
            Some('\\') => match lx.bump() {
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                Some('n') => value.push('\n'),
                Some('t') => value.push('\t'),
                Some('r') => value.push('\r'),
                other => {
                    let shown = other.map_or("end of input".to_string(), |c| format!("`\\{c}`"));
                    return Err(TextError::new(
                        format!("unknown escape {shown} in string literal"),
                        Span::at(at),
                    ));
                }
            },
            Some(c) => value.push(c),
        }
    }
}

fn lex_number(lx: &mut Lexer<'_>) -> Result<Tok, TextError> {
    let start = lx.pos;
    let mut digits = String::new();
    while let Some(c) = lx.peek() {
        if c.is_ascii_digit() {
            digits.push(c);
            lx.bump();
        } else {
            break;
        }
    }
    // `12..15` must lex as Int(12) DotDot Int(15): only treat a `.` as a
    // fraction point when a digit (not another dot) follows.
    let mut is_float = false;
    if lx.peek() == Some('.') {
        let mut ahead = lx.chars.clone();
        ahead.next();
        if ahead.peek().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            digits.push('.');
            lx.bump();
            while let Some(c) = lx.peek() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
        }
    }
    let span = Span { start, end: lx.pos };
    if is_float {
        digits
            .parse::<f64>()
            .map(Tok::Float)
            .map_err(|_| TextError::new(format!("invalid number `{digits}`"), span))
    } else {
        digits
            .parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| TextError::new(format!("integer `{digits}` out of range"), span))
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<(Tok, Span)>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].0
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.at].1
    }

    fn next(&mut self) -> (Tok, Span) {
        let pair = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        pair
    }

    fn error_here(&self, expected: &str) -> TextError {
        TextError::new(
            format!("expected {expected}, found {}", self.peek().describe()),
            self.peek_span(),
        )
    }

    fn expect_ident(&mut self, what: &str) -> Result<Spanned<String>, TextError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.next().1;
                Ok(Spanned::new(name, span))
            }
            _ => Err(self.error_here(what)),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Span, TextError> {
        if *self.peek() == tok {
            Ok(self.next().1)
        } else {
            Err(self.error_here(what))
        }
    }

    fn document(&mut self) -> Result<Document, TextError> {
        let mut blocks = Vec::new();
        while *self.peek() != Tok::Eof {
            blocks.push(self.block()?);
        }
        Ok(Document { blocks })
    }

    fn block(&mut self) -> Result<Block, TextError> {
        let keyword = self.expect_ident("a block keyword")?;
        self.block_tail(keyword)
    }

    /// Parses labels and the braced body after a block keyword.
    fn block_tail(&mut self, keyword: Spanned<String>) -> Result<Block, TextError> {
        let mut labels = Vec::new();
        while let Tok::Str(label) = self.peek().clone() {
            let span = self.next().1;
            labels.push(Spanned::new(label, span));
        }
        self.expect(Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    let close = self.next().1;
                    let span = keyword.span.to(close);
                    return Ok(Block { keyword, labels, body, span });
                }
                Tok::Ident(_) => {
                    let key = self.expect_ident("a key")?;
                    match self.peek() {
                        Tok::Eq => {
                            self.next();
                            let value = self.expr()?;
                            body.push(Item::Attr(Attr { key, value }));
                        }
                        Tok::Str(_) | Tok::LBrace => {
                            body.push(Item::Block(self.block_tail(key)?));
                        }
                        _ => {
                            return Err(self.error_here(
                                "`=` (attribute), a label, or `{` (nested block)",
                            ))
                        }
                    }
                }
                Tok::Eof => {
                    return Err(TextError::new(
                        format!("unclosed block `{}` (missing `}}`)", keyword.value),
                        keyword.span,
                    ));
                }
                _ => return Err(self.error_here("a key or `}`")),
            }
        }
    }

    fn expr(&mut self) -> Result<Spanned<Expr>, TextError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::EqEq,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.sum()?;
        let span = lhs.span.to(rhs.span);
        Ok(Spanned::new(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span))
    }

    fn sum(&mut self) -> Result<Spanned<Expr>, TextError> {
        let mut lhs = self.product()?;
        while *self.peek() == Tok::Plus {
            self.next();
            let rhs = self.product()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                Expr::Binary { op: BinOp::Add, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn product(&mut self) -> Result<Spanned<Expr>, TextError> {
        let mut lhs = self.primary()?;
        while *self.peek() == Tok::Star {
            self.next();
            let rhs = self.primary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Spanned::new(
                Expr::Binary { op: BinOp::Mul, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                span,
            );
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Spanned<Expr>, TextError> {
        match self.peek().clone() {
            Tok::Str(value) => {
                let span = self.next().1;
                Ok(Spanned::new(Expr::Str(value), span))
            }
            Tok::Int(value) => {
                let span = self.next().1;
                // `lo..hi` ranges attach to integer literals.
                if *self.peek() == Tok::DotDot {
                    self.next();
                    match self.peek().clone() {
                        Tok::Int(hi) => {
                            let end = self.next().1;
                            Ok(Spanned::new(Expr::Range(value, hi), span.to(end)))
                        }
                        _ => Err(self.error_here("an integer after `..`")),
                    }
                } else {
                    Ok(Spanned::new(Expr::Int(value), span))
                }
            }
            Tok::Float(value) => {
                let span = self.next().1;
                Ok(Spanned::new(Expr::Float(value), span))
            }
            Tok::Minus => {
                let start = self.next().1;
                match self.peek().clone() {
                    Tok::Int(value) => {
                        let end = self.next().1;
                        Ok(Spanned::new(Expr::Int(-value), start.to(end)))
                    }
                    Tok::Float(value) => {
                        let end = self.next().1;
                        Ok(Spanned::new(Expr::Float(-value), start.to(end)))
                    }
                    _ => Err(self.error_here("a number after `-`")),
                }
            }
            Tok::LBracket => {
                let open = self.next().1;
                let mut items = Vec::new();
                loop {
                    if *self.peek() == Tok::RBracket {
                        let close = self.next().1;
                        return Ok(Spanned::new(Expr::List(items), open.to(close)));
                    }
                    items.push(self.expr()?);
                    match self.peek() {
                        Tok::Comma => {
                            self.next();
                        }
                        Tok::RBracket => {}
                        _ => return Err(self.error_here("`,` or `]`")),
                    }
                }
            }
            Tok::LParen => {
                self.next();
                let inner = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Tok::Ident(first) => {
                let start = self.next().1;
                let mut end = start;
                let mut path = vec![first];
                while *self.peek() == Tok::Dot {
                    self.next();
                    let seg = self.expect_ident("an identifier after `.`")?;
                    end = seg.span;
                    path.push(seg.value);
                }
                if *self.peek() == Tok::LParen {
                    self.next();
                    let mut args = Vec::new();
                    loop {
                        if *self.peek() == Tok::RParen {
                            let close = self.next().1;
                            return Ok(Spanned::new(
                                Expr::Call { path, args },
                                start.to(close),
                            ));
                        }
                        args.push(self.expr()?);
                        match self.peek() {
                            Tok::Comma => {
                                self.next();
                            }
                            Tok::RParen => {}
                            _ => return Err(self.error_here("`,` or `)`")),
                        }
                    }
                } else if path.len() == 1 && (path[0] == "true" || path[0] == "false") {
                    Ok(Spanned::new(Expr::Bool(path[0] == "true"), start))
                } else {
                    Ok(Spanned::new(Expr::Path(path), start.to(end)))
                }
            }
            _ => Err(self.error_here("an expression")),
        }
    }
}

/// True when `name` lexes back as a single bare identifier (so a printer
/// may emit it unquoted).
pub fn is_bare_ident(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_alphabetic() || first == '_')
        && chars.all(|c| c.is_alphanumeric() || c == '_')
        && name != "true"
        && name != "false"
}

/// Escapes a string for use as a quoted literal.
pub fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(text: &str) -> Document {
        parse(text).expect("parses")
    }

    #[test]
    fn empty_document() {
        assert_eq!(parse_ok("").blocks.len(), 0);
        assert_eq!(parse_ok("  # only a comment\n").blocks.len(), 0);
    }

    #[test]
    fn block_with_labels_and_attrs() {
        let doc = parse_ok(
            "system \"SIMON\" {\n  category = monitoring\n  cost_usd = 2500\n}\n",
        );
        assert_eq!(doc.blocks.len(), 1);
        let b = &doc.blocks[0];
        assert_eq!(b.keyword.value, "system");
        assert_eq!(b.label().unwrap().value, "SIMON");
        assert_eq!(b.attr("category").unwrap().value.value, Expr::Path(vec!["monitoring".into()]));
        assert_eq!(b.attr("cost_usd").unwrap().value.value, Expr::Int(2500));
    }

    #[test]
    fn nested_blocks_and_lists() {
        let doc = parse_ok(
            "system \"X\" {\n  solves = [a, b, \"odd name\"]\n  requires \"r\" {\n    condition = true\n  }\n}\n",
        );
        let b = &doc.blocks[0];
        let solves = b.attr("solves").unwrap();
        match &solves.value.value {
            Expr::List(items) => assert_eq!(items.len(), 3),
            other => panic!("expected list, got {other:?}"),
        }
        let nested: Vec<&Block> = b.blocks().collect();
        assert_eq!(nested.len(), 1);
        assert_eq!(nested[0].keyword.value, "requires");
        assert_eq!(nested[0].label().unwrap().value, "r");
    }

    #[test]
    fn expressions_parse_with_precedence() {
        let doc = parse_ok("b { amount = 2 + 0.5 * num_flows }");
        let expr = &doc.blocks[0].attr("amount").unwrap().value.value;
        match expr {
            Expr::Binary { op: BinOp::Add, rhs, .. } => match &rhs.value {
                Expr::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected mul on rhs, got {other:?}"),
            },
            other => panic!("expected add, got {other:?}"),
        }
    }

    #[test]
    fn comparison_and_calls() {
        let doc = parse_ok("o { when = link_speed_gbps >= 40\n cond = all(deployed(A), nics.have(F)) }");
        let when = &doc.blocks[0].attr("when").unwrap().value.value;
        assert!(matches!(when, Expr::Binary { op: BinOp::Ge, .. }));
        let cond = &doc.blocks[0].attr("cond").unwrap().value.value;
        match cond {
            Expr::Call { path, args } => {
                assert_eq!(path, &vec!["all".to_string()]);
                assert_eq!(args.len(), 2);
                assert!(matches!(&args[1].value, Expr::Call { path, .. } if path == &vec!["nics".to_string(), "have".to_string()]));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn ranges_and_negative_numbers() {
        let doc = parse_ok("w { racks = 0..3\n delta = -4\n temp = -1.5 }");
        let b = &doc.blocks[0];
        assert_eq!(b.attr("racks").unwrap().value.value, Expr::Range(0, 3));
        assert_eq!(b.attr("delta").unwrap().value.value, Expr::Int(-4));
        assert_eq!(b.attr("temp").unwrap().value.value, Expr::Float(-1.5));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let doc = parse_ok("b { s = \"a\\\"b\\\\c\\nd\" }");
        assert_eq!(
            doc.blocks[0].attr("s").unwrap().value.value,
            Expr::Str("a\"b\\c\nd".to_string())
        );
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn spans_are_line_and_column_accurate() {
        let err = parse("system \"X\" {\n  category = !\n}").unwrap_err();
        assert_eq!(err.span.start.line, 2);
        assert_eq!(err.span.start.col, 14);
    }

    #[test]
    fn errors_never_panic_on_malformed_input() {
        for text in [
            "system {",
            "system \"X\" { a = }",
            "b { x = 1 .. }",
            "b { x = \"unterminated",
            "b { x = [1, }",
            "}",
            "b { x = 0..a }",
            "b { x = - }",
            "b { x = 99999999999999999999 }",
            "b { \"label first\" { } }",
            "b { k \"l\" = 2 }",
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.span.start.line >= 1, "{text}: {err}");
        }
    }

    #[test]
    fn unclosed_block_reports_the_opening_keyword() {
        let err = parse("system \"X\" {\n  a = 1\n").unwrap_err();
        assert!(err.message.contains("unclosed block"), "{err}");
        assert_eq!(err.span.start.line, 1);
    }

    #[test]
    fn bare_ident_classification() {
        assert!(is_bare_ident("link_speed_gbps"));
        assert!(is_bare_ident("_x9"));
        assert!(!is_bare_ident(""));
        assert!(!is_bare_ident("9lives"));
        assert!(!is_bare_ident("has space"));
        assert!(!is_bare_ident("has-dash"));
        assert!(!is_bare_ident("true"));
    }

    #[test]
    fn eof_is_sticky() {
        // Repeated peeks past the end must not index out of bounds.
        let err = parse("b { x = ").unwrap_err();
        assert!(err.message.contains("expected"), "{err}");
    }
}
