//! Minimal property-based testing harness.
//!
//! A property is a generator `Fn(&mut Rng) -> T` plus a predicate
//! `Fn(&T) -> Result<(), String>`. [`check`] runs the predicate over a
//! budget of generated cases; on failure it shrinks the input (via the
//! [`Shrink`] trait) and panics with the minimal counterexample and the
//! exact case seed needed to replay it.
//!
//! Determinism: every run uses a fixed default master seed
//! ([`DEFAULT_SEED`]), and each case derives its own seed purely from
//! `(master, case_index)`, so failures are reproducible by rerunning
//! the same test binary. Environment overrides:
//!
//! * `NETARCH_PROP_SEED` — master seed (decimal or `0x` hex)
//! * `NETARCH_PROP_CASES` — case budget (overrides [`Config::cases`])
//! * `NETARCH_PROP_CASE_SEED` — replay exactly one case with this seed
//!
//! Inside predicates use [`prop_assert!`](crate::prop_assert) /
//! [`prop_assert_eq!`](crate::prop_assert_eq), which return `Err`
//! instead of panicking so shrinking can re-run the predicate. Panics
//! inside a predicate (an `assert!`, an `unwrap`, an index out of
//! bounds) are caught and treated as ordinary failures, so they still
//! shrink and still report the replay seed.

use crate::rng::{splitmix64, Rng};
use std::fmt::Debug;

/// Master seed used when `NETARCH_PROP_SEED` is unset. Arbitrary but
/// fixed: CI runs are reproducible by default.
pub const DEFAULT_SEED: u64 = 0x6E65_7461_7263_6831; // "netarch1"

/// Budget and seeding knobs for a [`check`] run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases to run.
    pub cases: u32,
    /// Master seed; per-case seeds derive from it.
    pub seed: u64,
    /// Upper bound on shrinking steps (accepted candidates).
    pub max_shrink_steps: u32,
}

impl Config {
    /// `cases` cases with the deterministic default seed and any
    /// environment overrides applied.
    pub fn with_cases(cases: u32) -> Self {
        let mut cfg = Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_steps: 2_000,
        };
        if let Some(s) = env_u64("NETARCH_PROP_SEED") {
            cfg.seed = s;
        }
        if let Some(c) = env_u64("NETARCH_PROP_CASES") {
            cfg.cases = c as u32;
        }
        cfg
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::with_cases(64)
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw}: expected a u64"),
    }
}

/// Pure per-case seed derivation: mixing the master seed with the case
/// index through SplitMix64 keeps cases statistically independent.
fn case_seed(master: u64, case: u32) -> u64 {
    let mut s = master ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// Runs `test` over `config.cases` inputs drawn from `gen`.
///
/// # Panics
/// Panics with the shrunk counterexample, the error message, and the
/// replay seed if any case fails.
pub fn check<T, G, F>(config: &Config, gen: G, test: F)
where
    T: Clone + Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    F: Fn(&T) -> Result<(), String>,
{
    if let Some(seed) = env_u64("NETARCH_PROP_CASE_SEED") {
        run_one(seed, 0, config, &gen, &test);
        return;
    }
    for case in 0..config.cases {
        run_one(case_seed(config.seed, case), case, config, &gen, &test);
    }
}

thread_local! {
    /// True while this thread is running a predicate under `catch_unwind`.
    /// The hook installed by [`install_silencing_hook`] checks it so the
    /// caught panics (initial failure plus every shrink re-run — easily
    /// hundreds) don't each dump a message and backtrace to stderr.
    static SILENCE_CAUGHT_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs, once per process, a panic hook that defers to the previously
/// installed hook except on threads currently inside [`run_test`]'s
/// `catch_unwind`. Thread-local gating keeps this safe under cargo's
/// parallel test threads: panics on other threads still report normally,
/// and the harness's own failure `panic!` (raised after the flag is
/// cleared) does too.
fn install_silencing_hook() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_CAUGHT_PANICS.with(|flag| flag.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs the predicate, converting a panic into an `Err` so panicking
/// predicates flow through the same shrink-and-report path as `Err`
/// returns — the replay seed is printed either way.
fn run_test<T, F>(test: &F, input: &T) -> Result<(), String>
where
    F: Fn(&T) -> Result<(), String>,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    install_silencing_hook();
    let outer = SILENCE_CAUGHT_PANICS.with(|flag| flag.replace(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| test(input)));
    SILENCE_CAUGHT_PANICS.with(|flag| flag.set(outer));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(format!("predicate panicked: {msg}"))
        }
    }
}

fn run_one<T, G, F>(seed: u64, case: u32, config: &Config, gen: &G, test: &F)
where
    T: Clone + Debug + Shrink,
    G: Fn(&mut Rng) -> T,
    F: Fn(&T) -> Result<(), String>,
{
    let mut rng = Rng::seed_from_u64(seed);
    let input = gen(&mut rng);
    if let Err(msg) = run_test(test, &input) {
        let (minimal, minimal_msg, steps) =
            shrink_failure(input, msg, test, config.max_shrink_steps);
        panic!(
            "property failed (case {case} of {}, replay with \
             NETARCH_PROP_CASE_SEED={seed:#x})\n\
             minimal input (after {steps} shrink steps): {minimal:#?}\n\
             error: {minimal_msg}",
            config.cases,
        );
    }
}

/// Greedy shrink loop: repeatedly replace the failing input with its
/// first still-failing shrink candidate until none fails or the step
/// budget runs out.
fn shrink_failure<T, F>(
    mut current: T,
    mut msg: String,
    test: &F,
    max_steps: u32,
) -> (T, String, u32)
where
    T: Clone + Debug + Shrink,
    F: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in current.shrink() {
            if let Err(e) = run_test(test, &candidate) {
                current = candidate;
                msg = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, msg, steps)
}

/// Produces "smaller" variants of a failing input for shrinking.
///
/// An empty candidate list (the default) means the value is already
/// minimal. Candidates should be strictly simpler to guarantee the
/// greedy loop terminates.
pub trait Shrink: Sized {
    /// Smaller candidate values, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let x = *self;
                let mut out = Vec::new();
                if x == 0 {
                    return out;
                }
                out.push(0);
                if x / 2 != 0 {
                    out.push(x / 2);
                }
                out.push(x - 1);
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let x = *self;
                if x == 0 {
                    return Vec::new();
                }
                if x == <$t>::MIN {
                    return vec![0, x / 2, x + 1];
                }
                let mut out = vec![0];
                if x < 0 {
                    out.push(-x);
                }
                out.push(x / 2);
                out.push(x - x.signum());
                // Sign-flips count as progress (at most one can occur),
                // everything else must strictly reduce magnitude.
                out.retain(|&c| c.abs() < x.abs() || (x < 0 && c > 0));
                out.dedup();
                out
            }
        }
    )*};
}
impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let x = *self;
        if x == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0];
        if x.abs() >= 1.0 {
            out.push(x / 2.0);
            out.push(x.trunc());
        }
        out.retain(|&c| c != x);
        out.dedup();
        out
    }
}

impl Shrink for char {}
impl Shrink for String {}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structural shrinks first: drop halves, then single elements.
        if n > 1 {
            out.push(self[n / 2..].to_vec());
            out.push(self[..n / 2].to_vec());
        }
        for i in 0..n.min(32) {
            let mut shorter = self.clone();
            shorter.remove(i);
            out.push(shorter);
        }
        // Then element-wise shrinks (bounded to keep candidate lists small).
        for i in 0..n.min(16) {
            for candidate in self[i].shrink().into_iter().take(3) {
                let mut next = self.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

impl<T: Shrink + Clone, const N: usize> Shrink for [T; N] {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for i in 0..N {
            for candidate in self[i].shrink().into_iter().take(3) {
                let mut next = self.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A, B, C> Shrink for (A, B, C)
where
    A: Shrink + Clone,
    B: Shrink + Clone,
    C: Shrink + Clone,
{
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

impl<T: Shrink> Shrink for Box<T> {
    fn shrink(&self) -> Vec<Self> {
        (**self).shrink().into_iter().map(Box::new).collect()
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

/// Generates a vector whose length is drawn from `len`, with elements
/// from `item`.
pub fn gen_vec<T>(
    rng: &mut Rng,
    len: std::ops::RangeInclusive<usize>,
    mut item: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| item(rng)).collect()
}

/// Derives [`Shrink`] for a struct by shrinking one field at a time.
#[macro_export]
macro_rules! impl_shrink_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::prop::Shrink for $ty {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for candidate in
                        $crate::prop::Shrink::shrink(&self.$field).into_iter().take(4)
                    {
                        let mut next = self.clone();
                        next.$field = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

/// Fails the enclosing property (returns `Err`) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property if the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut cfg = Config::with_cases(50);
        cfg.seed = 1;
        check(
            &cfg,
            |rng| rng.gen_range(0..100u32),
            |&x| {
                if x < 100 {
                    Ok(())
                } else {
                    Err("out of range".into())
                }
            },
        );
    }

    #[test]
    fn failing_property_panics_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            let mut cfg = Config::with_cases(200);
            cfg.seed = 7;
            check(
                &cfg,
                |rng| rng.gen_range(0..1000u32),
                |&x| {
                    if x < 17 {
                        Ok(())
                    } else {
                        Err(format!("{x} too big"))
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("NETARCH_PROP_CASE_SEED="), "msg: {msg}");
        // The greedy shrinker must land on the boundary value.
        assert!(msg.contains("minimal input"), "msg: {msg}");
        assert!(msg.contains("17"), "should shrink to 17, msg: {msg}");
    }

    #[test]
    fn panicking_predicate_still_reports_the_replay_seed() {
        let result = std::panic::catch_unwind(|| {
            let mut cfg = Config::with_cases(50);
            cfg.seed = 11;
            check(
                &cfg,
                |rng| rng.gen_range(0..100u32),
                |&x| {
                    // A raw assert! (not prop_assert!): panics on failure.
                    assert!(x < 20, "x={x} escaped the range");
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("NETARCH_PROP_CASE_SEED="), "msg: {msg}");
        assert!(msg.contains("predicate panicked"), "msg: {msg}");
        // Shrinking re-runs the (still panicking) predicate; the greedy
        // loop must land on the boundary value.
        assert!(msg.contains("20"), "should shrink to 20, msg: {msg}");
    }

    #[test]
    fn vec_shrink_reaches_minimal_witness() {
        let result = std::panic::catch_unwind(|| {
            let mut cfg = Config::with_cases(100);
            cfg.seed = 3;
            check(
                &cfg,
                |rng| gen_vec(rng, 0..=20, |r| r.gen_range(0..50u32)),
                |v: &Vec<u32>| {
                    if v.iter().all(|&x| x < 40) {
                        Ok(())
                    } else {
                        Err("contains big element".into())
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Minimal counterexample is a single element equal to 40.
        assert!(msg.contains("40"), "msg: {msg}");
    }

    #[test]
    fn int_shrink_candidates_are_smaller() {
        assert_eq!(17u32.shrink(), vec![0, 8, 16]);
        assert!(0u32.shrink().is_empty());
        assert!((-5i32).shrink().contains(&5));
    }

    #[test]
    fn deterministic_case_seeds() {
        assert_eq!(case_seed(1, 0), case_seed(1, 0));
        assert_ne!(case_seed(1, 0), case_seed(1, 1));
        assert_ne!(case_seed(1, 0), case_seed(2, 0));
    }
}
