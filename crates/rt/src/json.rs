//! JSON value type, parser, serializer, and conversion traits.
//!
//! The encoding conventions deliberately match what the workspace's
//! previous serde-derived impls produced, so corpora and result files
//! written before the migration still parse:
//!
//! * structs → objects with one key per field;
//! * transparent string ids → plain strings;
//! * unit enum variants → `"Variant"`;
//! * newtype variants → `{"Variant": value}`;
//! * tuple variants → `{"Variant": [a, b, ...]}`;
//! * struct variants → `{"Variant": {"field": ...}}`;
//! * `Option` → `null` or the value (absent fields read as `None`);
//! * `Range<T>` → `{"start": a, "end": b}`;
//! * maps → objects keyed through [`JsonKey`].
//!
//! Use [`impl_json_struct!`](crate::impl_json_struct) /
//! [`impl_json_enum!`](crate::impl_json_enum) to derive the
//! [`ToJson`]/[`FromJson`] pair declaratively.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Index, Range};

/// Maximum nesting depth the parser accepts before bailing out.
pub const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (maps serialize in key order via
/// `BTreeMap`, so output is still deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integral values print without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

static NULL: Json = Json::Null;

impl Json {
    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Json::Arr(_))
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Json::Str(_))
    }

    /// True for numbers representable as a `u64`.
    pub fn is_u64(&self) -> bool {
        self.as_u64().is_some()
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl Index<&str> for Json {
    type Output = Json;

    /// Object field access; missing keys and non-objects yield `Null`,
    /// so lookups chain like `value["design"]["hardware"]["Server"]`.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Inf; degrade to null like lenient emitters do.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        // Exactly-integral values within f64's exact-integer window
        // print without a decimal point, matching the old output.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error raised by parsing or [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Builds an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        JsonError(m.to_string())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number chars are ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reads `Self` out of a JSON value.
    fn from_json(j: &Json) -> Result<Self, JsonError>;
}

/// Serializes any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Serializes any [`ToJson`] value with indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump_pretty()
}

/// Converts any [`ToJson`] value into a [`Json`] tree.
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Json {
    value.to_json()
}

/// Parses a document and converts it into `T`.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&parse(input)?)
}

/// Reads a struct field out of an object, treating a missing key as
/// `null` so `Option` fields tolerate absence.
pub fn field<T: FromJson>(j: &Json, name: &str) -> Result<T, JsonError> {
    match j {
        Json::Obj(_) => match j.get(name) {
            Some(v) => T::from_json(v)
                .map_err(|e| JsonError(format!("field `{name}`: {e}"))),
            None => T::from_json(&Json::Null)
                .map_err(|_| JsonError(format!("missing field `{name}`"))),
        },
        other => Err(JsonError(format!(
            "expected object with field `{name}`, got {other}"
        ))),
    }
}

/// Keys usable in JSON-object-encoded maps.
///
/// JSON object keys must be strings, so map key types round-trip
/// through this trait rather than [`ToJson`].
pub trait JsonKey: Sized {
    /// Encodes the key as a string.
    fn to_key(&self) -> String;
    /// Decodes the key from a string.
    fn from_key(key: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        Ok(key.to_string())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(j.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_bool()
            .ok_or_else(|| JsonError(format!("expected bool, got {j}")))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(j: &Json) -> Result<Self, JsonError> {
                let n = j
                    .as_f64()
                    .ok_or_else(|| JsonError(format!("expected number, got {j}")))?;
                if n.fract() != 0.0 {
                    return Err(JsonError(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_f64()
            .ok_or_else(|| JsonError(format!("expected number, got {j}")))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(*self as f64)
    }
}

impl FromJson for f32 {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(j)? as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError(format!("expected string, got {j}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Box::new(T::from_json(j)?))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_array()
            .ok_or_else(|| JsonError(format!("expected array, got {j}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + Ord> ToJson for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + Ord> FromJson for BTreeSet<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_array()
            .ok_or_else(|| JsonError(format!("expected array, got {j}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<K: JsonKey + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        j.as_object()
            .ok_or_else(|| JsonError(format!("expected object, got {j}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
            .collect()
    }
}

impl<T: ToJson> ToJson for Range<T> {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("start".to_string(), self.start.to_json()),
            ("end".to_string(), self.end.to_json()),
        ])
    }
}

impl<T: FromJson> FromJson for Range<T> {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(field::<T>(j, "start")?..field::<T>(j, "end")?)
    }
}

// ---------------------------------------------------------------------------
// Derive macros
// ---------------------------------------------------------------------------

/// Derives [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// ```
/// use netarch_rt::impl_json_struct;
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Point { x: i64, y: i64 }
/// impl_json_struct!(Point { x, y });
///
/// let p = Point { x: 1, y: -2 };
/// let text = netarch_rt::json::to_string(&p);
/// assert_eq!(text, r#"{"x":1,"y":-2}"#);
/// assert_eq!(netarch_rt::json::from_str::<Point>(&text).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                j: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                $(let $field = $crate::json::field(j, stringify!($field))?;)+
                Ok(Self { $($field),+ })
            }
        }
    };
}

/// Derives [`ToJson`]/[`FromJson`] for an enum using serde-style
/// external tagging. Each variant is declared with a shape keyword:
///
/// * `unit Name` → `"Name"`
/// * `one Name(T)` → `{"Name": value}`
/// * `tuple Name(A, B)` / `tuple Name(A, B, C)` → `{"Name": [a, b, ...]}`
/// * `record Name { f: T, ... }` → `{"Name": {"f": ...}}`
///
/// ```
/// use netarch_rt::impl_json_enum;
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum Shape {
///     Empty,
///     Circle(f64),
///     Rect { w: f64, h: f64 },
/// }
/// impl_json_enum!(Shape {
///     unit Empty,
///     one Circle(f64),
///     record Rect { w: f64, h: f64 },
/// });
///
/// assert_eq!(netarch_rt::json::to_string(&Shape::Empty), r#""Empty""#);
/// assert_eq!(netarch_rt::json::to_string(&Shape::Circle(2.5)), r#"{"Circle":2.5}"#);
/// let r: Shape = netarch_rt::json::from_str(r#"{"Rect":{"w":3,"h":4}}"#).unwrap();
/// assert_eq!(r, Shape::Rect { w: 3.0, h: 4.0 });
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($body:tt)+ }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::__json_enum_to_all!(self, $ty, $($body)+);
                unreachable!("impl_json_enum: variant list must be exhaustive")
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                j: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                if let $crate::json::Json::Str(tag) = j {
                    $crate::__json_enum_from_str_all!(tag, $ty, $($body)+);
                    return Err($crate::json::JsonError(format!(
                        "unknown {} variant `{tag}`",
                        stringify!($ty)
                    )));
                }
                if let $crate::json::Json::Obj(pairs) = j {
                    if pairs.len() == 1 {
                        let (tag, val) = &pairs[0];
                        $crate::__json_enum_from_tagged_all!(tag, val, $ty, $($body)+);
                        return Err($crate::json::JsonError(format!(
                            "unknown {} variant `{tag}`",
                            stringify!($ty)
                        )));
                    }
                }
                Err($crate::json::JsonError(format!(
                    "expected {} variant, got {j}",
                    stringify!($ty)
                )))
            }
        }
    };
}

/// Internal: walks the variant list emitting serialization statements.
/// (A token-muncher: an optional payload capture next to the `,`
/// separator would be ambiguous in a plain repetition.)
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_to_all {
    ($self:expr, $ty:ident $(,)?) => {};
    ($self:expr, $ty:ident, unit $variant:ident $(, $($rest:tt)*)?) => {
        $crate::__json_enum_to!($self, $ty, unit $variant);
        $crate::__json_enum_to_all!($self, $ty $(, $($rest)*)?);
    };
    ($self:expr, $ty:ident, $shape:ident $variant:ident $payload:tt $(, $($rest:tt)*)?) => {
        $crate::__json_enum_to!($self, $ty, $shape $variant $payload);
        $crate::__json_enum_to_all!($self, $ty $(, $($rest)*)?);
    };
}

/// Internal: walks the variant list emitting string-tag matchers.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_from_str_all {
    ($tag:expr, $ty:ident $(,)?) => {};
    ($tag:expr, $ty:ident, unit $variant:ident $(, $($rest:tt)*)?) => {
        $crate::__json_enum_from_str!($tag, $ty, unit $variant);
        $crate::__json_enum_from_str_all!($tag, $ty $(, $($rest)*)?);
    };
    ($tag:expr, $ty:ident, $shape:ident $variant:ident $payload:tt $(, $($rest:tt)*)?) => {
        $crate::__json_enum_from_str_all!($tag, $ty $(, $($rest)*)?);
    };
}

/// Internal: walks the variant list emitting tagged-object matchers.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_from_tagged_all {
    ($tag:expr, $val:expr, $ty:ident $(,)?) => {};
    ($tag:expr, $val:expr, $ty:ident, unit $variant:ident $(, $($rest:tt)*)?) => {
        $crate::__json_enum_from_tagged_all!($tag, $val, $ty $(, $($rest)*)?);
    };
    ($tag:expr, $val:expr, $ty:ident, $shape:ident $variant:ident $payload:tt $(, $($rest:tt)*)?) => {
        $crate::__json_enum_from_tagged!($tag, $val, $ty, $shape $variant $payload);
        $crate::__json_enum_from_tagged_all!($tag, $val, $ty $(, $($rest)*)?);
    };
}

/// Internal: per-variant serialization statement for [`impl_json_enum!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_to {
    ($self:expr, $ty:ident, unit $variant:ident) => {
        if let $ty::$variant = $self {
            return $crate::json::Json::Str(stringify!($variant).to_string());
        }
    };
    ($self:expr, $ty:ident, one $variant:ident ($t:ty)) => {
        if let $ty::$variant(x) = $self {
            return $crate::json::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::ToJson::to_json(x),
            )]);
        }
    };
    ($self:expr, $ty:ident, tuple $variant:ident ($t0:ty, $t1:ty)) => {
        if let $ty::$variant(a, b) = $self {
            return $crate::json::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::Json::Arr(vec![
                    $crate::json::ToJson::to_json(a),
                    $crate::json::ToJson::to_json(b),
                ]),
            )]);
        }
    };
    ($self:expr, $ty:ident, tuple $variant:ident ($t0:ty, $t1:ty, $t2:ty)) => {
        if let $ty::$variant(a, b, c) = $self {
            return $crate::json::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::Json::Arr(vec![
                    $crate::json::ToJson::to_json(a),
                    $crate::json::ToJson::to_json(b),
                    $crate::json::ToJson::to_json(c),
                ]),
            )]);
        }
    };
    ($self:expr, $ty:ident, record $variant:ident { $($fname:ident : $fty:ty),+ $(,)? }) => {
        if let $ty::$variant { $($fname),+ } = $self {
            return $crate::json::Json::Obj(vec![(
                stringify!($variant).to_string(),
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($fname).to_string(),
                        $crate::json::ToJson::to_json($fname),
                    ),)+
                ]),
            )]);
        }
    };
}

/// Internal: string-tag deserialization statement (unit variants only).
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_from_str {
    ($tag:expr, $ty:ident, unit $variant:ident) => {
        if $tag == stringify!($variant) {
            return Ok($ty::$variant);
        }
    };
    ($tag:expr, $ty:ident, $shape:ident $variant:ident $payload:tt) => {};
}

/// Internal: tagged-object deserialization statement for payload variants.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_from_tagged {
    ($tag:expr, $val:expr, $ty:ident, unit $variant:ident) => {};
    ($tag:expr, $val:expr, $ty:ident, one $variant:ident ($t:ty)) => {
        if $tag == stringify!($variant) {
            return Ok($ty::$variant(<$t as $crate::json::FromJson>::from_json(
                $val,
            )?));
        }
    };
    ($tag:expr, $val:expr, $ty:ident, tuple $variant:ident ($t0:ty, $t1:ty)) => {
        if $tag == stringify!($variant) {
            if let Some([a, b]) = $val.as_array().and_then(|s| <&[_; 2]>::try_from(s).ok()) {
                return Ok($ty::$variant(
                    <$t0 as $crate::json::FromJson>::from_json(a)?,
                    <$t1 as $crate::json::FromJson>::from_json(b)?,
                ));
            }
            return Err($crate::json::JsonError(format!(
                "variant {} expects a 2-element array",
                stringify!($variant)
            )));
        }
    };
    ($tag:expr, $val:expr, $ty:ident, tuple $variant:ident ($t0:ty, $t1:ty, $t2:ty)) => {
        if $tag == stringify!($variant) {
            if let Some([a, b, c]) = $val.as_array().and_then(|s| <&[_; 3]>::try_from(s).ok()) {
                return Ok($ty::$variant(
                    <$t0 as $crate::json::FromJson>::from_json(a)?,
                    <$t1 as $crate::json::FromJson>::from_json(b)?,
                    <$t2 as $crate::json::FromJson>::from_json(c)?,
                ));
            }
            return Err($crate::json::JsonError(format!(
                "variant {} expects a 3-element array",
                stringify!($variant)
            )));
        }
    };
    ($tag:expr, $val:expr, $ty:ident, record $variant:ident { $($fname:ident : $fty:ty),+ $(,)? }) => {
        if $tag == stringify!($variant) {
            $(let $fname = $crate::json::field::<$fty>($val, stringify!($fname))?;)+
            return Ok($ty::$variant { $($fname),+ });
        }
    };
}

/// Builds a [`Json`] object literal from `"key": value` pairs, where
/// each value is anything implementing [`ToJson`].
///
/// ```
/// let j = netarch_rt::jobj! { "n": 3u32, "name": "simon" };
/// assert_eq!(j.dump(), r#"{"n":3,"name":"simon"}"#);
/// ```
#[macro_export]
macro_rules! jobj {
    { $($key:literal : $value:expr),* $(,)? } => {
        $crate::json::Json::Obj(vec![
            $(($key.to_string(), $crate::json::ToJson::to_json(&$value)),)*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-0").unwrap(), Json::Num(-0.0));
        assert_eq!(parse("1e9").unwrap(), Json::Num(1e9));
        assert_eq!(parse("-2.5e-3").unwrap(), Json::Num(-0.0025));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "", "nul", "tru", "01", "1.", ".5", "1e", "+1", "[1,]", "[1 2]",
            "{\"a\":}", "{\"a\" 1}", "{a:1}", "\"\\x\"", "\"unterminated",
            "1 2", "[1]]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":"x"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.dump(), text);
        assert_eq!(parse(&v.dump_pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "tab\tnewline\nquote\"backslash\\bell\u{7}unicode\u{1F600}é";
        let j = Json::Str(s.to_string());
        assert_eq!(parse(&j.dump()).unwrap(), j);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn index_chains() {
        let v = parse(r#"{"a":{"b":[10,20]}}"#).unwrap();
        assert_eq!(v["a"]["b"][1].as_u64(), Some(20));
        assert!(v["missing"]["also"].is_null());
    }

    #[test]
    fn integral_floats_print_without_point() {
        assert_eq!(Json::Num(3.0).dump(), "3");
        assert_eq!(Json::Num(-7.0).dump(), "-7");
        assert_eq!(Json::Num(2.5).dump(), "2.5");
        assert_eq!(Json::Num(1e9).dump(), "1000000000");
    }

    #[test]
    fn option_and_missing_fields() {
        #[derive(Debug, Clone, PartialEq)]
        struct S {
            a: u32,
            b: Option<String>,
        }
        impl_json_struct!(S { a, b });
        let s: S = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!(s, S { a: 1, b: None });
        let s: S = from_str(r#"{"a":1,"b":"x"}"#).unwrap();
        assert_eq!(s.b.as_deref(), Some("x"));
        assert!(from_str::<S>(r#"{"b":"x"}"#).is_err(), "missing `a`");
    }

    #[test]
    fn enum_shapes_roundtrip() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            U,
            One(u32),
            Two(u32, bool),
            Three(String, u32, f64),
            Rec { x: u32, y: Option<u32> },
        }
        impl_json_enum!(E {
            unit U,
            one One(u32),
            tuple Two(u32, bool),
            tuple Three(String, u32, f64),
            record Rec { x: u32, y: Option<u32> },
        });
        let cases = vec![
            (E::U, r#""U""#),
            (E::One(5), r#"{"One":5}"#),
            (E::Two(1, true), r#"{"Two":[1,true]}"#),
            (E::Three("s".into(), 2, 0.5), r#"{"Three":["s",2,0.5]}"#),
            (
                E::Rec { x: 9, y: None },
                r#"{"Rec":{"x":9,"y":null}}"#,
            ),
        ];
        for (value, expect) in cases {
            assert_eq!(to_string(&value), expect);
            assert_eq!(from_str::<E>(expect).unwrap(), value);
        }
        assert!(from_str::<E>(r#""Nope""#).is_err());
        assert!(from_str::<E>(r#"{"One":"x"}"#).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let m: BTreeMap<String, Vec<u32>> =
            [("a".to_string(), vec![1, 2]), ("b".to_string(), vec![])]
                .into_iter()
                .collect();
        let text = to_string(&m);
        assert_eq!(text, r#"{"a":[1,2],"b":[]}"#);
        assert_eq!(from_str::<BTreeMap<String, Vec<u32>>>(&text).unwrap(), m);

        let r = 3u32..44u32;
        let text = to_string(&r);
        assert_eq!(text, r#"{"start":3,"end":44}"#);
        assert_eq!(from_str::<Range<u32>>(&text).unwrap(), r);

        let s: BTreeSet<String> = ["b".to_string(), "a".to_string()].into();
        assert_eq!(to_string(&s), r#"["a","b"]"#);
    }

    #[test]
    fn jobj_macro() {
        let j = jobj! { "k": 1u64, "nested": jobj! { "v": "s" } };
        assert_eq!(j.dump(), r#"{"k":1,"nested":{"v":"s"}}"#);
    }
}
