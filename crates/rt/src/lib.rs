//! `netarch-rt` — the zero-dependency runtime layer of the `netarch`
//! workspace.
//!
//! Every capability the workspace previously pulled from crates.io is
//! implemented here against the standard library alone:
//!
//! * [`rng`] — a seedable SplitMix64 / Xoshiro256++ PRNG with the
//!   `gen_range` / `gen_bool` / `shuffle` / `choose` surface the rest of
//!   the workspace uses for randomized tests and simulated extraction.
//! * [`json`] — a [`json::Json`] value type with a recursive-descent
//!   parser, a serializer (compact and pretty), and the
//!   [`json::ToJson`] / [`json::FromJson`] trait pair plus declarative
//!   macros for deriving both on structs and enums.
//! * [`prop`] — a minimal property-testing harness: seeded case
//!   generation, an iteration budget, failure-seed reporting, and basic
//!   shrinking for integers and vectors.
//! * [`bench`] — a warmup+measure timing harness reporting min, median,
//!   and p95 per benchmark.
//! * [`text`] — a lexer with line/column spans and a recursive-descent
//!   parser for HCL-ish block syntax (the `.narch` scenario frontend's
//!   syntax layer; semantics live in `netarch-dsl`).
//!
//! The crate is intentionally dependency-free (including
//! dev-dependencies) so the whole workspace builds and tests offline;
//! see DESIGN.md ("The `netarch-rt` layer").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;
pub mod text;

pub use json::{FromJson, Json, ToJson};
pub use rng::Rng;
