//! Seedable pseudo-random number generation.
//!
//! The generator is Xoshiro256++ seeded through SplitMix64, the
//! combination recommended by the xoshiro authors: SplitMix64 expands a
//! single `u64` seed into a well-mixed 256-bit state, and Xoshiro256++
//! provides fast, high-quality output from that state. The API surface
//! mirrors the subset of `rand` the workspace used (`seed_from_u64`,
//! `gen_bool`, `gen_range`, `shuffle`, `choose`) so call sites only had
//! to swap imports during the migration.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream, across platforms, which the extraction studies and the
//! property harness ([`crate::prop`]) both rely on.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used both for seed expansion and as a tiny standalone generator for
/// hashing-style mixing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable Xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next raw 64-bit output (Xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next raw 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 bits of uniform mantissa, same construction rand uses.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform value from `range` (half-open or inclusive
    /// integer ranges; see [`SampleRange`]).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` without modulo bias (Lemire-style
    /// widening-multiply with rejection).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone below `threshold` keeps the multiply unbiased.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a uniformly chosen element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.bounded_u64(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }
}

/// Integer ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=5u32);
            assert!((2..=5).contains(&y));
            let z = rng.gen_range(-10..10i64);
            assert!((-10..10).contains(&z));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = Rng::seed_from_u64(123);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(5);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = Rng::seed_from_u64(13);
        let items = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[*rng.choose(&items).unwrap() - 1] += 1;
        }
        for c in counts {
            assert!(c > 1_500, "counts={counts:?}");
        }
        assert!(rng.choose::<u32>(&[]).is_none());
    }

    #[test]
    fn uniformity_chi_square_u64_low_bits() {
        // 16 buckets over 64k draws: each expected 4096; a crude bound
        // on the chi-square statistic catches gross bias.
        let mut rng = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut counts = [0f64; 16];
        for _ in 0..65_536 {
            counts[(rng.next_u64() & 0xF) as usize] += 1.0;
        }
        let expected = 4096.0;
        let chi2: f64 = counts.iter().map(|c| (c - expected).powi(2) / expected).sum();
        // 15 dof; p=0.001 critical value is ~37.7.
        assert!(chi2 < 37.7, "chi2={chi2}");
    }
}
