//! Warmup+measure benchmarking harness.
//!
//! A deliberate subset of criterion's model: each benchmark is warmed
//! up, then timed over a fixed number of samples, where every sample
//! runs enough iterations to be meaningfully longer than timer
//! granularity. The report line shows per-iteration min / median / p95.
//!
//! Defaults match the workspace's old criterion config (12 samples,
//! ~2 s measurement, 500 ms warmup) and can be tuned via environment:
//!
//! * `NETARCH_BENCH_SAMPLES` — samples per benchmark
//! * `NETARCH_BENCH_MEAS_MS` — total measurement budget per benchmark
//! * `NETARCH_BENCH_WARMUP_MS` — warmup budget per benchmark
//!
//! Bench binaries keep `harness = false` and drive a [`Harness`] from
//! `fn main()`:
//!
//! ```no_run
//! use netarch_rt::bench::{black_box, Harness};
//!
//! let mut h = Harness::new("example");
//! h.bench("sum/1k", || black_box((0..1000u64).sum::<u64>()));
//! h.finish();
//! ```

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// A set of benchmarks reported under one heading.
pub struct Harness {
    name: String,
    samples: usize,
    measurement: Duration,
    warmup: Duration,
    ran: usize,
}

impl Harness {
    /// Creates a harness with defaults and environment overrides.
    pub fn new(name: &str) -> Self {
        let samples = env_usize("NETARCH_BENCH_SAMPLES").unwrap_or(12).max(2);
        let meas_ms = env_usize("NETARCH_BENCH_MEAS_MS").unwrap_or(2_000);
        let warm_ms = env_usize("NETARCH_BENCH_WARMUP_MS").unwrap_or(500);
        println!("benchmark suite: {name}");
        Harness {
            name: name.to_string(),
            samples,
            measurement: Duration::from_millis(meas_ms as u64),
            warmup: Duration::from_millis(warm_ms as u64),
            ran: 0,
        }
    }

    /// Runs and reports one benchmark. The closure is one iteration;
    /// wrap inputs/outputs in [`black_box`] to defeat hoisting.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        // Warmup: run for the warmup budget, counting iterations to
        // estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so the whole measurement fits the budget.
        let sample_budget = self.measurement.as_secs_f64() / self.samples as f64;
        let iters = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));

        let min = per_iter_ns[0];
        let median = percentile(&per_iter_ns, 50.0);
        let p95 = percentile(&per_iter_ns, 95.0);
        println!(
            "  {label:<44} median {:>10}  p95 {:>10}  min {:>10}  ({} samples x {iters} iters)",
            fmt_ns(median),
            fmt_ns(p95),
            fmt_ns(min),
            self.samples,
        );
        self.ran += 1;
    }

    /// Prints the closing line. Call once after all benchmarks.
    pub fn finish(&self) {
        println!("{}: {} benchmarks done", self.name, self.ran);
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 4.0);
        assert_eq!(percentile(&data, 50.0), 2.5);
    }

    #[test]
    fn formats_time_units() {
        assert_eq!(fmt_ns(12.34), "12.3ns");
        assert_eq!(fmt_ns(12_340.0), "12.34us");
        assert_eq!(fmt_ns(12_340_000.0), "12.34ms");
        assert_eq!(fmt_ns(1.5e9), "1.500s");
    }

    #[test]
    fn harness_runs_quickly_with_tiny_budget() {
        // Direct construction avoids env races with other tests.
        let mut h = Harness {
            name: "selftest".into(),
            samples: 3,
            measurement: Duration::from_millis(6),
            warmup: Duration::from_millis(2),
            ran: 0,
        };
        let mut acc = 0u64;
        h.bench("noop", || {
            acc = acc.wrapping_add(1);
            acc
        });
        h.finish();
        assert_eq!(h.ran, 1);
    }
}
