//! Property and edge-case tests for the JSON module: serialize→parse
//! round-trips over random documents, and the parser's handling of the
//! grammar's corners (escapes, unicode, depth, signed zero, exponents).

use netarch_rt::json::{self, Json};
use netarch_rt::prop::{self, gen_vec, Config, Shrink};
use netarch_rt::{prop_assert_eq, Rng};

/// Shrinkable wrapper for random JSON documents.
#[derive(Clone, Debug)]
struct Doc(Json);

fn gen_string(rng: &mut Rng) -> String {
    let choices = [
        "", "a", "key", "héllo", "tab\there", "nl\nhere", "q\"uote", "back\\slash",
        "nul\u{0}", "snowman ☃", "astral 𝄞", "ctrl\u{1f}",
    ];
    (*rng.choose(&choices).unwrap()).to_string()
}

fn gen_json_depth(rng: &mut Rng, depth: u32) -> Json {
    let leaf_only = depth == 0 || rng.gen_bool(0.4);
    match rng.gen_range(0..if leaf_only { 5u32 } else { 7 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        // Integral values in the i64-printable window round-trip exactly.
        2 => Json::Num(rng.gen_range(-1_000_000_000i64..=1_000_000_000) as f64),
        3 => Json::Num((rng.gen_range(-8_000_000i64..=8_000_000) as f64) / 1024.0),
        4 => Json::Str(gen_string(rng)),
        5 => Json::Arr(gen_vec(rng, 0..=4, |r| gen_json_depth(r, depth - 1))),
        _ => Json::Obj(
            gen_vec(rng, 0..=4, |r| (gen_string(r), gen_json_depth(r, depth - 1)))
                .into_iter()
                .enumerate()
                // Keys must be unique for Obj comparison to be meaningful.
                .map(|(i, (k, v))| (format!("{k}#{i}"), v))
                .collect(),
        ),
    }
}

impl Shrink for Doc {
    fn shrink(&self) -> Vec<Doc> {
        match &self.0 {
            Json::Arr(items) => items.iter().map(|j| Doc(j.clone())).collect(),
            Json::Obj(fields) => fields.iter().map(|(_, j)| Doc(j.clone())).collect(),
            Json::Null => Vec::new(),
            _ => vec![Doc(Json::Null)],
        }
    }
}

#[test]
fn random_documents_roundtrip_compact_and_pretty() {
    prop::check(
        &Config::with_cases(256),
        |rng| Doc(gen_json_depth(rng, 4)),
        |Doc(doc)| {
            let compact: Json = json::from_str(&doc.dump()).map_err(|e| e.to_string())?;
            prop_assert_eq!(&compact, doc, "compact round-trip");
            let pretty: Json = json::from_str(&doc.dump_pretty()).map_err(|e| e.to_string())?;
            prop_assert_eq!(&pretty, doc, "pretty round-trip");
            Ok(())
        },
    );
}

#[test]
fn random_strings_roundtrip() {
    prop::check(
        &Config::with_cases(256),
        |rng| {
            // Arbitrary scalar values (any char, any length) stress the
            // escaping path beyond the fixed sample strings.
            gen_vec(rng, 0..=12, |r| {
                char::from_u32(r.gen_range(0..0xD800u32)).unwrap_or('\u{FFFD}')
            })
            .into_iter()
            .collect::<String>()
        },
        |s| {
            let back: String = json::from_str(&json::to_string(s)).map_err(|e| e.to_string())?;
            prop_assert_eq!(&back, s);
            Ok(())
        },
    );
}

#[test]
fn escape_sequences_parse() {
    let back: String = json::from_str(r#""\" \\ \/ \b \f \n \r \t""#).unwrap();
    assert_eq!(back, "\" \\ / \u{8} \u{c} \n \r \t");
}

#[test]
fn unicode_escapes_and_surrogate_pairs() {
    let back: String = json::from_str(r#""é☃𝄞""#).unwrap();
    assert_eq!(back, "é☃𝄞");
    // Unpaired surrogates are rejected, not silently replaced.
    assert!(json::from_str::<String>(r#""\ud834""#).is_err());
    assert!(json::from_str::<String>(r#""\udd1e""#).is_err());
}

#[test]
fn nested_depth_is_bounded() {
    // 127 levels parse; beyond the cap the parser errors instead of
    // overflowing the stack.
    let ok = format!("{}0{}", "[".repeat(127), "]".repeat(127));
    assert!(json::from_str::<Json>(&ok).is_ok());
    let too_deep = format!("{}0{}", "[".repeat(400), "]".repeat(400));
    let err = json::from_str::<Json>(&too_deep).unwrap_err();
    assert!(err.to_string().contains("deep"), "unexpected error: {err}");
}

#[test]
fn negative_zero_parses_as_zero() {
    let v: f64 = json::from_str("-0").unwrap();
    assert_eq!(v, 0.0);
    assert!(v.is_sign_negative());
    let v: f64 = json::from_str("-0.0").unwrap();
    assert_eq!(v, 0.0);
    // -0 is integral, so it prints on the i64 path as plain 0.
    assert_eq!(Json::Num(-0.0).dump(), "0");
}

#[test]
fn exponent_forms_parse() {
    assert_eq!(json::from_str::<f64>("1e9").unwrap(), 1.0e9);
    assert_eq!(json::from_str::<f64>("1E9").unwrap(), 1.0e9);
    assert_eq!(json::from_str::<f64>("1e+9").unwrap(), 1.0e9);
    assert_eq!(json::from_str::<f64>("1e-9").unwrap(), 1.0e-9);
    assert_eq!(json::from_str::<f64>("2.5e3").unwrap(), 2500.0);
    // 1e9 is integral and in-range: u64 conversion must accept it.
    assert_eq!(json::from_str::<u64>("1e9").unwrap(), 1_000_000_000);
    // Incomplete exponents are rejected.
    assert!(json::from_str::<f64>("1e").is_err());
    assert!(json::from_str::<f64>("1e+").is_err());
}

#[test]
fn number_grammar_rejects_nonstandard_forms() {
    for bad in ["01", "1.", ".5", "+1", "--1", "0x10", "NaN", "Infinity"] {
        assert!(json::from_str::<f64>(bad).is_err(), "{bad} should be rejected");
    }
}

#[test]
fn large_integers_roundtrip_through_text() {
    // The full u32 range and the 2^53 mantissa boundary survive a trip.
    for n in [0u64, 1, u32::MAX as u64, 1 << 52, (1 << 53) - 1] {
        let text = json::to_string(&n);
        assert_eq!(json::from_str::<u64>(&text).unwrap(), n, "{n}");
    }
}
