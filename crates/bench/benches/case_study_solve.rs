//! Benchmark for experiments E4/E5: compiling and solving the §2.3 case
//! study — plain satisfiability, full lexicographic optimization
//! (Listing 3), diagnosis of the naive design, and the what-if queries.

use netarch_core::prelude::*;
use netarch_corpus::case_study;
use netarch_rt::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::new("case_study_solve");

    let scenario = case_study::scenario();
    h.bench("case_study/compile", || {
        black_box(netarch_core::compile::compile(&scenario).unwrap().stats)
    });

    h.bench("case_study/check", || {
        let mut engine = Engine::new(case_study::scenario()).unwrap();
        black_box(engine.check().unwrap().design().is_some())
    });

    h.bench("case_study/optimize_lexicographic", || {
        let mut engine = Engine::new(case_study::scenario()).unwrap();
        let result = engine.optimize().unwrap().expect("feasible");
        black_box(result.design.total_cost_usd)
    });

    h.bench("case_study/diagnose_naive", || {
        let mut engine = Engine::new(case_study::naive_scenario()).unwrap();
        let outcome = engine.check().unwrap();
        black_box(outcome.diagnosis().expect("infeasible").conflicts.len())
    });

    h.bench("case_study/whatif_pin_sonata", || {
        let scenario = case_study::scenario().with_pin(Pin::Require(SystemId::new("SONATA")));
        let mut engine = Engine::new(scenario).unwrap();
        black_box(engine.check().unwrap().design().is_some())
    });

    h.bench("case_study/enumerate_8_classes", || {
        let mut engine = Engine::new(case_study::scenario()).unwrap();
        black_box(engine.enumerate_designs(8, false).unwrap().len())
    });

    h.finish();
}
