//! Benchmark for experiments E4/E5: compiling and solving the §2.3 case
//! study — plain satisfiability, full lexicographic optimization
//! (Listing 3), diagnosis of the naive design, and the what-if queries.

use criterion::{criterion_group, criterion_main, Criterion};
use netarch_core::prelude::*;
use netarch_corpus::case_study;
use std::hint::black_box;

fn bench_case_study(c: &mut Criterion) {
    c.bench_function("case_study/compile", |b| {
        let scenario = case_study::scenario();
        b.iter(|| black_box(netarch_core::compile::compile(&scenario).unwrap().stats));
    });

    c.bench_function("case_study/check", |b| {
        b.iter(|| {
            let mut engine = Engine::new(case_study::scenario()).unwrap();
            black_box(engine.check().unwrap().design().is_some())
        });
    });

    c.bench_function("case_study/optimize_lexicographic", |b| {
        b.iter(|| {
            let mut engine = Engine::new(case_study::scenario()).unwrap();
            let result = engine.optimize().unwrap().expect("feasible");
            black_box(result.design.total_cost_usd)
        });
    });

    c.bench_function("case_study/diagnose_naive", |b| {
        b.iter(|| {
            let mut engine = Engine::new(case_study::naive_scenario()).unwrap();
            let outcome = engine.check().unwrap();
            black_box(outcome.diagnosis().expect("infeasible").conflicts.len())
        });
    });

    c.bench_function("case_study/whatif_pin_sonata", |b| {
        b.iter(|| {
            let scenario =
                case_study::scenario().with_pin(Pin::Require(SystemId::new("SONATA")));
            let mut engine = Engine::new(scenario).unwrap();
            black_box(engine.check().unwrap().design().is_some())
        });
    });

    c.bench_function("case_study/enumerate_8_classes", |b| {
        b.iter(|| {
            let engine = Engine::new(case_study::scenario()).unwrap();
            black_box(engine.enumerate_designs(8, false).unwrap().len())
        });
    });
}

criterion_group! {
    name = benches;
    // Lean sampling: the repo's benches are smoke+shape oriented;
    // a full workspace bench run must finish in minutes.
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_case_study
}
criterion_main!(benches);
