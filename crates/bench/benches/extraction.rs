//! Benchmark for experiments E6/E7: the extraction and checking studies
//! over the full corpus.

use netarch_extract::{run_checking_study, run_extraction_study, Prompt};
use netarch_rt::bench::{black_box, Harness};

fn main() {
    let hardware = netarch_corpus::all_hardware();
    let systems = netarch_corpus::all_systems();

    let mut h = Harness::new("extraction");

    let mut seed = 0u64;
    h.bench("extract/full_corpus_naive", || {
        seed += 1;
        black_box(run_extraction_study(&hardware, &systems, Prompt::Naive, seed))
    });

    let mut seed = 0u64;
    h.bench("extract/full_corpus_adversarial", || {
        seed += 1;
        black_box(run_extraction_study(&hardware, &systems, Prompt::Adversarial, seed))
    });

    let mut seed = 0u64;
    h.bench("extract/checking_study", || {
        seed += 1;
        black_box(run_checking_study(&systems, seed))
    });

    h.finish();
}
