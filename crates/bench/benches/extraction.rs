//! Benchmark for experiments E6/E7: the extraction and checking studies
//! over the full corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use netarch_extract::{run_checking_study, run_extraction_study, Prompt};
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let hardware = netarch_corpus::all_hardware();
    let systems = netarch_corpus::all_systems();

    c.bench_function("extract/full_corpus_naive", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_extraction_study(&hardware, &systems, Prompt::Naive, seed))
        });
    });

    c.bench_function("extract/full_corpus_adversarial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_extraction_study(&hardware, &systems, Prompt::Adversarial, seed))
        });
    });

    c.bench_function("extract/checking_study", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_checking_study(&systems, seed))
        });
    });
}

criterion_group! {
    name = benches;
    // Lean sampling: the repo's benches are smoke+shape oriented;
    // a full workspace bench run must finish in minutes.
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_extraction
}
criterion_main!(benches);
