//! Benchmark for experiment E9: compile and solve time as the catalog
//! grows — the performance side of §3.1's linear-specification claim.

use netarch_bench::subset_catalog;
use netarch_core::prelude::*;
use netarch_rt::bench::{black_box, Harness};

fn scenario_over(catalog: Catalog) -> Scenario {
    let nics: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Nic)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let switches: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Switch)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let servers: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Server)
        .iter()
        .take(3)
        .map(|h| h.id.clone())
        .collect();
    Scenario::new(catalog)
        .with_workload(
            Workload::builder("app")
                .property("dc_flows")
                .peak_cores(500)
                .num_flows(20_000)
                .needs("host_networking")
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_inventory(Inventory {
            nic_candidates: nics,
            switch_candidates: switches,
            server_candidates: servers,
            num_servers: 32,
            num_switches: 4,
        })
}

fn main() {
    let mut h = Harness::new("scaling");

    for n in [20usize, 40, 70] {
        let scenario = scenario_over(subset_catalog(n, 80));
        h.bench(&format!("scaling/compile/{n}"), || {
            black_box(netarch_core::compile::compile(&scenario).unwrap().stats)
        });
    }

    for n in [20usize, 40, 70] {
        let scenario = scenario_over(subset_catalog(n, 80));
        h.bench(&format!("scaling/check/{n}"), || {
            let mut engine = Engine::new(scenario.clone()).unwrap();
            black_box(engine.check().unwrap().design().is_some())
        });
    }

    for n in [20usize, 40, 70] {
        let mut scenario = scenario_over(subset_catalog(n, 80));
        scenario.objectives = vec![
            Objective::MaximizeDimension(Dimension::Latency),
            Objective::MinimizeCost,
        ];
        h.bench(&format!("scaling/optimize/{n}"), || {
            let mut engine = Engine::new(scenario.clone()).unwrap();
            black_box(engine.optimize().unwrap().is_ok())
        });
    }

    h.finish();
}
