//! Benchmark for experiment E9: compile and solve time as the catalog
//! grows — the performance side of §3.1's linear-specification claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netarch_bench::subset_catalog;
use netarch_core::prelude::*;
use std::hint::black_box;

fn scenario_over(catalog: Catalog) -> Scenario {
    let nics: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Nic)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let switches: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Switch)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let servers: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Server)
        .iter()
        .take(3)
        .map(|h| h.id.clone())
        .collect();
    Scenario::new(catalog)
        .with_workload(
            Workload::builder("app")
                .property("dc_flows")
                .peak_cores(500)
                .num_flows(20_000)
                .needs("host_networking")
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_inventory(Inventory {
            nic_candidates: nics,
            switch_candidates: switches,
            server_candidates: servers,
            num_servers: 32,
            num_switches: 4,
        })
}

fn bench_scaling(c: &mut Criterion) {
    let mut compile_group = c.benchmark_group("scaling/compile");
    for n in [20usize, 40, 70] {
        compile_group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario = scenario_over(subset_catalog(n, 80));
            b.iter(|| black_box(netarch_core::compile::compile(&scenario).unwrap().stats));
        });
    }
    compile_group.finish();

    let mut check_group = c.benchmark_group("scaling/check");
    for n in [20usize, 40, 70] {
        check_group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario = scenario_over(subset_catalog(n, 80));
            b.iter(|| {
                let mut engine = Engine::new(scenario.clone()).unwrap();
                black_box(engine.check().unwrap().design().is_some())
            });
        });
    }
    check_group.finish();

    let mut optimize_group = c.benchmark_group("scaling/optimize");
    optimize_group.sample_size(20);
    for n in [20usize, 40, 70] {
        optimize_group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut scenario = scenario_over(subset_catalog(n, 80));
            scenario.objectives = vec![
                Objective::MaximizeDimension(Dimension::Latency),
                Objective::MinimizeCost,
            ];
            b.iter(|| {
                let mut engine = Engine::new(scenario.clone()).unwrap();
                black_box(engine.optimize().unwrap().is_ok())
            });
        });
    }
    optimize_group.finish();
}

criterion_group! {
    name = benches;
    // Lean sampling: the repo's benches are smoke+shape oriented;
    // a full workspace bench run must finish in minutes.
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_scaling
}
criterion_main!(benches);
