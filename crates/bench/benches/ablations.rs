//! Benchmark for experiment E12: ablations of the design choices called
//! out in DESIGN.md — solver features (VSIDS, restarts, learned-clause
//! minimization/deletion), cardinality encodings, and the MaxSAT
//! algorithm.

use netarch_logic::cardinality::{assert_at_most, CardEncoding};
use netarch_logic::maxsat::{minimize, MaxSatAlgorithm};
use netarch_logic::{Atom, Encoder, Formula, Soft};
use netarch_rt::bench::{black_box, Harness};
use netarch_sat::{Lit, SolveResult, Solver, SolverConfig};

#[allow(clippy::needless_range_loop)]
fn pigeonhole_with(config: SolverConfig, n: usize) -> u64 {
    let mut s = Solver::with_config(config);
    let holes = n - 1;
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row.clone());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!p[i][hole], !p[j][hole]]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    s.stats().conflicts
}

fn main() {
    let mut h = Harness::new("ablations");

    for (label, config) in [
        ("full", SolverConfig::default()),
        ("no-vsids", SolverConfig { vsids_enabled: false, ..SolverConfig::default() }),
        ("no-restarts", SolverConfig { restarts_enabled: false, ..SolverConfig::default() }),
        ("no-minimize", SolverConfig { minimize_enabled: false, ..SolverConfig::default() }),
        ("no-reduce", SolverConfig { reduce_enabled: false, ..SolverConfig::default() }),
    ] {
        h.bench(&format!("ablate/solver_php7/{label}"), || {
            black_box(pigeonhole_with(config.clone(), 7))
        });
    }

    // Assert AMK then force violation — measures encode + solve.
    for (label, enc) in [
        ("sequential", CardEncoding::SequentialCounter),
        ("totalizer", CardEncoding::Totalizer),
        ("auto", CardEncoding::Auto),
    ] {
        h.bench(&format!("ablate/cardinality_amk/{label}"), || {
            let mut s = Solver::new();
            let xs: Vec<Lit> = (0..60).map(|_| s.new_var().positive()).collect();
            assert_at_most(&mut s, &xs, 5, enc);
            // Force six true → UNSAT.
            for &x in xs.iter().take(6) {
                s.add_clause([x]);
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
            black_box(s.num_clauses())
        });
    }

    // Uniform-weight instance where both algorithms apply: at-most-2 of
    // 12 atoms, all softly wanted → optimum 10 violations.
    let build = || {
        let mut e = Encoder::new();
        let atoms: Vec<Formula> = (0..12).map(|i| Formula::Atom(Atom(i))).collect();
        e.assert(&Formula::at_most(2, atoms.clone()));
        let soft: Vec<Soft> = atoms.into_iter().map(|f| Soft::new(1, f)).collect();
        (e, soft)
    };
    for (label, alg) in [
        ("linear-gte", MaxSatAlgorithm::LinearGte),
        ("fu-malik", MaxSatAlgorithm::FuMalik),
    ] {
        h.bench(&format!("ablate/maxsat/{label}"), || {
            let (mut e, soft) = build();
            black_box(minimize(&mut e, &soft, alg))
        });
    }

    h.finish();
}
