//! SAT-substrate microbenchmarks (experiment E10): pigeonhole, random
//! 3-SAT near/below the phase transition, and graph coloring — the
//! combinatorial muscles §3.4 relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netarch_sat::{Lit, SolveResult, Solver, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

#[allow(clippy::needless_range_loop)]
fn pigeonhole_solver(n: usize) -> Solver {
    let mut s = Solver::new();
    let holes = n - 1;
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row.clone());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!p[i][hole], !p[j][hole]]);
            }
        }
    }
    s
}

fn random_3sat_solver(num_vars: usize, ratio: f64, seed: u64) -> Solver {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Solver::new();
    s.ensure_vars(num_vars);
    let clauses = (num_vars as f64 * ratio) as usize;
    for _ in 0..clauses {
        let mut clause = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        s.add_clause(clause);
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/pigeonhole");
    for n in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole_solver(n);
                assert_eq!(s.solve(), SolveResult::Unsat);
                black_box(s.stats().conflicts)
            });
        });
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/random3sat");
    for &(num_vars, ratio, label) in
        &[(150usize, 3.0f64, "easy-sat"), (100, 4.26, "threshold"), (80, 6.0, "unsat")]
    {
        group.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut s = random_3sat_solver(num_vars, ratio, seed);
                black_box(s.solve())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Lean sampling: the repo's benches are smoke+shape oriented;
    // a full workspace bench run must finish in minutes.
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pigeonhole, bench_random_3sat
}
criterion_main!(benches);
