//! SAT-substrate microbenchmarks (experiment E10): pigeonhole, random
//! 3-SAT near/below the phase transition, and graph coloring — the
//! combinatorial muscles §3.4 relies on.

use netarch_rt::bench::{black_box, Harness};
use netarch_rt::Rng;
use netarch_sat::{Lit, SolveResult, Solver, SolverConfig, Var};

fn no_inprocess() -> SolverConfig {
    SolverConfig { inprocessing_enabled: false, ..SolverConfig::default() }
}

#[allow(clippy::needless_range_loop)]
fn pigeonhole_solver_cfg(n: usize, config: SolverConfig) -> Solver {
    let mut s = Solver::with_config(config);
    let holes = n - 1;
    let p: Vec<Vec<Lit>> = (0..n)
        .map(|_| (0..holes).map(|_| s.new_var().positive()).collect())
        .collect();
    for row in &p {
        s.add_clause(row.clone());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                s.add_clause([!p[i][hole], !p[j][hole]]);
            }
        }
    }
    s
}

fn pigeonhole_solver(n: usize) -> Solver {
    pigeonhole_solver_cfg(n, SolverConfig::default())
}

fn random_3sat_solver_cfg(num_vars: usize, ratio: f64, seed: u64, config: SolverConfig) -> Solver {
    let mut rng = Rng::seed_from_u64(seed);
    let mut s = Solver::with_config(config);
    s.ensure_vars(num_vars);
    let clauses = (num_vars as f64 * ratio) as usize;
    for _ in 0..clauses {
        let mut clause = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l: &Lit| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        s.add_clause(clause);
    }
    s
}

fn random_3sat_solver(num_vars: usize, ratio: f64, seed: u64) -> Solver {
    random_3sat_solver_cfg(num_vars, ratio, seed, SolverConfig::default())
}

fn main() {
    let mut h = Harness::new("sat_micro");
    for n in [6usize, 7, 8] {
        h.bench(&format!("sat/pigeonhole/{n}"), || {
            let mut s = pigeonhole_solver(n);
            assert_eq!(s.solve(), SolveResult::Unsat);
            black_box(s.stats().conflicts)
        });
        // Same instance with DRAT recording on: the delta between this
        // pair is the proof-logging overhead (expected: small, and zero
        // when logging is off — the default path has a single
        // `Option::is_some` check per derivation site).
        h.bench(&format!("sat/pigeonhole-proof/{n}"), || {
            let mut s = pigeonhole_solver(n);
            s.record_proof();
            assert_eq!(s.solve(), SolveResult::Unsat);
            black_box(s.take_proof().map(|p| p.len()))
        });
        // Ablation row: the same instance with restart-boundary
        // inprocessing disabled. The delta between this pair is what the
        // simplification passes buy (or cost) on an unpadded instance.
        h.bench(&format!("sat/pigeonhole-noinprocess/{n}"), || {
            let mut s = pigeonhole_solver_cfg(n, no_inprocess());
            assert_eq!(s.solve(), SolveResult::Unsat);
            black_box(s.stats().conflicts)
        });
    }
    for &(num_vars, ratio, label) in
        &[(150usize, 3.0f64, "easy-sat"), (100, 4.26, "threshold"), (80, 6.0, "unsat")]
    {
        let mut seed = 0u64;
        h.bench(&format!("sat/random3sat/{label}"), || {
            seed += 1;
            let mut s = random_3sat_solver(num_vars, ratio, seed);
            black_box(s.solve())
        });
        let mut seed = 0u64;
        h.bench(&format!("sat/random3sat-proof/{label}"), || {
            seed += 1;
            let mut s = random_3sat_solver(num_vars, ratio, seed);
            s.record_proof();
            black_box(s.solve())
        });
        let mut seed = 0u64;
        h.bench(&format!("sat/random3sat-noinprocess/{label}"), || {
            seed += 1;
            let mut s = random_3sat_solver_cfg(num_vars, ratio, seed, no_inprocess());
            black_box(s.solve())
        });
    }
    h.finish();
}
