//! Benchmark for experiment E1: Figure 1 ordering queries — pairwise
//! comparisons, dominance closures, and rank computation over the full
//! corpus.

use netarch_bench::context_scenario;
use netarch_core::prelude::*;
use netarch_rt::bench::{black_box, Harness};

fn main() {
    let scenario = context_scenario(100.0);
    let stacks: Vec<SystemId> = scenario
        .catalog
        .systems_in(&Category::NetworkStack)
        .iter()
        .map(|s| s.id.clone())
        .collect();

    let mut h = Harness::new("fig1_ordering");

    h.bench("ordering/pairwise_compare", || {
        let mut verdicts = 0usize;
        for a in &stacks {
            for x in &stacks {
                if a != x {
                    black_box(scenario.catalog.order().compare(
                        a,
                        x,
                        &Dimension::Throughput,
                        &scenario,
                    ));
                    verdicts += 1;
                }
            }
        }
        verdicts
    });

    h.bench("ordering/ranks_full_dimension", || {
        black_box(scenario.catalog.order().ranks(&stacks, &Dimension::Throughput, &scenario))
    });

    let simon = SystemId::new("SNAP_PONY");
    h.bench("ordering/dominated_closure", || {
        black_box(scenario.catalog.order().dominated_by(
            &simon,
            &Dimension::Throughput,
            &scenario,
        ))
    });

    h.finish();
}
