//! Benchmark for experiment E1: Figure 1 ordering queries — pairwise
//! comparisons, dominance closures, and rank computation over the full
//! corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use netarch_bench::context_scenario;
use netarch_core::prelude::*;
use std::hint::black_box;

fn bench_ordering(c: &mut Criterion) {
    let scenario = context_scenario(100.0);
    let stacks: Vec<SystemId> = scenario
        .catalog
        .systems_in(&Category::NetworkStack)
        .iter()
        .map(|s| s.id.clone())
        .collect();

    c.bench_function("ordering/pairwise_compare", |b| {
        b.iter(|| {
            let mut verdicts = 0usize;
            for a in &stacks {
                for x in &stacks {
                    if a != x {
                        black_box(scenario.catalog.order().compare(
                            a,
                            x,
                            &Dimension::Throughput,
                            &scenario,
                        ));
                        verdicts += 1;
                    }
                }
            }
            verdicts
        });
    });

    c.bench_function("ordering/ranks_full_dimension", |b| {
        b.iter(|| {
            black_box(scenario.catalog.order().ranks(
                &stacks,
                &Dimension::Throughput,
                &scenario,
            ))
        });
    });

    c.bench_function("ordering/dominated_closure", |b| {
        let simon = SystemId::new("SNAP_PONY");
        b.iter(|| {
            black_box(scenario.catalog.order().dominated_by(
                &simon,
                &Dimension::Throughput,
                &scenario,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    // Lean sampling: the repo's benches are smoke+shape oriented;
    // a full workspace bench run must finish in minutes.
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ordering
}
criterion_main!(benches);
