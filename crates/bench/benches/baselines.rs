//! Benchmark for experiment E8: the SAT engine vs the greedy architect
//! and the simulated LLM on the case study. The baselines are faster but
//! wrong; this bench quantifies the speed side of that trade.

use netarch_core::baseline::{GreedyArchitect, Reasoner, SimulatedLlm};
use netarch_core::prelude::*;
use netarch_corpus::case_study;
use netarch_rt::bench::{black_box, Harness};

fn main() {
    let scenario = case_study::scenario();

    let mut h = Harness::new("baselines");

    h.bench("reasoners/sat_engine_check", || {
        let mut engine = Engine::new(scenario.clone()).unwrap();
        black_box(engine.check().unwrap().design().is_some())
    });

    h.bench("reasoners/greedy_architect", || {
        let mut greedy = GreedyArchitect::new();
        black_box(greedy.propose(&scenario).is_some())
    });

    h.bench("reasoners/simulated_llm", || {
        let mut llm = SimulatedLlm::new(7);
        black_box(llm.propose(&scenario).is_some())
    });

    let mut greedy = GreedyArchitect::new();
    let design = greedy.propose(&scenario).unwrap();
    h.bench("reasoners/validator", || {
        black_box(netarch_core::baseline::validate_design(&scenario, &design).len())
    });

    h.finish();
}
