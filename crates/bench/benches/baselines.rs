//! Benchmark for experiment E8: the SAT engine vs the greedy architect
//! and the simulated LLM on the case study. The baselines are faster but
//! wrong; this bench quantifies the speed side of that trade.

use criterion::{criterion_group, criterion_main, Criterion};
use netarch_core::baseline::{GreedyArchitect, Reasoner, SimulatedLlm};
use netarch_core::prelude::*;
use netarch_corpus::case_study;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let scenario = case_study::scenario();

    c.bench_function("reasoners/sat_engine_check", |b| {
        b.iter(|| {
            let mut engine = Engine::new(scenario.clone()).unwrap();
            black_box(engine.check().unwrap().design().is_some())
        });
    });

    c.bench_function("reasoners/greedy_architect", |b| {
        b.iter(|| {
            let mut greedy = GreedyArchitect::new();
            black_box(greedy.propose(&scenario).is_some())
        });
    });

    c.bench_function("reasoners/simulated_llm", |b| {
        b.iter(|| {
            let mut llm = SimulatedLlm::new(7);
            black_box(llm.propose(&scenario).is_some())
        });
    });

    c.bench_function("reasoners/validator", |b| {
        let mut greedy = GreedyArchitect::new();
        let design = greedy.propose(&scenario).unwrap();
        b.iter(|| {
            black_box(netarch_core::baseline::validate_design(&scenario, &design).len())
        });
    });
}

criterion_group! {
    name = benches;
    // Lean sampling: the repo's benches are smoke+shape oriented;
    // a full workspace bench run must finish in minutes.
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_baselines
}
criterion_main!(benches);
