//! Experiment E7 — §4.2: checking human-written encodings. Detection
//! rates per injected-defect class must reproduce the paper's finding
//! that missing conditions are caught far more reliably than wrong
//! numeric values.

use netarch_bench::section;
use netarch_extract::{run_checking_study, DefectClass};

fn main() {
    let systems = netarch_corpus::all_systems();
    section("Checking study over the corpus encodings");
    // Repeat the corpus several times for tight rate estimates.
    let mut expanded = Vec::new();
    for _ in 0..20 {
        expanded.extend(systems.iter().cloned());
    }
    let report = run_checking_study(&expanded, 4242);

    println!("  defect class                detection rate");
    for class in [
        DefectClass::MissingCondition,
        DefectClass::WrongReference,
        DefectClass::OverclaimedCapability,
        DefectClass::WrongNumericValue,
    ] {
        if let Some(rate) = report.rate(class) {
            println!("  {:26} {:>6.1}%", format!("{class:?}"), rate * 100.0);
        }
    }
    let fp = report.false_positives as f64 / report.correct_checked.max(1) as f64;
    println!("  false-positive rate         {:>6.1}%", fp * 100.0);

    let missing = report.rate(DefectClass::MissingCondition).unwrap();
    let wrong = report.rate(DefectClass::WrongNumericValue).unwrap();
    println!(
        "\n  §4.2 gap: missing-condition detection ({:.0}%) ≫ wrong-number detection ({:.0}%)",
        missing * 100.0,
        wrong * 100.0
    );
    assert!(missing > wrong + 0.25, "the §4.2 gap must be large");
    assert!(fp < 0.10);
    println!("\nPASS: §4.2's shape reproduced (existence checks easy, numeric correctness hard).");
}
