//! Portfolio speedup experiment: diversified parallel solving vs one
//! sequential worker.
//!
//! Solves a seeded corpus of hard instances with a 1-thread and a 4-thread
//! racing portfolio (worker 0 of the 1-thread run *is* the sequential
//! solver) and reports the median wall-clock speedup. The corpus is built
//! so diversification — not raw core count — carries the win: the planted
//! family is trivial for the flipped-polarity worker and a grind for the
//! base configuration, so the portfolio pays off even on a single CPU.
//! Every instance is also solved sequentially and all verdicts must agree;
//! any disagreement exits nonzero.
//!
//! `--smoke` runs a reduced corpus with a conservative ≥1.0× median bound
//! (vs ≥1.5× for the full run) so CI can gate on it without flaking.

use netarch_rt::Rng;
use netarch_sat::{Lit, Portfolio, PortfolioConfig, SolveResult, Solver, Var};
use std::time::Instant;

/// Random 3-SAT with every all-negative clause rejected, so the all-true
/// assignment satisfies the formula. The flipped-polarity worker decides
/// true everywhere and finishes without a single conflict; the base
/// (false-polarity) worker has to search.
fn polarity_planted(num_vars: usize, ratio: f64, seed: u64) -> (usize, Vec<Vec<Lit>>) {
    let mut rng = Rng::seed_from_u64(seed);
    let num_clauses = (num_vars as f64 * ratio) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    while clauses.len() < num_clauses {
        let mut clause: Vec<Lit> = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        if clause.iter().any(|l| l.is_positive()) {
            clauses.push(clause);
        }
    }
    (num_vars, clauses)
}

/// Random 3-SAT at the given ratio (both phases allowed).
fn random_3sat(num_vars: usize, ratio: f64, seed: u64) -> (usize, Vec<Vec<Lit>>) {
    let mut rng = Rng::seed_from_u64(seed);
    let num_clauses = (num_vars as f64 * ratio) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut clause: Vec<Lit> = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        clauses.push(clause);
    }
    (num_vars, clauses)
}

fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let holes = n - 1;
    let p = |pigeon: usize, hole: usize| Var::from_index(pigeon * holes + hole).positive();
    let mut clauses = Vec::new();
    for pigeon in 0..n {
        clauses.push((0..holes).map(|h| p(pigeon, h)).collect());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                clauses.push(vec![!p(i, hole), !p(j, hole)]);
            }
        }
    }
    (n * holes, clauses)
}

struct Instance {
    label: String,
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

fn corpus(smoke: bool) -> Vec<Instance> {
    let mut instances = Vec::new();
    let (planted, random, unsat_seeds) = if smoke {
        (6usize, 1usize, 1u64)
    } else {
        (14, 4, 3)
    };
    let planted_vars = if smoke { 300 } else { 350 };
    for i in 0..planted as u64 {
        let (nv, clauses) = polarity_planted(planted_vars, 4.1, 0x9A27_0000 + i);
        instances.push(Instance {
            label: format!("planted/{planted_vars}/{i}"),
            num_vars: nv,
            clauses,
        });
    }
    for i in 0..random as u64 {
        let (nv, clauses) = random_3sat(60, 4.26, 0x7456_0000 + i);
        instances.push(Instance { label: format!("threshold3sat/60/{i}"), num_vars: nv, clauses });
    }
    for i in 0..unsat_seeds {
        let (nv, clauses) = random_3sat(42, 6.0, 0xF00D_0000 + i);
        instances.push(Instance { label: format!("unsat3sat/42/{i}"), num_vars: nv, clauses });
    }
    if !smoke {
        let (nv, clauses) = pigeonhole(7);
        instances.push(Instance { label: "pigeonhole/7".to_string(), num_vars: nv, clauses });
    }
    instances
}

fn solve_portfolio(inst: &Instance, threads: usize) -> (SolveResult, f64) {
    let portfolio =
        Portfolio::new(PortfolioConfig { num_threads: threads, seed: 0xBEEF, ..Default::default() });
    let start = Instant::now();
    let out = portfolio.solve(inst.num_vars, &inst.clauses, &[]);
    (out.result, start.elapsed().as_secs_f64())
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bound = if smoke { 1.0 } else { 1.5 };
    netarch_bench::section(if smoke {
        "Portfolio speedup (smoke corpus): 4 diversified workers vs 1"
    } else {
        "Portfolio speedup: 4 diversified workers vs 1"
    });

    let instances = corpus(smoke);
    let mut speedups = Vec::with_capacity(instances.len());
    let mut disagreements = 0usize;
    println!(
        "  {:<22} {:>9} {:>10} {:>10} {:>8}",
        "instance", "verdict", "t1", "t4", "speedup"
    );
    for inst in &instances {
        let mut sequential = Solver::new();
        sequential.ensure_vars(inst.num_vars);
        for c in &inst.clauses {
            sequential.add_clause(c.iter().copied());
        }
        let expected = sequential.solve();
        let (r1, t1) = solve_portfolio(inst, 1);
        let (r4, t4) = solve_portfolio(inst, 4);
        if r1 != expected || r4 != expected {
            disagreements += 1;
            eprintln!("DISAGREEMENT on {}: sequential={expected:?} t1={r1:?} t4={r4:?}", inst.label);
        }
        let speedup = t1 / t4.max(1e-9);
        speedups.push(speedup);
        println!(
            "  {:<22} {:>9} {:>9.2}ms {:>9.2}ms {:>7.2}x",
            inst.label,
            format!("{expected:?}"),
            t1 * 1e3,
            t4 * 1e3,
            speedup
        );
    }

    let med = median(&mut speedups);
    println!("\n  instances                   {:>8}", instances.len());
    println!("  verdict disagreements       {:>8}", disagreements);
    println!("  median speedup (4 vs 1)     {med:>7.2}x (bound {bound:.1}x)");

    let summary = netarch_rt::jobj! {
        "experiment": "portfolio",
        "smoke": smoke,
        "instances": instances.len(),
        "disagreements": disagreements,
        "median_speedup": med,
        "bound": bound,
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    // Smoke runs (CI) use few instances; they persist only into an
    // explicit NETARCH_BENCH_DIR scratch dir, never over the committed
    // trajectory file.
    netarch_bench::persist_result_gated("portfolio", &summary, smoke);

    if disagreements > 0 {
        eprintln!("FAIL: {disagreements} verdict disagreement(s) between backends");
        std::process::exit(1);
    }
    if med < bound {
        eprintln!("FAIL: median speedup {med:.2}x below the {bound:.1}x bound");
        std::process::exit(1);
    }
    println!("\nPASS: zero disagreements, median speedup {med:.2}x ≥ {bound:.1}x.");
}
