//! Multi-tenant serving experiment: sharded engine pool with a
//! compiled-scenario cache under deterministic replay load.
//!
//! Drives a seeded repeat/variant/cold request tape (the traffic shape
//! of tenants iterating on designs) through the service and reports
//! throughput and tail latency, split by warm (cache-hit) versus cold
//! (compile) path. Every response is differentially checked against a
//! throwaway engine freshly compiled for that one request — the run
//! fails on any disagreement.
//!
//! Asserts:
//! * zero answer disagreements versus the fresh-engine oracle,
//! * warm hits exist (the tape is repeat-heavy by construction),
//! * warm-path service time beats the cold path by ≥ 3× (full run only;
//!   smoke reports the ratio but does not gate on it — on small CI
//!   containers the sub-ms warm/cold medians are scheduler noise, and a
//!   wall-clock bound there rejects perfectly good builds).
//!
//! `--smoke` shrinks the pool and tape for CI. With `NETARCH_THREADS=1`
//! (sequential backend) the summary is bit-identical across runs except
//! for timing fields — see `service_determinism.rs`.

use netarch_bench::{section, subset_catalog};
use netarch_core::prelude::*;
use netarch_rt::json::Json;
use netarch_serve::report;
use netarch_serve::request::run_query;
use netarch_serve::{generate_tape, Answer, ReplaySpec, Request, Service, ServiceConfig};
use std::time::Instant;

/// One tenant-facing base scenario over a sub-corpus of `n_systems`
/// systems. Different sizes give different catalogs (hence different
/// shard affinities); per-tenant params give cold traffic within one
/// catalog.
fn base_scenario(n_systems: usize, n_hardware: usize) -> Scenario {
    let catalog = subset_catalog(n_systems, n_hardware);
    let nics: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Nic)
        .iter()
        .take(3)
        .map(|h| h.id.clone())
        .collect();
    let switches: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Switch)
        .iter()
        .take(3)
        .map(|h| h.id.clone())
        .collect();
    Scenario::new(catalog)
        .with_workload(
            Workload::builder("app")
                .property("dc_flows")
                .peak_cores(200)
                .num_flows(10_000)
                .needs("host_networking")
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_objective(Objective::MinimizeCost)
        .with_inventory(Inventory {
            nic_candidates: nics,
            switch_candidates: switches,
            server_candidates: Vec::new(),
            num_servers: 16,
            num_switches: 2,
        })
}

fn pool(smoke: bool) -> Vec<Scenario> {
    // Smoke catalogs must stay large enough that a cold compile clearly
    // dominates a warm solve: at 20-system scale both paths are a few
    // hundred µs and the warm-over-cold median is scheduler noise.
    let sizes: &[(usize, usize)] =
        if smoke { &[(30, 30), (45, 40)] } else { &[(30, 30), (45, 40), (60, 50), (70, 60)] };
    let tenants_per_size = if smoke { 1 } else { 2 };
    let mut scenarios = Vec::new();
    for &(n_systems, n_hardware) in sizes {
        let base = base_scenario(n_systems, n_hardware);
        for t in 0..tenants_per_size {
            scenarios.push(base.clone().with_param(format!("tenant_{t}"), f64::from(t)));
        }
    }
    scenarios
}

fn oracle_answer(request: &Request, backend: netarch_logic::SolveBackend) -> Result<Answer, String> {
    match Engine::with_backend(request.scenario.clone(), backend) {
        Ok(mut engine) => run_query(&mut engine, &request.query),
        Err(e) => Err(e.to_string()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke runs record a zero bound: the ratio is reported for eyeballs
    // and trend-tracking, but only the full run (committed trajectory)
    // holds a wall-clock claim. See the header for why.
    let bound = if smoke { 0.0 } else { 3.0 };
    let backend = netarch_logic::backend_from_env();
    section(if smoke {
        "Multi-tenant serving (smoke): sharded pool + compiled-scenario cache"
    } else {
        "Multi-tenant serving: sharded pool + compiled-scenario cache"
    });

    let pool = pool(smoke);
    let spec = ReplaySpec {
        seed: 0x5E12_4E01,
        requests: if smoke { 40 } else { 240 },
        ..ReplaySpec::default()
    };
    let tape = generate_tape(&spec, &pool);
    // Smoke asserts a warm-over-cold *timing* ratio, which is meaningless
    // when shard threads timeslice on too few cores: a request's wall
    // time then includes descheduled gaps while a sibling shard runs.
    // Clamp smoke shards to the machine's parallelism (multi-shard
    // correctness is covered by the service_differential suite, which
    // asserts no timing).
    let parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let config = ServiceConfig {
        shards: if smoke { 2.min(parallelism) } else { 4 },
        sessions_per_shard: if smoke { 4 } else { 8 },
        cache: true,
        backend: backend.clone(),
    };
    println!(
        "  pool {} scenarios · tape {} requests · {} shards × {} sessions",
        pool.len(),
        tape.len(),
        config.shards,
        config.sessions_per_shard
    );

    let started = Instant::now();
    let (responses, stats) = Service::run(config.clone(), tape.clone());
    let elapsed_micros = started.elapsed().as_micros() as u64;

    let mut disagreements = 0usize;
    for (request, response) in tape.iter().zip(&responses) {
        let expected = oracle_answer(request, backend.clone());
        if expected != response.answer {
            disagreements += 1;
            eprintln!(
                "DISAGREE on request {} ({:?}, {}, hit={}):\n  service {:?}\n  oracle  {expected:?}",
                request.id,
                request.query,
                request.class.name(),
                response.cache_hit,
                response.answer
            );
        }
    }

    let body = report::summary(&responses, &stats, elapsed_micros);
    let warm_over_cold =
        body.get("warm_over_cold").and_then(|j| j.as_f64()).unwrap_or(0.0);
    let warm_p50 = body.get("warm_latency").and_then(|l| l.get("p50_us")).and_then(|j| j.as_u64());
    let cold_p50 = body.get("cold_latency").and_then(|l| l.get("p50_us")).and_then(|j| j.as_u64());
    let qps = responses.len() as f64 / (elapsed_micros as f64 / 1e6).max(1e-9);
    println!("  requests                    {:>10}", responses.len());
    println!("  throughput                  {qps:>8.0} qps");
    println!(
        "  cache hits / misses / evict {:>6} / {} / {}",
        stats.cache_hits(),
        stats.cache_misses(),
        stats.evictions()
    );
    println!("  warm median service time    {:>8} µs", warm_p50.unwrap_or(0));
    println!("  cold median service time    {:>8} µs", cold_p50.unwrap_or(0));
    println!("  warm over cold (median)     {warm_over_cold:>7.1}x (bound {bound:.1}x)");
    println!("  disagreements vs oracle     {disagreements:>10}");
    println!(
        "  learned clauses retained    {:>10}",
        stats.learnt_clauses()
    );

    let head = netarch_rt::jobj! {
        "experiment": "serve",
        "smoke": smoke,
        "seed": spec.seed,
        "pool": pool.len() as u64,
        "disagreements": disagreements as u64,
        "bound": bound,
    };
    let mut pairs = match head {
        Json::Obj(pairs) => pairs,
        _ => unreachable!(),
    };
    if let Json::Obj(rest) = body {
        pairs.extend(rest);
    }
    let summary = Json::Obj(pairs);
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    netarch_bench::persist_result_gated("serve", &summary, smoke);

    assert_eq!(disagreements, 0, "service answers diverged from fresh engines");
    assert!(stats.cache_hits() > 0, "repeat-heavy tape produced no warm hits");
    assert!(
        warm_over_cold >= bound,
        "warm path only {warm_over_cold:.1}x over cold; expected ≥ {bound:.1}x"
    );
    println!("\nPASS: zero disagreements, warm path {warm_over_cold:.1}x over cold.");
}
