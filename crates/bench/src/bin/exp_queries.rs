//! Experiment E5 — the three §5.1 queries, with machine-checked outcomes.

use netarch_bench::section;
use netarch_core::explain::render_diagnosis;
use netarch_core::prelude::*;
use netarch_corpus::case_study;

fn main() {
    section("Query 1: support more applications, servers frozen");
    let mut engine = Engine::new(case_study::scenario()).expect("compiles");
    let today = engine.optimize().expect("runs").expect("feasible");
    let server = today.design.hardware_for(HardwareKind::Server).unwrap().clone();
    println!("  frozen server SKU: {server}");
    let mut tomorrow = case_study::scenario().with_workload(case_study::batch_workload());
    tomorrow.inventory.server_candidates = vec![server.clone()];
    let mut engine = Engine::new(tomorrow).expect("compiles");
    match engine.optimize().expect("runs") {
        Ok(r) => {
            let cc = r.design.selection(&Category::CongestionControl).unwrap();
            let cores = &r.design.resources[&Resource::Cores];
            println!("  FEASIBLE on frozen fleet; CC = {cc}; cores {} / {:?}", cores.used, cores.capacity);
        }
        Err(d) => println!("  INFEASIBLE:\n{}", render_diagnosis(&d)),
    }

    section("Query 2: keep Sonata unless the win is huge");
    let pinned = case_study::scenario().with_pin(Pin::Require(SystemId::new("SONATA")));
    let mut engine = Engine::new(pinned).expect("compiles");
    let with_sonata = engine.optimize().expect("runs").expect("feasible");
    let switch = with_sonata.design.hardware_for(HardwareKind::Switch).unwrap();
    println!(
        "  with Sonata: ${} (switch: {switch}, P4 required)",
        with_sonata.design.total_cost_usd
    );
    println!("  if free:     ${}", today.design.total_cost_usd);
    let delta = with_sonata
        .design
        .total_cost_usd
        .saturating_sub(today.design.total_cost_usd);
    let pct = 100.0 * delta as f64 / with_sonata.design.total_cost_usd.max(1) as f64;
    println!("  switching saves ${delta} ({pct:.1}%) → {}", if pct < 10.0 {
        "KEEP Sonata (not a huge win)"
    } else {
        "consider switching"
    });

    section("Query 3: is CXL memory pooling worthwhile?");
    let scenario = case_study::scenario()
        .with_role(Category::Custom("memory-pooling".into()), RoleRule::Required)
        .with_pin(Pin::Require(SystemId::new("CXL_POOL")));
    let mut engine = Engine::new(scenario).expect("compiles");
    match engine.optimize().expect("runs") {
        Ok(r) => {
            let server = r.design.hardware_for(HardwareKind::Server).unwrap();
            let premium = r.design.total_cost_usd.saturating_sub(today.design.total_cost_usd);
            println!("  FEASIBLE; platform routed to CXL-capable {server}");
            println!("  cost premium over no-pooling optimum: ${premium}");
            println!("  → worthwhile iff recovered DRAM stranding exceeds ${premium}");
        }
        Err(d) => println!("  INFEASIBLE:\n{}", render_diagnosis(&d)),
    }

    println!("\nPASS: all three §5.1 queries answered (outcomes mirror §2.3's discussion).");
}
