//! Experiment E4 — the §2.3 case study + Listing 3: naive design
//! rejected with an explanation; engine-synthesized design under
//! `Optimize(latency > Hardware cost > monitoring)`; ripple effects.

use netarch_bench::section;
use netarch_core::baseline::validate_design;
use netarch_core::explain::render_diagnosis;
use netarch_core::prelude::*;
use netarch_corpus::case_study;

fn main() {
    section("Listing 3 workload");
    let w = case_study::inference_workload();
    println!(
        "  inference_app: properties={:?} racks={:?} peak_cores={} peak_bandwidth={}",
        w.properties.iter().map(|p| p.as_str()).collect::<Vec<_>>(),
        w.racks,
        w.peak_cores,
        w.peak_bandwidth_gbps,
    );
    println!(
        "  bound: {} at least as good as {}",
        w.bounds[0].dimension, w.bounds[0].better_than
    );

    section("Step 1: the naive design (OVS + Linux/Cubic + ECMP, no monitoring)");
    let mut engine = Engine::new(case_study::naive_scenario()).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Infeasible(d) => {
            println!("{}", render_diagnosis(&d));
        }
        Outcome::Feasible(design) => {
            println!("UNEXPECTED feasible naive design:\n{design}");
            std::process::exit(1);
        }
    }

    section("Step 2: engine synthesis under Optimize(latency > cost > monitoring)");
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let t0 = std::time::Instant::now();
    let result = engine.optimize().expect("runs").expect("feasible");
    println!("(solved in {:?})\n{}", t0.elapsed(), result.design);
    println!("objective report:");
    for l in &result.levels {
        println!("  {:42} penalty {}", l.objective, l.penalty);
    }
    assert!(validate_design(&scenario, &result.design).is_empty());

    section("Step 3: ripple effects (paper §2.3)");
    let d = &result.design;
    let nic = d.hardware_for(HardwareKind::Nic).unwrap();
    let nic_spec = scenario.catalog.hardware(nic).unwrap();
    if d.includes(&SystemId::new("PACKET_SPRAY")) {
        println!(
            "  spraying → NIC reorder buffers: NIC={nic} reorder={}",
            nic_spec.has_feature(&Feature::new("REORDER_BUFFER"))
        );
        assert!(nic_spec.has_feature(&Feature::new("REORDER_BUFFER")));
    }
    if d.includes(&SystemId::new("SIMON")) {
        println!(
            "  SIMON → NIC timestamps: NIC={nic} timestamps={}",
            nic_spec.has_feature(&Feature::new("NIC_TIMESTAMPS"))
        );
    }
    if let Some(cc) = d.selection(&Category::CongestionControl) {
        let sw = d.hardware_for(HardwareKind::Switch).unwrap();
        let sw_spec = scenario.catalog.hardware(sw).unwrap();
        println!(
            "  congestion control {cc} on switch {sw} (QCN={}, INT={}, P4={})",
            sw_spec.has_feature(&Feature::new("QCN")),
            sw_spec.has_feature(&Feature::new("INT")),
            sw_spec.has_feature(&Feature::new("P4")),
        );
    }
    let cores = &d.resources[&Resource::Cores];
    println!("  cores: {} / {:?} (workload 2800 + system demands)", cores.used, cores.capacity);

    section("Step 4: objective-order ablation (latency-first vs cost-first)");
    let mut cost_first = case_study::scenario();
    cost_first.objectives = vec![
        Objective::MinimizeCost,
        Objective::MaximizeDimension(Dimension::Latency),
        Objective::MaximizeDimension(Dimension::MonitoringQuality),
    ];
    let mut engine = Engine::new(cost_first).expect("compiles");
    let cheap = engine.optimize().expect("runs").expect("feasible");
    println!(
        "  latency-first: ${}   cost-first: ${}",
        result.design.total_cost_usd, cheap.design.total_cost_usd
    );
    assert!(cheap.design.total_cost_usd <= result.design.total_cost_usd);
    println!("\nPASS: case study reproduced end-to-end.");
}
