//! Parallel query loops: racing MaxSAT descent, cube-and-conquer projected
//! enumeration, and speculative capacity binary search, each measured
//! against its sequential counterpart on identical inputs.
//!
//! The speedups here are *algorithmic*, not core-count artifacts, so they
//! survive single-core CI runners:
//!
//! * **Descent** — the racing window always includes the most aggressive
//!   open candidate. On instances whose optimum sits at the bottom of a
//!   tall candidate ladder, that probe jackpots in the first round, while
//!   the sequential binary search pays a full descent of bound probes.
//! * **Enumeration** — blocking-clause enumeration over `M` projected
//!   models does `O(M²)` watch work; splitting the projection space on a
//!   cube of `2^bits` decision literals divides each worker's blocking
//!   set, cutting total work toward `M²/2^bits` regardless of how many
//!   cores execute the workers.
//! * **Capacity** — speculative probing widens the fleet-bound search
//!   window, but its probe pool clones the CNF into every seat; on one
//!   core the seats also serialize, so each round costs `seats` probes.
//!   The engine's `Speculation::Auto` heuristic therefore engages the
//!   pass only when the open interval is wide and physical cores back
//!   the seats — on machines without them, what this loop measures is
//!   the heuristic correctly standing down (≈1×, the portfolio's one-shot
//!   probe overhead aside). It is reported honestly and the gate requires
//!   only two of the three loops over the bound.
//!
//! Every parallel answer is checked against the sequential oracle — any
//! disagreement (optimum cost, projected model set, fleet size) exits
//! nonzero. `--smoke` runs reduced shapes and checks correctness only;
//! the speedup gate applies to full runs.

use netarch_core::prelude::*;
use netarch_logic::backend::{PortfolioOptions, SolveBackend};
use netarch_logic::cardinality::{assert_exactly, CardEncoding};
use netarch_logic::maxsat::{minimize, MaxSatAlgorithm, MaxSatOutcome, Soft};
use netarch_logic::{Atom, CollectSink, EncodeConfig, Encoder, Formula};
use netarch_rt::Rng;
use netarch_sat::enumerate::enumerate_projected;
use netarch_sat::{enumerate_projected_cubes, Lit, SolverConfig, Solver, Var};
use std::time::Instant;

const SEATS: usize = 4;

fn portfolio_backend() -> SolveBackend {
    // Racing mode — the production default — so first-winner-cancels
    // arbitration is part of what gets measured. Deterministic mode runs
    // every seat to completion, which on a single core multiplies the work
    // instead of racing it; its bit-identity guarantees are covered by the
    // differential test suites, not this bench.
    SolveBackend::Portfolio(PortfolioOptions {
        num_threads: SEATS,
        deterministic: false,
        ..PortfolioOptions::default()
    })
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

// ---------------------------------------------------------------- descent

/// A descent instance: near-threshold random 3-SAT with a *hidden* planted
/// assignment, plus one unit-weight soft literal per variable pinning the
/// planted point — a candidate ladder of `num_softs + 1` cost levels with
/// the optimum at zero. Clauses are complement-closed (each has one literal
/// agreeing with the planted point, one disagreeing, one uniform), so both
/// the planted point and its complement satisfy the hard theory and the
/// literal-polarity statistics leak nothing — naive planted 3-SAT betrays
/// its solution to occurrence-counting heuristics and turns easy. The
/// asymmetry is structural, not seed luck: the racing loop's aggressive-lo
/// probe assumes every soft, unit-propagates straight to the planted point,
/// and verifies the clauses in one sweep, while the sequential bisection
/// must grind down ~log2(n) cost-bounded probes, each a constrained search
/// with the complement cluster (cost ~n) as a decoy.
struct DescentShape {
    label: String,
    num_softs: u32,
    hard: Vec<Formula>,
    soft: Vec<Soft>,
}

fn descent_shapes(smoke: bool, rng: &mut Rng) -> Vec<DescentShape> {
    let sizes: &[(u32, f64)] = if smoke {
        &[(40, 3.0), (50, 3.0)]
    } else {
        &[(250, 2.5), (300, 2.5), (350, 2.5)]
    };
    sizes
        .iter()
        .map(|&(num_softs, ratio)| {
            let planted: Vec<bool> = (0..num_softs).map(|_| rng.gen_bool(0.5)).collect();
            let atom = |v: u32| Formula::Atom(Atom(v));
            let not = |f: Formula| Formula::not(f);
            let lit = |v: u32, positive: bool| {
                if positive {
                    atom(v)
                } else {
                    not(atom(v))
                }
            };
            let mut hard = Vec::new();
            for _ in 0..(num_softs as f64 * ratio) as usize {
                let mut vars = Vec::new();
                while vars.len() < 3 {
                    let v = rng.gen_range(0..num_softs);
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
                let (x, y, z) = (vars[0], vars[1], vars[2]);
                hard.push(Formula::or([
                    lit(x, planted[x as usize]),
                    lit(y, !planted[y as usize]),
                    lit(z, rng.gen_bool(0.5)),
                ]));
            }
            let soft = (0..num_softs)
                .map(|i| Soft::new(1, lit(i, planted[i as usize])))
                .collect();
            DescentShape { label: format!("descent/{num_softs}"), num_softs, hard, soft }
        })
        .collect()
}

fn run_descent(shape: &DescentShape, backend: SolveBackend) -> (f64, u64) {
    let mut e = Encoder::with_config(EncodeConfig { backend, ..EncodeConfig::default() });
    for h in &shape.hard {
        e.assert(h);
    }
    let start = Instant::now();
    let outcome = minimize(&mut e, &shape.soft, MaxSatAlgorithm::LinearGte);
    let elapsed = start.elapsed().as_secs_f64();
    match outcome {
        MaxSatOutcome::Optimal { cost, .. } => (elapsed, cost),
        other => panic!("{}: unexpected outcome {other:?}", shape.label),
    }
}

// ------------------------------------------------------------ enumeration

/// An enumeration instance: exactly-`k`-of-`n` over the projection vars,
/// so the projected model count is `C(n, k)` and blocking-clause load is
/// the dominant cost.
struct EnumShape {
    label: String,
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    projection: Vec<Var>,
    expected_models: usize,
}

fn choose(n: u64, k: u64) -> u64 {
    (0..k).fold(1u64, |acc, i| acc * (n - i) / (i + 1))
}

fn enum_shapes(smoke: bool) -> Vec<EnumShape> {
    // Many models over a small base CNF, so the quadratic blocking-clause
    // term — the part the cube split divides — dominates per-model cost.
    // `k = n/2` keeps the four cubes balanced: splitting exactly-k-of-n on
    // two literals partitions `C(n, k)` into four near-equal binomials,
    // whereas a sparse `k ≪ n` dumps almost everything into the
    // both-false cube and the split buys nothing.
    let sizes: &[(usize, u32)] =
        if smoke { &[(12, 6), (13, 6)] } else { &[(16, 8), (17, 8), (18, 9)] };
    sizes
        .iter()
        .map(|&(n, k)| {
            let mut sink = CollectSink::with_vars(n);
            let lits: Vec<Lit> = (0..n).map(|i| Var::from_index(i).positive()).collect();
            assert_exactly(&mut sink, &lits, k, CardEncoding::Totalizer);
            EnumShape {
                label: format!("enum/{k}of{n}"),
                num_vars: sink.num_vars,
                clauses: sink.clauses,
                projection: (0..n).map(Var::from_index).collect(),
                expected_models: choose(n as u64, k as u64) as usize,
            }
        })
        .collect()
}

/// Sorted projected-model set, for the disagreement check.
type ModelSet = Vec<Vec<(usize, bool)>>;

fn run_enum_sequential(shape: &EnumShape) -> (f64, ModelSet) {
    let mut s = Solver::with_config(SolverConfig::default());
    s.ensure_vars(shape.num_vars);
    for c in &shape.clauses {
        s.add_clause(c.iter().copied());
    }
    let start = Instant::now();
    let out = enumerate_projected(&mut s, &shape.projection, &[], shape.expected_models + 1);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(!out.truncated, "{}: sequential walk truncated", shape.label);
    let mut set: ModelSet = out
        .models
        .iter()
        .map(|m| m.iter().map(|&(v, b)| (v.index(), b)).collect())
        .collect();
    set.sort();
    (elapsed, set)
}

fn run_enum_cubes(shape: &EnumShape, bits: usize) -> (f64, ModelSet) {
    let start = Instant::now();
    let out = enumerate_projected_cubes(
        shape.num_vars,
        &shape.clauses,
        &SolverConfig::default(),
        &shape.projection,
        &[],
        shape.expected_models + 1,
        bits,
    );
    let elapsed = start.elapsed().as_secs_f64();
    assert!(!out.truncated, "{}: cube walk truncated", shape.label);
    let mut set: ModelSet = out
        .models
        .iter()
        .map(|m| {
            shape
                .projection
                .iter()
                .map(|&v| (v.index(), m[v.index()].unwrap_or(false)))
                .collect()
        })
        .collect();
    set.sort();
    (elapsed, set)
}

// --------------------------------------------------------------- capacity

fn capacity_scenario(peak_cores: u64) -> Scenario {
    let mut catalog = Catalog::new();
    catalog
        .add_system(
            SystemSpec::builder("MONITOR", Category::Monitoring)
                .solves("monitoring")
                .consumes(Resource::Cores, AmountExpr::constant(40))
                .build(),
        )
        .unwrap();
    catalog
        .add_hardware(
            HardwareSpec::builder("SRV32", HardwareKind::Server)
                .numeric("cores", 32.0)
                .cost(5_000)
                .build(),
        )
        .unwrap();
    Scenario::new(catalog)
        .with_workload(Workload::builder("app").needs("monitoring").peak_cores(peak_cores).build())
        .with_inventory(Inventory {
            server_candidates: vec![HardwareId::new("SRV32")],
            num_servers: 1,
            ..Inventory::default()
        })
}

fn run_capacity(peak: u64, max_servers: u64, backend: SolveBackend) -> (f64, u64) {
    let mut engine = Engine::with_backend(capacity_scenario(peak), backend).unwrap();
    let start = Instant::now();
    let plan = engine.plan_capacity(max_servers).unwrap().expect("feasible");
    (start.elapsed().as_secs_f64(), plan.servers_needed)
}

// ------------------------------------------------------------------ main

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bound = 1.3f64;
    netarch_bench::section(if smoke {
        "Parallel query loops (smoke shapes): racing descent, cube enumeration, speculative capacity"
    } else {
        "Parallel query loops: racing descent, cube enumeration, speculative capacity"
    });

    let mut disagreements = 0usize;
    let mut rng = Rng::seed_from_u64(0x9A2A_11E1);

    // --- racing MaxSAT descent -------------------------------------------
    println!("  {:<16} {:>10} {:>10} {:>8}  note", "descent", "t-seq", "t-par", "speedup");
    let mut descent_speedups = Vec::new();
    for shape in &descent_shapes(smoke, &mut rng) {
        let (t_seq, cost_seq) = run_descent(shape, SolveBackend::Sequential);
        let (t_par, cost_par) = run_descent(shape, portfolio_backend());
        if cost_seq != cost_par {
            disagreements += 1;
            eprintln!("DISAGREEMENT on {}: optimum {cost_seq} vs {cost_par}", shape.label);
        }
        let speedup = t_seq / t_par.max(1e-9);
        descent_speedups.push(speedup);
        println!(
            "  {:<16} {:>9.1}ms {:>9.1}ms {:>7.2}x  ladder of {} candidates",
            shape.label,
            t_seq * 1e3,
            t_par * 1e3,
            speedup,
            shape.num_softs + 1,
        );
    }

    // --- cube-and-conquer enumeration ------------------------------------
    println!("\n  {:<16} {:>10} {:>10} {:>8}  note", "enumeration", "t-seq", "t-cube", "speedup");
    let mut enum_speedups = Vec::new();
    for shape in &enum_shapes(smoke) {
        // min-of-2: the computation is deterministic, so the faster repeat
        // is the better estimate of its true cost under scheduler noise.
        let reps = if smoke { 1 } else { 2 };
        let (mut t_seq, set_seq) = run_enum_sequential(shape);
        let (mut t_cube, set_cube) = run_enum_cubes(shape, 2);
        for _ in 1..reps {
            t_seq = t_seq.min(run_enum_sequential(shape).0);
            t_cube = t_cube.min(run_enum_cubes(shape, 2).0);
        }
        if set_seq != set_cube {
            disagreements += 1;
            eprintln!(
                "DISAGREEMENT on {}: {} vs {} projected classes",
                shape.label,
                set_seq.len(),
                set_cube.len()
            );
        }
        if set_seq.len() != shape.expected_models {
            disagreements += 1;
            eprintln!(
                "DISAGREEMENT on {}: expected {} classes, saw {}",
                shape.label,
                shape.expected_models,
                set_seq.len()
            );
        }
        let speedup = t_seq / t_cube.max(1e-9);
        enum_speedups.push(speedup);
        println!(
            "  {:<16} {:>9.1}ms {:>9.1}ms {:>7.2}x  {} models, 4 cubes",
            shape.label,
            t_seq * 1e3,
            t_cube * 1e3,
            speedup,
            shape.expected_models,
        );
    }

    // --- speculative capacity search --------------------------------------
    println!("\n  {:<16} {:>10} {:>10} {:>8}  note", "capacity", "t-seq", "t-spec", "speedup");
    let mut capacity_speedups = Vec::new();
    let peaks: &[u64] = if smoke { &[500, 1000] } else { &[4000, 8000, 15000] };
    let fleet_bound = if smoke { 256 } else { 512 };
    for &peak in peaks {
        let (t_seq, n_seq) = run_capacity(peak, fleet_bound, SolveBackend::Sequential);
        let (t_spec, n_spec) = run_capacity(peak, fleet_bound, portfolio_backend());
        if n_seq != n_spec {
            disagreements += 1;
            eprintln!("DISAGREEMENT on capacity/{peak}: {n_seq} vs {n_spec} servers");
        }
        let speedup = t_seq / t_spec.max(1e-9);
        capacity_speedups.push(speedup);
        println!(
            "  capacity/{:<7} {:>9.1}ms {:>9.1}ms {:>7.2}x  fleet bound {fleet_bound}, {n_seq} needed",
            peak,
            t_seq * 1e3,
            t_spec * 1e3,
            speedup,
        );
    }

    let descent = median(&mut descent_speedups);
    let enumeration = median(&mut enum_speedups);
    let capacity = median(&mut capacity_speedups);
    let loops_over_bound =
        [descent, enumeration, capacity].iter().filter(|&&s| s >= bound).count();

    println!("\n  verdict disagreements       {disagreements:>8}");
    println!("  median descent speedup      {descent:>7.2}x");
    println!("  median enumeration speedup  {enumeration:>7.2}x");
    println!("  median capacity speedup     {capacity:>7.2}x");
    println!("  loops over the {bound:.1}x bound   {loops_over_bound:>8} of 3 (need 2)");

    let summary = netarch_rt::jobj! {
        "experiment": "parallel_queries",
        "smoke": smoke,
        "seats": SEATS,
        "disagreements": disagreements,
        "descent_speedup": descent,
        "enumeration_speedup": enumeration,
        "capacity_speedup": capacity,
        "loops_over_bound": loops_over_bound,
        "bound": bound,
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    netarch_bench::persist_result_gated("parallel_queries", &summary, smoke);

    if disagreements > 0 {
        eprintln!("FAIL: {disagreements} parallel-vs-sequential disagreement(s)");
        std::process::exit(1);
    }
    if smoke {
        println!("\nPASS (smoke): zero disagreements; speedup gate applies to full runs only.");
        return;
    }
    if loops_over_bound < 2 {
        eprintln!("FAIL: only {loops_over_bound} of 3 loops at or above the {bound:.1}x bound");
        std::process::exit(1);
    }
    println!(
        "\nPASS: zero disagreements, {loops_over_bound} of 3 loops at or above {bound:.1}x."
    );
}
