//! Experiment E6 — §4.1: extraction accuracy over the synthetic document
//! corpus, per fact class and prompting strategy.

use netarch_bench::section;
use netarch_extract::{run_extraction_study, Prompt};

fn main() {
    let hardware = netarch_corpus::all_hardware();
    let systems = netarch_corpus::all_systems();
    println!(
        "corpus: {} hardware spec sheets, {} system prose documents",
        hardware.len(),
        systems.len()
    );

    for (prompt, label) in [
        (Prompt::Naive, "naive prompt (\"capture all requirements and nuances\")"),
        (Prompt::Adversarial, "adversarial prompt (\"requirements without which it cannot work\")"),
    ] {
        section(label);
        let report = run_extraction_study(&hardware, &systems, prompt, 2024);
        println!("  hardware field recall:          {:>5.1}%", report.hardware_recall * 100.0);
        println!("  solves (capabilities) recall:   {:>5.1}%", report.solves_recall * 100.0);
        println!("  plain requirement recall:       {:>5.1}%", report.plain_requirement_recall * 100.0);
        println!("  conditional requirement recall: {:>5.1}%", report.conditional_recall * 100.0);
        println!("  resource quantity recall:       {:>5.1}%", report.quantity_recall * 100.0);
        println!("  extraction faithfulness:        {:>5.1}%", report.precision * 100.0);

        // §4.1's qualitative findings must hold.
        assert_eq!(report.hardware_recall, 1.0, "spec sheets must extract perfectly");
        assert!(report.plain_requirement_recall > report.conditional_recall);
        assert!(report.quantity_recall < report.solves_recall);
    }

    section("Naive vs adversarial on conditionals (the paper's prompt lesson)");
    let naive = run_extraction_study(&[], &systems, Prompt::Naive, 2024);
    let adversarial = run_extraction_study(&[], &systems, Prompt::Adversarial, 2024);
    println!(
        "  conditional recall: naive {:.1}%  →  adversarial {:.1}%",
        naive.conditional_recall * 100.0,
        adversarial.conditional_recall * 100.0
    );
    assert!(adversarial.conditional_recall > naive.conditional_recall);
    println!("\nPASS: §4.1's shape reproduced (hardware 100%; nuances lossy; adversarial prompt helps).");
}
