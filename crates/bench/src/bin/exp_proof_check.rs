//! Proof-check sweep: every UNSAT verdict must carry a DRAT proof the
//! independent checker accepts.
//!
//! Solves a seeded corpus of ≥500 unsatisfiable instances (pigeonhole,
//! odd-cycle 2-coloring, random 3-SAT far above the threshold, and
//! assumption-core variants) with proof logging on, replays every proof
//! through `netarch_sat::checker`, and exits nonzero on any rejection.
//! Run by `scripts/ci.sh` as the `proof-check` step.

use netarch_sat::{
    check_refutation, check_refutation_under_assumptions, Lit, Portfolio, PortfolioConfig,
    SolveResult, Solver, Var,
};
use netarch_rt::Rng;
use std::time::Instant;

/// Pigeonhole principle with `n` pigeons and `n-1` holes: UNSAT.
fn pigeonhole(n: usize) -> (usize, Vec<Vec<Lit>>) {
    let holes = n - 1;
    let num_vars = n * holes;
    let p = |pigeon: usize, hole: usize| Var::from_index(pigeon * holes + hole).positive();
    let mut clauses = Vec::new();
    for pigeon in 0..n {
        clauses.push((0..holes).map(|h| p(pigeon, h)).collect());
    }
    for hole in 0..holes {
        for i in 0..n {
            for j in (i + 1)..n {
                clauses.push(vec![!p(i, hole), !p(j, hole)]);
            }
        }
    }
    (num_vars, clauses)
}

/// 2-coloring of an odd cycle of length `n` (one boolean per node, all
/// adjacent nodes must differ): UNSAT for odd `n`.
fn odd_cycle(n: usize) -> (usize, Vec<Vec<Lit>>) {
    assert!(n % 2 == 1 && n >= 3);
    let v = |i: usize| Var::from_index(i % n);
    let mut clauses = Vec::new();
    for i in 0..n {
        clauses.push(vec![v(i).positive(), v(i + 1).positive()]);
        clauses.push(vec![v(i).negative(), v(i + 1).negative()]);
    }
    (n, clauses)
}

/// Random 3-SAT at clause/variable ratio 6.0 — far above the ~4.26
/// threshold, so virtually every instance is UNSAT.
fn random_3sat(num_vars: usize, ratio: f64, seed: u64) -> (usize, Vec<Vec<Lit>>) {
    let mut rng = Rng::seed_from_u64(seed);
    let num_clauses = (num_vars as f64 * ratio) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut clause: Vec<Lit> = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        clauses.push(clause);
    }
    (num_vars, clauses)
}

struct Tally {
    solved_unsat: usize,
    solved_sat: usize,
    accepted: usize,
    rejections: Vec<String>,
    proof_steps: usize,
}

impl Tally {
    fn new() -> Tally {
        Tally { solved_unsat: 0, solved_sat: 0, accepted: 0, rejections: Vec::new(), proof_steps: 0 }
    }

    /// Solves with proof logging and checks the refutation on UNSAT.
    fn run(&mut self, label: &str, num_vars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) {
        let mut solver = Solver::new();
        solver.record_proof();
        solver.ensure_vars(num_vars);
        for clause in clauses {
            solver.add_clause(clause.iter().copied());
        }
        match solver.solve_with(assumptions) {
            SolveResult::Sat => self.solved_sat += 1,
            SolveResult::Unknown => panic!("{label}: unexpected Unknown without budgets"),
            SolveResult::Unsat => {
                self.solved_unsat += 1;
                let proof = solver.recorded_proof().expect("recording is on");
                self.proof_steps += proof.len();
                let verdict = if assumptions.is_empty() {
                    check_refutation(num_vars, clauses, proof)
                } else {
                    check_refutation_under_assumptions(
                        num_vars,
                        clauses,
                        proof,
                        solver.unsat_core(),
                    )
                };
                match verdict {
                    Ok(()) => self.accepted += 1,
                    Err(e) => self.rejections.push(format!("{label}: {e}")),
                }
            }
        }
    }
}

fn main() {
    netarch_bench::section("Proof-check sweep: DRAT certificates for every UNSAT verdict");
    let start = Instant::now();
    let mut tally = Tally::new();

    // Structured families, guaranteed UNSAT.
    for n in 4..=8 {
        let (num_vars, clauses) = pigeonhole(n);
        tally.run(&format!("pigeonhole/{n}"), num_vars, &clauses, &[]);
    }
    for n in (3..=99).step_by(2) {
        let (num_vars, clauses) = odd_cycle(n);
        tally.run(&format!("odd-cycle/{n}"), num_vars, &clauses, &[]);
    }

    // Random 3-SAT far above the threshold, several sizes × many seeds.
    for &(num_vars, count) in &[(20usize, 160u64), (30, 120), (40, 80), (50, 40)] {
        for i in 0..count {
            let seed = 0xC0FF_EE00 + (num_vars as u64) * 1000 + i;
            let (nv, clauses) = random_3sat(num_vars, 6.0, seed);
            tally.run(&format!("random3sat/{num_vars}/{seed:#x}"), nv, &clauses, &[]);
        }
    }

    // Assumption-core variants: satisfiable base formulas driven UNSAT by
    // the assumptions, so the reported core must also certify.
    for i in 0..60u64 {
        let seed = 0xAB5E_0000 + i;
        let (num_vars, mut clauses) = random_3sat(24, 2.0, seed);
        // Chain a0 → a1 → … → a5 plus ¬a5; assuming a0 forces UNSAT.
        let base = num_vars;
        for j in 0..5 {
            clauses.push(vec![
                Var::from_index(base + j).negative(),
                Var::from_index(base + j + 1).positive(),
            ]);
        }
        clauses.push(vec![Var::from_index(base + 5).negative()]);
        let assumptions = [Var::from_index(base).positive()];
        tally.run(&format!("assumed/{seed:#x}"), num_vars + 6, &clauses, &assumptions);
    }

    // Portfolio proof mode: the winning worker of a 2-thread racing
    // portfolio must return a proof the checker accepts too (sharing is
    // disabled under proof mode so the proof stays self-contained).
    let mut portfolio_accepted = 0usize;
    let mut portfolio_unsat = 0usize;
    {
        let mut check_portfolio = |label: &str, num_vars: usize, clauses: &[Vec<Lit>]| {
            let portfolio = Portfolio::new(PortfolioConfig {
                num_threads: 2,
                verify_proofs: true,
                seed: 3,
                ..Default::default()
            });
            let out = portfolio.solve(num_vars, clauses, &[]);
            if out.result != SolveResult::Unsat {
                return;
            }
            portfolio_unsat += 1;
            let proof = out.proof.as_ref().expect("proof mode attaches a proof to UNSAT");
            match check_refutation(num_vars, clauses, proof) {
                Ok(()) => portfolio_accepted += 1,
                Err(e) => tally.rejections.push(format!("portfolio/{label}: {e}")),
            }
        };
        for n in 4..=7 {
            let (num_vars, clauses) = pigeonhole(n);
            check_portfolio(&format!("pigeonhole/{n}"), num_vars, &clauses);
        }
        for n in (3..=41).step_by(2) {
            let (num_vars, clauses) = odd_cycle(n);
            check_portfolio(&format!("odd-cycle/{n}"), num_vars, &clauses);
        }
        for i in 0..20u64 {
            let (nv, clauses) = random_3sat(20, 6.0, 0x9027_0000 + i);
            check_portfolio(&format!("random3sat/{i}"), nv, &clauses);
        }
    }

    let elapsed = start.elapsed();
    println!("  instances solved UNSAT      {:>8}", tally.solved_unsat);
    println!("  instances solved SAT        {:>8}", tally.solved_sat);
    println!("  proofs accepted             {:>8}", tally.accepted);
    println!("  proofs rejected             {:>8}", tally.rejections.len());
    println!("  total proof steps           {:>8}", tally.proof_steps);
    println!("  portfolio UNSAT verdicts    {portfolio_unsat:>8}");
    println!("  portfolio proofs accepted   {portfolio_accepted:>8}");
    println!("  wall time                   {elapsed:>8.2?}");

    let summary = netarch_rt::jobj! {
        "experiment": "proof_check",
        "unsat": tally.solved_unsat,
        "sat": tally.solved_sat,
        "accepted": tally.accepted,
        "rejected": tally.rejections.len(),
        "proof_steps": tally.proof_steps,
        "portfolio_unsat": portfolio_unsat,
        "portfolio_accepted": portfolio_accepted,
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));

    for r in &tally.rejections {
        eprintln!("REJECTED: {r}");
    }
    if !tally.rejections.is_empty() {
        eprintln!("FAIL: {} DRAT proof(s) rejected by the checker", tally.rejections.len());
        std::process::exit(1);
    }
    assert!(
        tally.solved_unsat >= 500,
        "corpus must exercise at least 500 UNSAT verdicts, got {}",
        tally.solved_unsat
    );
    assert_eq!(tally.accepted, tally.solved_unsat);
    assert!(
        portfolio_unsat >= 40,
        "portfolio section must exercise at least 40 UNSAT verdicts, got {portfolio_unsat}"
    );
    assert_eq!(portfolio_accepted, portfolio_unsat);
    println!(
        "\nPASS: all {} UNSAT verdicts carry checker-accepted DRAT proofs.",
        tally.solved_unsat
    );
}
