//! Experiment E11 — §2.2's PFC deadlock vignette: the engine catches the
//! RoCE + flooding combination with a minimal named diagnosis, and
//! synthesizes the flooding-free alternative.

use netarch_bench::section;
use netarch_core::explain::{render_diagnosis, suggest_relaxations};
use netarch_core::prelude::*;

fn rdma_scenario() -> Scenario {
    Scenario::new(netarch_corpus::full_catalog())
        .with_workload(
            Workload::builder("storage")
                .property("dc_flows")
                .peak_cores(400)
                .num_flows(8_000)
                .needs("transport")
                .needs("address_resolution")
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("MLX_CX6_100")],
            switch_candidates: vec![HardwareId::new("SPECTRUM2_SN3700")],
            server_candidates: vec![HardwareId::new("EPYC_MILAN_64C")],
            num_servers: 32,
            num_switches: 4,
        })
        .with_role(Category::Transport, RoleRule::Required)
        .with_role(Category::Custom("l2-address-resolution".into()), RoleRule::Required)
        .with_pin(Pin::Require(SystemId::new("ROCEV2")))
}

fn main() {
    section("The incident configuration: RoCEv2 + ARP flooding");
    let incident = rdma_scenario().with_pin(Pin::Require(SystemId::new("ARP_FLOODING")));
    let mut engine = Engine::new(incident).expect("compiles");
    let outcome = engine.check().expect("runs");
    let diagnosis = outcome.diagnosis().expect("must be rejected");
    println!("{}", render_diagnosis(diagnosis));
    let labels: Vec<&str> = diagnosis.conflicts.iter().map(|c| c.label.as_str()).collect();
    assert!(
        labels.contains(&"req:ROCEV2:pfc-forbids-flooding"),
        "the expert rule must be named: {labels:?}"
    );
    // Minimality: the diagnosis is small (the two pins + the rule), not
    // the whole scenario.
    assert!(diagnosis.conflicts.len() <= 3, "diagnosis not minimal: {labels:?}");
    // Relaxation ranking puts the pins (decisions) before the physics.
    let relaxations = suggest_relaxations(diagnosis);
    assert!(relaxations[0].rule.label.starts_with("pin:"));

    section("Without the flooding pin: the engine synthesizes the fix");
    let mut engine = Engine::new(rdma_scenario()).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Feasible(design) => {
            let l2 = design
                .selection(&Category::Custom("l2-address-resolution".into()))
                .expect("role filled");
            println!("{design}");
            println!("  L2 address resolution: {l2}");
            assert_eq!(l2.as_str(), "ARP_PROXY", "flooding-free option expected");
        }
        Outcome::Infeasible(d) => {
            println!("{}", render_diagnosis(&d));
            panic!("fix synthesis failed");
        }
    }
    println!("\nPASS: the PFC/flooding interaction is caught and repaired (§2.2, §3.4).");
}
