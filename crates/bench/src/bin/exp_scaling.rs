//! Experiment E9/E10 — §3.1's linearity claim and §3.4's tractability
//! claim: specification size and compiled encoding size vs corpus size,
//! and solve time across scenario scales.

use netarch_bench::{section, subset_catalog};
use netarch_core::compile::compile;
use netarch_core::prelude::*;

fn scenario_over(catalog: Catalog) -> Scenario {
    // Populate inventory from whatever the subset contains.
    let nics: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Nic)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let switches: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Switch)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let servers: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Server)
        .iter()
        .take(3)
        .map(|h| h.id.clone())
        .collect();
    Scenario::new(catalog)
        .with_workload(
            Workload::builder("app")
                .property("dc_flows")
                .peak_cores(500)
                .num_flows(20_000)
                .needs("host_networking")
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_inventory(Inventory {
            nic_candidates: nics,
            switch_candidates: switches,
            server_candidates: servers,
            num_servers: 32,
            num_switches: 4,
        })
}

fn main() {
    section("E9: specification & encoding growth vs number of systems (§3.1)");
    println!(
        "  {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "systems", "spec-units", "rules", "clauses", "vars", "units/sys"
    );
    let mut rows = Vec::new();
    for n in [10usize, 20, 30, 40, 50, 60, 70] {
        let catalog = subset_catalog(n, 60);
        let spec_units = catalog.spec_size();
        let actual = catalog.num_systems();
        let scenario = scenario_over(catalog);
        let compiled = compile(&scenario).expect("compiles");
        println!(
            "  {:>8} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
            actual,
            spec_units,
            compiled.stats.rules,
            compiled.stats.clauses,
            compiled.stats.solver_vars,
            spec_units as f64 / actual.max(1) as f64,
        );
        rows.push((actual, spec_units, compiled.stats.clauses));
    }
    // Linearity check: marginal spec units per added system must be
    // bounded (no super-linear blowup).
    let (n0, s0, _) = rows[0];
    let (n1, s1, _) = *rows.last().unwrap();
    let marginal = (s1 - s0) as f64 / (n1 - n0) as f64;
    println!("\n  marginal spec units per system: {marginal:.1} (bounded ⇒ linear growth)");
    assert!(marginal < 20.0);
    // Clause growth should also stay near-linear in systems (the quadratic
    // pairwise terms are bounded by category sizes).
    let clause_ratio = rows.last().unwrap().2 as f64 / rows[0].2.max(1) as f64;
    let system_ratio = n1 as f64 / n0 as f64;
    println!(
        "  clause growth {clause_ratio:.1}× for {system_ratio:.1}× systems (≤ quadratic budget: {:.1}×)",
        system_ratio * system_ratio
    );
    assert!(clause_ratio < system_ratio * system_ratio);

    section("E10: solve time vs scenario scale (§3.4 tractability)");
    println!(
        "  {:>8} {:>10} {:>14} {:>14} {:>9} {:>7} {:>7}",
        "systems", "hardware", "check-time", "optimize-time", "subsumed", "elim", "vivify"
    );
    for (n_sys, n_hw) in [(20usize, 20usize), (40, 60), (70, 110)] {
        let catalog = subset_catalog(n_sys, n_hw);
        let mut scenario = scenario_over(catalog);
        scenario
            .objectives
            .push(Objective::MaximizeDimension(Dimension::Latency));
        scenario.objectives.push(Objective::MinimizeCost);
        let mut engine = Engine::new(scenario).expect("compiles");
        let t0 = std::time::Instant::now();
        let _ = engine.check().expect("runs");
        let check = t0.elapsed();
        let t1 = std::time::Instant::now();
        let _ = engine.optimize().expect("runs");
        let optimize = t1.elapsed();
        let stats = engine.stats();
        println!(
            "  {n_sys:>8} {n_hw:>10} {check:>14.2?} {optimize:>14.2?} {:>9} {:>7} {:>7}",
            stats.subsumed, stats.eliminated_vars, stats.vivified
        );
    }
    // Machine-readable summary for downstream tooling; the smoke test
    // parses this line back to validate the interchange format.
    let summary = netarch_rt::jobj! {
        "experiment": "scaling",
        "marginal_spec_units_per_system": marginal,
        "clause_growth": clause_ratio,
        "rows": rows
            .iter()
            .map(|&(systems, spec_units, clauses)| netarch_rt::jobj! {
                "systems": systems,
                "spec_units": spec_units,
                "clauses": clauses,
            })
            .collect::<Vec<_>>(),
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    netarch_bench::persist_result("scaling", &summary);

    println!("\nPASS: spec growth linear; solving stays interactive at full corpus scale.");
}
