//! Experiment E2 — regenerate **Listing 1**: the auto-generated hardware
//! encoding for the Cisco Catalyst 9500-40X, extracted from a (synthetic)
//! vendor spec sheet at 100% field accuracy.

use netarch_bench::section;
use netarch_core::prelude::*;
use netarch_extract::{render_spec_sheet, Extractor, Fact, Prompt};

fn main() {
    let catalog = netarch_corpus::full_catalog();
    let catalyst = catalog
        .hardware(&HardwareId::new("CISCO_CATALYST_9500_40X"))
        .expect("Listing 1's switch is in the corpus");

    section("Source document (synthetic vendor spec sheet)");
    let doc = render_spec_sheet(catalyst);
    for s in &doc.sentences {
        println!("  {}", s.text);
    }

    section("Extracted encoding (Listing 1 shape)");
    let mut extractor = Extractor::new(1);
    let result = extractor.extract(&doc, Prompt::Naive);
    println!("{{");
    println!("  \"Model Name\": \"{}\",", catalyst.model_name);
    for e in &result.extracted {
        match &e.fact {
            Fact::HardwareNumeric { key, value } => match key.as_str() {
                "port_bandwidth_gbps" => println!("  \"Port Bandwidth\": \"{value} Gbps\","),
                "max_power_w" => println!("  \"Max Power Consumption\": \"{value}W\","),
                "ports" => println!("  \"Ports\": \"{value}x 10 Gigabit Ethernet SFP+\","),
                "memory_mb" => println!("  \"Memory\": \"{} GB\",", value / 1024.0),
                "mac_table_entries" => {
                    println!("  \"MAC Address Table Size\": \"{value} entries\",")
                }
                other => println!("  \"{other}\": \"{value}\","),
            },
            Fact::HardwareFeature { feature } => {
                println!("  \"{feature} supported?\": \"Yes\",")
            }
            other => println!("  // unexpected fact: {other:?}"),
        }
    }
    // Fields the spec sheet lacks mirror the listing's N/A entries.
    println!("  \"P4 Supported?\": \"No\",");
    println!("  \"# P4 Stages\": \"N/A\"");
    println!("}}");

    section("Accuracy (paper §4.1: 100% on structured spec sheets)");
    println!("  fields in sheet:    {}", doc.sentences.len());
    println!("  fields extracted:   {}", result.extracted.len());
    println!("  recall:             {:.0}%", result.recall() * 100.0);
    println!("  faithful fraction:  {:.0}%", result.precision() * 100.0);
    assert_eq!(result.recall(), 1.0);
    assert_eq!(result.precision(), 1.0);
    println!("\nPASS: Listing 1 regenerated at 100% field accuracy.");
}
