//! Experiment E3 — **Listing 2**: the SIMON encoding, shown 1:1 against
//! the paper's pseudo-code, then exercised: the engine must honor both
//! the constraints (NIC timestamps, cores ∝ flows) and the two ordering
//! declarations.

use netarch_bench::{context_scenario, section, verdict_symbol};
use netarch_core::prelude::*;

fn main() {
    let catalog = netarch_corpus::full_catalog();
    let simon = catalog.system(&SystemId::new("SIMON")).expect("in corpus");

    section("Paper Listing 2 ↔ corpus encoding");
    println!("paper: SIMON = System(");
    println!("paper:   solves = [capture_delays, detect_queue_length],");
    println!("paper:   constraints = And(NICs.have(\"NIC_TIMESTAMPS\"),");
    println!("paper:                     computes.cores_needed(CPU_FACTOR*num_flows)))");
    println!();
    println!("ours:  solves = {:?}", simon.solves.iter().map(|c| c.as_str()).collect::<Vec<_>>());
    for r in &simon.requires {
        println!("ours:  requires [{}] {}", r.label, r.condition);
    }
    for d in &simon.resources {
        println!("ours:  consumes {} = {:?}", d.resource, d.amount);
    }

    section("Ordering declarations (Listing 2 lines 7-8)");
    let ctx = context_scenario(100.0);
    for (dim, expect) in [
        (Dimension::MonitoringQuality, "SIMON ≻ PINGMESH"),
        (Dimension::DeploymentEase, "SIMON ≺ PINGMESH"),
    ] {
        let got = ctx.catalog.order().compare(
            &SystemId::new("SIMON"),
            &SystemId::new("PINGMESH"),
            &dim,
            &ctx,
        );
        println!("  [{dim}] SIMON {} PINGMESH   (paper: {expect})", verdict_symbol(got));
    }

    section("Engine honors the constraints");
    // With only a non-timestamping NIC on offer, requiring SIMON fails.
    let base = Scenario::new(netarch_corpus::full_catalog())
        .with_workload(
            Workload::builder("app")
                .needs("detect_queue_length")
                .num_flows(50_000)
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_pin(Pin::Require(SystemId::new("SIMON")));
    let mut no_ts = base.clone();
    no_ts.inventory = Inventory {
        nic_candidates: vec![HardwareId::new("INTEL_X710")],
        server_candidates: vec![HardwareId::new("EPYC_MILAN_64C")],
        num_servers: 8,
        ..Inventory::default()
    };
    let mut engine = Engine::new(no_ts).expect("compiles");
    let outcome = engine.check().expect("runs");
    match outcome {
        Outcome::Infeasible(d) => {
            println!("  without timestamping NICs: INFEASIBLE, diagnosis names:");
            for c in &d.conflicts {
                println!("    • {}", c.label);
            }
            assert!(d.conflicts.iter().any(|c| c.label.contains("simon-needs-nic-timestamps")));
        }
        Outcome::Feasible(_) => panic!("engine must reject SIMON without NIC timestamps"),
    }

    // §2.3 adds that Simon wants SmartNICs (encoded as a SmartNIC-capacity
    // demand), so the viable candidate must be a timestamping SmartNIC.
    let mut with_ts = base;
    with_ts.inventory = Inventory {
        nic_candidates: vec![HardwareId::new("INTEL_X710"), HardwareId::new("BLUEFIELD2")],
        server_candidates: vec![HardwareId::new("EPYC_MILAN_64C")],
        num_servers: 8,
        ..Inventory::default()
    };
    let mut engine = Engine::new(with_ts).expect("compiles");
    match engine.check().expect("runs") {
        Outcome::Feasible(design) => {
            let nic = design.hardware_for(HardwareKind::Nic).unwrap();
            println!("  with a timestamping SmartNIC candidate: FEASIBLE, NIC = {nic}");
            assert_eq!(nic.as_str(), "BLUEFIELD2");
            let cores = &design.resources[&Resource::Cores];
            println!(
                "  cores consumed (CPU_FACTOR × 50 000 flows included): {} / {:?}",
                cores.used, cores.capacity
            );
            // SIMON's share: ceil(0.0005 × 50 000) = 25 cores.
            assert!(cores.used >= 25);
        }
        Outcome::Infeasible(_) => panic!("engine must accept SIMON with a timestamping NIC"),
    }
    println!("\nPASS: Listing 2 encoding expressed and enforced.");
}
