//! Incremental-session experiment: one persistent engine answering a
//! 50-query mixed workload (check / optimize / enumerate / rule-subset)
//! versus the old recompile-per-query discipline — a fresh `Engine::new`
//! for every single query, which is exactly what the deleted
//! `poisoned`/`refresh` machinery cost in the worst case.
//!
//! Asserts three things:
//! * both modes give the same answer to every query,
//! * the session performs zero recompiles,
//! * the session is at least 3× faster end-to-end.

use netarch_bench::{section, subset_catalog};
use netarch_core::prelude::*;
use std::time::Instant;

/// One query of the mixed workload.
#[derive(Clone, Copy, Debug)]
enum Query {
    Check,
    Optimize,
    Enumerate(usize),
    Subset(usize),
}

/// A comparable answer digest. Enumeration compares the class sets only
/// when both sides are exhaustive — a truncated enumeration legitimately
/// returns *different* representative classes depending on solver state,
/// so at the limit only the count is comparable.
#[derive(Debug, PartialEq, Eq)]
enum Answer {
    Feasibility(bool),
    Penalties(Option<Vec<u64>>),
    Classes { count: usize, exhaustive: Option<Vec<Vec<String>>> },
    SubsetSat(bool),
}

const SUBSET_POOLS: [&[&str]; 3] = [
    &["role:monitoring"],
    &["role:monitoring", "role:transport", "role:load-balancer"],
    &[],
];

/// The full-corpus scenario used by the scaling experiments, plus the
/// cost objective so `optimize` has something to minimize. Compilation
/// (encoding + preference order + cost totalizer) is the dominant cost
/// here, which is the regime the incremental session is built for.
fn scenario() -> Scenario {
    let catalog = subset_catalog(70, 60);
    let nics: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Nic)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let switches: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Switch)
        .iter()
        .take(4)
        .map(|h| h.id.clone())
        .collect();
    let servers: Vec<HardwareId> = catalog
        .hardware_of_kind(HardwareKind::Server)
        .iter()
        .take(3)
        .map(|h| h.id.clone())
        .collect();
    Scenario::new(catalog)
        .with_workload(
            Workload::builder("app")
                .property("dc_flows")
                .peak_cores(500)
                .num_flows(20_000)
                .needs("host_networking")
                .build(),
        )
        .with_param("link_speed_gbps", 100.0)
        .with_objective(Objective::MinimizeCost)
        .with_inventory(Inventory {
            nic_candidates: nics,
            switch_candidates: switches,
            server_candidates: servers,
            num_servers: 32,
            num_switches: 4,
        })
}

fn workload() -> Vec<Query> {
    (0..50)
        .map(|i| match i % 4 {
            0 => Query::Check,
            1 => Query::Optimize,
            2 => Query::Enumerate(4 + i % 3),
            _ => Query::Subset(i % SUBSET_POOLS.len()),
        })
        .collect()
}

fn run_query(engine: &mut Engine, query: Query) -> Answer {
    match query {
        Query::Check => {
            Answer::Feasibility(engine.check().expect("runs").design().is_some())
        }
        Query::Optimize => Answer::Penalties(
            engine
                .optimize()
                .expect("runs")
                .ok()
                .map(|r| r.levels.iter().map(|l| l.penalty).collect()),
        ),
        Query::Enumerate(limit) => {
            let designs = engine.enumerate_designs(limit, false).expect("runs");
            let count = designs.len();
            let exhaustive = (count < limit).then(|| {
                let mut classes: Vec<Vec<String>> = designs
                    .iter()
                    .map(|d| d.systems().iter().map(|s| s.to_string()).collect())
                    .collect();
                classes.sort();
                classes
            });
            Answer::Classes { count, exhaustive }
        }
        Query::Subset(pool) => Answer::SubsetSat(
            engine.check_rule_subset(SUBSET_POOLS[pool]).expect("runs"),
        ),
    }
}

fn main() {
    section("Incremental session vs recompile-per-query (50 mixed queries)");
    let scenario = scenario();
    let queries = workload();

    let t0 = Instant::now();
    let mut session = Engine::new(scenario.clone()).expect("compiles");
    let compile_time = t0.elapsed();
    let session_answers: Vec<Answer> =
        queries.iter().map(|&q| run_query(&mut session, q)).collect();
    let session_time = t0.elapsed();
    let stats = session.stats();

    let t1 = Instant::now();
    let fresh_answers: Vec<Answer> = queries
        .iter()
        .map(|&q| {
            let mut engine = Engine::new(scenario.clone()).expect("compiles");
            run_query(&mut engine, q)
        })
        .collect();
    let fresh_time = t1.elapsed();

    let mut disagreements = 0usize;
    for (i, (a, b)) in session_answers.iter().zip(&fresh_answers).enumerate() {
        if a != b {
            disagreements += 1;
            eprintln!("DISAGREE on query {i} ({:?}):\n  session {a:?}\n  fresh   {b:?}", queries[i]);
        }
    }

    let speedup = fresh_time.as_secs_f64() / session_time.as_secs_f64().max(1e-9);
    println!("  queries                     {:>10}", queries.len());
    println!("  one-time compile            {compile_time:>10.2?}");
    println!("  session wall time           {session_time:>10.2?}");
    println!("  recompile-per-query time    {fresh_time:>10.2?}");
    println!("  speedup                     {speedup:>9.1}x");
    println!("  session recompiles          {:>10}", stats.recompiles);
    println!("  session solver invocations  {:>10}", stats.session_solves);
    println!("  activation gates retired    {:>10}", stats.retired_activations);

    let summary = netarch_rt::jobj! {
        "experiment": "incremental",
        "queries": queries.len(),
        "compile_ms": compile_time.as_millis() as u64,
        "session_ms": session_time.as_millis() as u64,
        "fresh_ms": fresh_time.as_millis() as u64,
        "speedup": speedup,
        "recompiles": stats.recompiles,
        "session_solves": stats.session_solves,
        "retired_activations": stats.retired_activations,
        "disagreements": disagreements,
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    netarch_bench::persist_result("incremental", &summary);

    assert_eq!(disagreements, 0, "session answers diverged from fresh engines");
    assert_eq!(stats.recompiles, 0, "the session recompiled");
    assert!(
        speedup >= 3.0,
        "incremental session only {speedup:.1}x faster; expected ≥ 3x"
    );
    println!("\nPASS: one solver session serves the whole query stream.");
}
