//! Combinatorial sweep harness: the engine enumerating its own test
//! universe, then testing itself against it.
//!
//! A six-group `sweep` block (optional systems, conflicting systems,
//! NIC alternatives, fleet sizes, a numeric parameter) spans a 540-point
//! universe; a `forbid` constraint prunes the all-roles-empty slice down
//! to 510 admissible variants. The full run demands three things:
//!
//! 1. **Determinism** — the variant stream (not just its digest) is
//!    bit-identical when re-enumerated under `NETARCH_THREADS=1`, `2`,
//!    and `4`. The enumerator runs on a private sequential solver and
//!    canonically sorts before the seeded shuffle, so this is a contract,
//!    not luck.
//! 2. **Scale** — at least 500 admissible variants survive pruning.
//! 3. **Agreement** — every variant runs its differential tape: a warm
//!    session answers every query kind across budget-bounded query
//!    orderings, and every answer matches a fresh-engine oracle.
//!
//! `--smoke` truncates the stream to 24 variants and checks correctness
//! only; the ≥500-variant floor applies to full runs.

use netarch_sweep::{enumerate_sweep, run_differential, DiffOptions, SweepSpec};
use std::time::Instant;

/// The sweep document, in the same `.narch` surface syntax users write.
/// Parsing it here (rather than building the spec in Rust) keeps the
/// bench honest about the full text → lower → compile → enumerate path.
const DOC: &str = r#"
system "SIMON" {
  category = monitoring
  solves   = [detect_queue_length]
  requires "needs-nic-timestamps" { condition = nics.have(NIC_TIMESTAMPS) }
  cost_usd = 300
}

system "SONATA" {
  category  = monitoring
  solves    = [detect_queue_length]
  conflicts = [SIMON]
  cost_usd  = 900
}

system "LB_A" {
  category = load_balancer
  solves   = [load_balancing]
  cost_usd = 200
}

system "LB_B" {
  category = load_balancer
  solves   = [load_balancing]
  cost_usd = 350
}

system "FW" {
  category = firewall
  solves   = [packet_filtering]
  cost_usd = 150
}

hardware "NIC_TS" {
  kind     = nic
  features = [NIC_TIMESTAMPS]
  cost_usd = 600
}

hardware "NIC_PLAIN" {
  kind     = nic
  cost_usd = 100
}

workload "app" {
  needs = [detect_queue_length]
}

scenario {
  params { link_speed_gbps = 100 }
  roles { monitoring = required }
  objectives = [minimize_cost]
  inventory {
    nics        = [NIC_TS, NIC_PLAIN]
    num_servers = 2
  }
}

sweep "grid" {
  seed  = 42
  limit = 600
  choose "mon"   { systems = [SIMON, SONATA] optional = true }
  choose "lb"    { systems = [LB_A, LB_B] optional = true }
  choose "fw"    { systems = [FW] optional = true }
  choose "nic"   { nics = [NIC_TS, NIC_PLAIN] }
  choose "fleet" { num_servers = [1, 2, 4, 8, 16] }
  choose "link"  { param = link_speed_gbps values = [10, 40, 100] }
  forbid = [all(picked(mon, none), picked(lb, none), picked(fw, none))]
}
"#;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    netarch_bench::section(if smoke {
        "Combinatorial sweep (smoke, 24 variants): determinism + differential agreement"
    } else {
        "Combinatorial sweep: 500+ variants, thread-independent stream, differential agreement"
    });

    let doc = netarch_dsl::load_str(DOC).expect("bench sweep document lowers");
    let scenario = doc.require_scenario().expect("has scenario").clone();
    let mut spec: SweepSpec = doc.sweeps.into_iter().next().expect("has sweep");
    if smoke {
        spec.limit = 24;
    }

    // --- determinism across NETARCH_THREADS --------------------------------
    // The enumerator must not see thread configuration at all; prove it by
    // re-running the whole text→stream path under each setting.
    let saved_threads = std::env::var("NETARCH_THREADS").ok();
    let mut streams = Vec::new();
    for threads in ["1", "2", "4"] {
        std::env::set_var("NETARCH_THREADS", threads);
        let start = Instant::now();
        let stream = enumerate_sweep(&spec, &scenario.catalog).expect("enumerates");
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "  threads={threads}: {} variants of {} admissible in {:.1}ms, digest {}",
            stream.variants.len(),
            stream.admissible,
            elapsed * 1e3,
            stream.digest_hex(),
        );
        streams.push(stream);
    }
    match saved_threads {
        Some(v) => std::env::set_var("NETARCH_THREADS", v),
        None => std::env::remove_var("NETARCH_THREADS"),
    }
    let stream = streams.pop().expect("three streams");
    let digests_match = streams.iter().all(|s| *s == stream);
    let variants = stream.variants.len();
    let admissible = stream.admissible;

    // --- differential fan-out ----------------------------------------------
    let opts = DiffOptions::default();
    let start = Instant::now();
    let report = run_differential(&spec, &scenario, &stream, &opts).expect("engines compile");
    let diff_elapsed = start.elapsed().as_secs_f64();
    let disagreements = usize::from(report.disagreement.is_some());
    if let Some(d) = &report.disagreement {
        eprintln!("DISAGREEMENT: {d}");
    }

    println!("\n  admissible variants         {admissible:>8}");
    println!("  stream length               {variants:>8}");
    println!("  thread-identical streams    {:>8}", if digests_match { "yes" } else { "NO" });
    println!("  query orderings walked      {:>8}", report.orderings);
    println!("  session queries checked     {:>8}", report.queries);
    println!("  warm sessions built         {:>8}", report.sessions);
    println!("  differential wall time      {:>7.2}s", diff_elapsed);
    println!("  disagreements               {disagreements:>8}");

    let summary = netarch_rt::jobj! {
        "experiment": "sweep",
        "smoke": smoke,
        "variants": variants,
        "admissible": admissible,
        "digest": stream.digest_hex(),
        "threads_identical": digests_match,
        "orderings": report.orderings,
        "queries": report.queries,
        "disagreements": disagreements,
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    netarch_bench::persist_result_gated("sweep", &summary, smoke);

    if !digests_match {
        eprintln!("FAIL: variant stream differs across NETARCH_THREADS settings");
        std::process::exit(1);
    }
    if disagreements > 0 {
        eprintln!("FAIL: differential disagreement");
        std::process::exit(1);
    }
    if smoke {
        println!("\nPASS (smoke): thread-identical stream, zero disagreements.");
        return;
    }
    if admissible < 500 {
        eprintln!("FAIL: only {admissible} admissible variants (need ≥ 500)");
        std::process::exit(1);
    }
    println!(
        "\nPASS: {admissible} admissible variants, thread-identical stream, zero disagreements."
    );
}
