//! Experiment E16 (extension) — §3.1's measurement advice: "the engine
//! can help architects make a more informed decision regarding whether
//! they should perform a measurement: it is only needed if the answer
//! changes the final design. For instance, if the architect has a sharp
//! deployment deadline, then using a research system like Shenango is
//! infeasible irrespective of its performance characteristics."
//!
//! The unknown comparison used throughout is the paper's own example:
//! Shenango vs Demikernel on isolation (the deliberate gap in Figure 1).

use netarch_bench::section;
use netarch_core::prelude::*;
use netarch_corpus::{full_catalog, vocab::params, vocab::props};

fn scenario(production_only: bool) -> Scenario {
    let mut w = Workload::builder("latency_service")
        .property(props::DC_FLOWS)
        .property(props::APPS_MODIFIABLE)
        .needs("host_networking")
        .peak_cores(200)
        .num_flows(10_000);
    if production_only {
        w = w.property(props::PRODUCTION_ONLY);
    }
    Scenario::new(full_catalog())
        .with_workload(w.build())
        .with_param(params::LINK_SPEED_GBPS, 100.0)
        .with_inventory(Inventory {
            nic_candidates: vec![HardwareId::new("MLX_CX5_100")],
            server_candidates: vec![HardwareId::new("EPYC_MILAN_64C")],
            num_servers: 16,
            ..Inventory::default()
        })
        .with_role(Category::NetworkStack, RoleRule::Required)
        // Only kernel-bypass latencies are acceptable.
        .with_pin(Pin::Forbid(SystemId::new("LINUX")))
        .with_pin(Pin::Forbid(SystemId::new("SNAP_TCP")))
        .with_pin(Pin::Forbid(SystemId::new("SNAP_PONY")))
        .with_pin(Pin::Forbid(SystemId::new("ONLOAD")))
        .with_objective(Objective::MaximizeDimension(Dimension::Isolation))
        .with_objective(Objective::MinimizeCost)
}

fn main() {
    let a = SystemId::new("SHENANGO");
    let b = SystemId::new("DEMIKERNEL");

    section("Is measuring Shenango vs Demikernel isolation worth it? (research OK)");
    let engine = Engine::new(scenario(false)).expect("compiles");
    let advice = engine
        .advise_measurement(&a, &b, &Dimension::Isolation)
        .expect("runs");
    println!("  verdict: {}", advice.reason);
    if let (Some(da), Some(db)) = (&advice.design_if_first_better, &advice.design_if_second_better)
    {
        println!(
            "  if Shenango better  → stack = {:?}",
            da.selection(&Category::NetworkStack)
        );
        println!(
            "  if Demikernel better → stack = {:?}",
            db.selection(&Category::NetworkStack)
        );
    }
    assert!(
        advice.worthwhile,
        "with isolation as the top objective the verdict must matter"
    );

    section("Same question under a sharp deadline (production systems only)");
    let engine = Engine::new(scenario(true)).expect("compiles");
    let advice = engine
        .advise_measurement(&a, &b, &Dimension::Isolation)
        .expect("runs");
    println!("  verdict: {}", advice.reason);
    assert!(
        !advice.worthwhile,
        "research prototypes are undeployable under the deadline — \
         the measurement cannot change the design (§3.1)"
    );

    section("Already-ordered pairs are never worth re-measuring");
    let engine = Engine::new(scenario(false)).expect("compiles");
    let advice = engine
        .advise_measurement(
            &SystemId::new("LINUX"),
            &SystemId::new("SHENANGO"),
            &Dimension::Isolation,
        )
        .expect("runs");
    println!("  verdict: {}", advice.reason);
    assert!(!advice.worthwhile);

    println!("\nPASS: §3.1's measurement-triage workflow implemented end-to-end.");
}
