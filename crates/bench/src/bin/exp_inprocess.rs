//! Inprocessing ablation: restart-boundary simplification on vs off,
//! measured on incremental query sessions.
//!
//! Each corpus entry is a padded formula — a random 3-SAT core plus
//! redundant superset copies of every clause and single-use bridge
//! variables — serving a stream of assumption queries, the same shape the
//! `netarch-core` session engine produces. The configuration with
//! inprocessing off pays for the dead weight on every query; the default
//! configuration strips it at the first restart boundaries (subsumption
//! deletes the supersets, bounded variable elimination resolves the bridge
//! variables away) and answers the rest of the stream against the clean
//! clause set. Core variables are frozen up front, as the freeze contract
//! requires for variables that later appear in assumptions.
//!
//! Per-query verdicts of the two configurations must agree exactly; any
//! disagreement exits nonzero. The figure of merit is the median
//! whole-session wall-clock speedup, which averages out single-query
//! trajectory noise.
//!
//! `--smoke` runs a reduced corpus with a conservative ≥1.0× median bound
//! (vs ≥1.3× for the full run) so CI can gate on it without flaking.

use netarch_rt::Rng;
use netarch_sat::{Lit, SolveResult, Solver, SolverConfig, Stats, Var};
use std::time::Instant;

/// Random 3-SAT at the given ratio (both phases allowed).
fn random_3sat(num_vars: usize, ratio: f64, rng: &mut Rng) -> Vec<Vec<Lit>> {
    let num_clauses = (num_vars as f64 * ratio) as usize;
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut clause: Vec<Lit> = Vec::with_capacity(3);
        while clause.len() < 3 {
            let v = rng.gen_range(0..num_vars);
            if clause.iter().all(|l| l.var().index() != v) {
                clause.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
            }
        }
        clauses.push(clause);
    }
    clauses
}

/// Pads a formula with `copies` redundant supersets of every clause, each
/// widened by `extra` fresh-phase literals over the core variable range,
/// plus one single-use bridge variable per core clause (`C ∨ b` and
/// `C ∨ ¬b`). The padded formula is logically equivalent to the core;
/// subsumption deletes every superset and variable elimination resolves
/// every bridge away, while the off configuration drags both through the
/// whole session.
fn pad(
    num_vars: usize,
    clauses: &[Vec<Lit>],
    copies: usize,
    extra: usize,
    rng: &mut Rng,
) -> (usize, Vec<Vec<Lit>>) {
    let mut padded: Vec<Vec<Lit>> = clauses.to_vec();
    for clause in clauses {
        for _ in 0..copies {
            let mut superset = clause.clone();
            while superset.len() < clause.len() + extra {
                let v = rng.gen_range(0..num_vars);
                if superset.iter().all(|l| l.var().index() != v) {
                    superset.push(Lit::new(Var::from_index(v), rng.gen_bool(0.5)));
                }
            }
            padded.push(superset);
        }
    }
    let mut next = num_vars;
    for clause in clauses.iter() {
        let b = Var::from_index(next).positive();
        next += 1;
        let mut with = clause.clone();
        with.push(b);
        let mut without = clause.clone();
        without.push(!b);
        padded.push(with);
        padded.push(without);
    }
    (next, padded)
}

struct Session {
    label: String,
    core_vars: usize,
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    queries: usize,
}

fn corpus(smoke: bool) -> Vec<Session> {
    let mut rng = Rng::seed_from_u64(0x1A9C_0CE5);
    let shapes: &[(usize, f64, usize)] = if smoke {
        &[(110, 3.9, 150), (120, 3.9, 150), (130, 3.9, 150)]
    } else {
        &[
            (140, 3.9, 250),
            (150, 3.9, 250),
            (160, 3.9, 200),
            (170, 3.9, 200),
            (140, 4.0, 250),
            (150, 4.0, 250),
            (160, 3.8, 200),
            (170, 3.8, 200),
        ]
    };
    shapes
        .iter()
        .map(|&(vars, ratio, queries)| {
            let core = random_3sat(vars, ratio, &mut rng);
            let (num_vars, clauses) = pad(vars, &core, 10, 4, &mut rng);
            Session {
                label: format!("session/{vars}r{ratio}"),
                core_vars: vars,
                num_vars,
                clauses,
                queries,
            }
        })
        .collect()
}

/// Runs the session's query stream and returns the wall time, the final
/// solver statistics, and the verdict sequence. The query stream is seeded
/// per session, so both configurations see identical assumptions.
fn run_session(session: &Session, config: SolverConfig) -> (f64, Stats, Vec<SolveResult>) {
    let mut s = Solver::with_config(config);
    s.ensure_vars(session.num_vars);
    for v in 0..session.core_vars {
        s.freeze_var(Var::from_index(v));
    }
    for c in &session.clauses {
        s.add_clause(c.iter().copied());
    }
    let mut rng = Rng::seed_from_u64(0x9E1D_0000);
    let mut verdicts = Vec::with_capacity(session.queries);
    let start = Instant::now();
    for _ in 0..session.queries {
        let n = rng.gen_range(2..=4usize);
        let mut lits: Vec<Lit> = (0..n)
            .map(|_| {
                Lit::new(Var::from_index(rng.gen_range(0..session.core_vars)), rng.gen_bool(0.5))
            })
            .collect();
        lits.sort_by_key(|l| l.var().index());
        lits.dedup_by_key(|l| l.var().index());
        verdicts.push(s.solve_with(&lits));
    }
    (start.elapsed().as_secs_f64(), *s.stats(), verdicts)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bound = if smoke { 1.0 } else { 1.3 };
    netarch_bench::section(if smoke {
        "Inprocessing ablation (smoke corpus): default config vs inprocessing off"
    } else {
        "Inprocessing ablation: default config vs inprocessing off"
    });

    let off_config = SolverConfig { inprocessing_enabled: false, ..SolverConfig::default() };
    let sessions = corpus(smoke);
    let mut speedups = Vec::with_capacity(sessions.len());
    let mut disagreements = 0usize;
    let (mut subsumed, mut strengthened, mut eliminated, mut vivified) = (0u64, 0u64, 0u64, 0u64);
    println!(
        "  {:<18} {:>8} {:>10} {:>10} {:>8} {:>8} {:>6} {:>7}",
        "session", "queries", "t-off", "t-on", "speedup", "subsume", "elim", "rounds"
    );
    for session in &sessions {
        let (t_off, _, v_off) = run_session(session, off_config.clone());
        let (t_on, stats, v_on) = run_session(session, SolverConfig::default());
        let mismatches = v_off.iter().zip(&v_on).filter(|(a, b)| a != b).count();
        if mismatches > 0 {
            disagreements += mismatches;
            eprintln!("DISAGREEMENT on {}: {mismatches} of {} queries", session.label, v_off.len());
        }
        subsumed += stats.subsumed;
        strengthened += stats.strengthened;
        eliminated += stats.eliminated_vars;
        vivified += stats.vivified;
        let speedup = t_off / t_on.max(1e-9);
        speedups.push(speedup);
        println!(
            "  {:<18} {:>8} {:>9.1}ms {:>9.1}ms {:>7.2}x {:>8} {:>6} {:>7}",
            session.label,
            session.queries,
            t_off * 1e3,
            t_on * 1e3,
            speedup,
            stats.subsumed,
            stats.eliminated_vars,
            stats.inprocessings,
        );
    }

    let med = median(&mut speedups);
    println!("\n  sessions                    {:>8}", sessions.len());
    println!("  verdict disagreements       {:>8}", disagreements);
    println!("  clauses subsumed            {:>8}", subsumed);
    println!("  clauses strengthened        {:>8}", strengthened);
    println!("  variables eliminated        {:>8}", eliminated);
    println!("  clauses vivified            {:>8}", vivified);
    println!("  median session speedup      {med:>7.2}x (bound {bound:.1}x)");

    let summary = netarch_rt::jobj! {
        "experiment": "inprocess",
        "smoke": smoke,
        "sessions": sessions.len(),
        "disagreements": disagreements,
        "subsumed": subsumed,
        "strengthened": strengthened,
        "eliminated_vars": eliminated,
        "vivified": vivified,
        "median_speedup": med,
        "bound": bound,
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    // Smoke runs (CI) use few sessions; they persist only into an explicit
    // NETARCH_BENCH_DIR scratch dir, never over the committed trajectory
    // file.
    netarch_bench::persist_result_gated("inprocess", &summary, smoke);

    if disagreements > 0 {
        eprintln!("FAIL: {disagreements} per-query verdict disagreement(s) between configurations");
        std::process::exit(1);
    }
    if subsumed == 0 || eliminated == 0 {
        eprintln!("FAIL: the corpus did not exercise subsumption and variable elimination");
        std::process::exit(1);
    }
    if med < bound {
        eprintln!("FAIL: median session speedup {med:.2}x below the {bound:.1}x bound");
        std::process::exit(1);
    }
    println!("\nPASS: zero disagreements, median session speedup {med:.2}x ≥ {bound:.1}x.");
}
