//! Experiment E15 (extension) — capacity planning: "how many servers do
//! I need?" The server count becomes an order-encoded solver variable and
//! the engine minimizes it subject to every rule-of-thumb, resource
//! demand, and workload peak. The natural follow-on to §5.1's
//! inventory-centric queries.

use netarch_bench::section;
use netarch_core::baseline::validate_design;
use netarch_core::prelude::*;
use netarch_corpus::case_study;

fn main() {
    section("Minimal fleet for the §2.3 case study");
    let scenario = case_study::scenario();
    let mut engine = Engine::new(scenario.clone()).expect("compiles");
    let plan = engine.plan_capacity(512).expect("runs").expect("feasible");
    println!("  servers needed: {}", plan.servers_needed);
    println!("{}", plan.design);
    // The provisioned scenario actually uses 96 servers; the minimum is
    // what the workload + selected systems really need.
    assert!(plan.servers_needed <= 96);
    let mut sized = scenario.clone();
    sized.inventory.num_servers = plan.servers_needed;
    assert!(validate_design(&sized, &plan.design).is_empty());
    // Minimality: one server fewer must not fit.
    if plan.servers_needed > 1 {
        let mut smaller = scenario.clone();
        smaller.inventory.num_servers = plan.servers_needed - 1;
        let mut engine = Engine::new(smaller).expect("compiles");
        let outcome = engine.check().expect("runs");
        assert!(
            outcome.diagnosis().is_some(),
            "fleet of {} should be too small",
            plan.servers_needed - 1
        );
        println!(
            "  minimality check: {} servers → infeasible ✓",
            plan.servers_needed - 1
        );
    }

    section("Fleet size vs workload growth");
    println!("  {:>14} {:>10}", "extra flows", "servers");
    for scale in [0u64, 50_000, 150_000, 400_000] {
        let mut s = case_study::scenario();
        if scale > 0 {
            s = s.with_workload(
                Workload::builder(format!("growth_{scale}"))
                    .property("dc_flows")
                    .peak_cores(scale / 100)
                    .num_flows(scale)
                    .build(),
            );
        }
        let mut engine = Engine::new(s).expect("compiles");
        match engine.plan_capacity(4096).expect("runs") {
            Ok(plan) => println!("  {:>14} {:>10}", scale, plan.servers_needed),
            Err(_) => println!("  {:>14} {:>10}", scale, "infeasible"),
        }
    }
    println!(
        "\n  The fleet size tracks workload peaks plus the *selected systems'*\n\
         demands (Simon-class monitors scale with flow count, §2.3)."
    );
    println!("\nPASS: capacity planning answers fleet-sizing queries exactly.");
}
