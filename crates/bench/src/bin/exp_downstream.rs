//! Experiment E13 (extension) — the downstream cost of extraction errors:
//! rebuild the catalog from what the simulated LLM recovered (§4.1's
//! lossy system encodings), let the engine design over the lossy
//! knowledge, and judge its designs against ground truth. Quantifies the
//! paper's "human supervision is necessary" conclusion end-to-end.

use netarch_bench::section;
use netarch_core::baseline::validate_design;
use netarch_core::prelude::*;
use netarch_corpus::case_study;
use netarch_extract::downstream::{degrade_systems, DownstreamReport};
use netarch_extract::Prompt;

/// Builds the case-study scenario over a catalog whose *system* encodings
/// were re-extracted (hardware extraction is perfect, §4.1, so hardware
/// and orderings carry over unchanged).
fn lossy_scenario(prompt: Prompt, seed: u64) -> Scenario {
    let truth = netarch_corpus::full_catalog();
    let lossy_systems = degrade_systems(&netarch_corpus::all_systems(), prompt, seed);
    let lossy_ids: std::collections::BTreeSet<SystemId> =
        lossy_systems.iter().map(|s| s.id.clone()).collect();
    let mut catalog = Catalog::new();
    for mut spec in lossy_systems {
        // Keep referential integrity: a dropped capability elsewhere can't
        // dangle, but conditions referencing systems always resolve since
        // ids are preserved.
        spec.conflicts.retain(|c| lossy_ids.contains(c));
        catalog.add_system(spec).expect("ids preserved");
    }
    for h in truth.hardware_specs() {
        catalog.add_hardware(h.clone()).expect("unique");
    }
    for e in truth.order().edges() {
        catalog.add_ordering(e.clone()).expect("endpoints preserved");
    }
    let mut scenario = case_study::scenario();
    scenario.catalog = catalog;
    scenario
}

fn run(prompt: Prompt, rounds: u64) -> DownstreamReport {
    let truth_scenario = case_study::scenario();
    let mut report = DownstreamReport::default();
    for seed in 0..rounds {
        report.rounds += 1;
        let scenario = lossy_scenario(prompt, seed);
        let mut engine = Engine::new(scenario).expect("compiles");
        match engine.check().expect("runs") {
            Outcome::Feasible(design) => {
                let violations = validate_design(&truth_scenario, &design);
                if violations.is_empty() {
                    report.safe_designs += 1;
                } else {
                    report.unsafe_designs += 1;
                    report.total_violations += violations.len();
                }
            }
            Outcome::Infeasible(_) => report.infeasible += 1,
        }
    }
    report
}

fn main() {
    const ROUNDS: u64 = 30;
    section("Designing over LLM-extracted encodings (case study, ground-truth judged)");
    println!(
        "  {:14} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "prompt", "rounds", "safe", "UNSAFE", "infeasible", "violations/run"
    );
    let mut unsafe_rates = Vec::new();
    for (prompt, label) in [(Prompt::Naive, "naive"), (Prompt::Adversarial, "adversarial")] {
        let r = run(prompt, ROUNDS);
        println!(
            "  {:14} {:>8} {:>10} {:>12} {:>12} {:>14.2}",
            label,
            r.rounds,
            r.safe_designs,
            r.unsafe_designs,
            r.infeasible,
            r.total_violations as f64 / r.rounds as f64,
        );
        unsafe_rates.push((label, r.unsafe_rate()));
    }
    println!();
    let naive = unsafe_rates[0].1;
    let adversarial = unsafe_rates[1].1;
    println!(
        "  unsafe-design rate: naive {:.0}% vs adversarial {:.0}%",
        naive * 100.0,
        adversarial * 100.0
    );
    assert!(
        naive > 0.3,
        "lossy encodings must regularly yield ground-truth-violating designs"
    );
    assert!(
        adversarial <= naive,
        "better conditional recall must not make deployments less safe"
    );
    println!(
        "\nPASS: extraction losses translate into unsafe deployments — the\n\
         end-to-end form of §4.1's 'human supervision is necessary'."
    );
}
