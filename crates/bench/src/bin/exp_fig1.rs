//! Experiment E1 — regenerate **Figure 1**: the partial ordering of
//! network stacks over throughput / isolation / application-modification,
//! with its conditional edges and deliberate absences.
//!
//! Prints the full pairwise comparison matrix at 10 and 100 Gbps and
//! verifies the paper-stated edges.

use netarch_bench::{context_scenario, section, verdict_symbol};
use netarch_core::ordering::Comparison;
use netarch_core::prelude::*;

const FIG1_STACKS: [&str; 7] = [
    "ZYGOS", "LINUX", "SNAP_TCP", "SNAP_PONY", "NETCHANNEL", "SHENANGO", "DEMIKERNEL",
];

fn matrix(scenario: &Scenario, dim: &Dimension) {
    print!("{:12}", "");
    for b in FIG1_STACKS {
        print!("{b:>12}");
    }
    println!();
    for a in FIG1_STACKS {
        print!("{a:12}");
        for b in FIG1_STACKS {
            if a == b {
                print!("{:>12}", "—");
                continue;
            }
            let c = scenario.catalog.order().compare(
                &SystemId::new(a),
                &SystemId::new(b),
                dim,
                scenario,
            );
            print!("{:>12}", verdict_symbol(c));
        }
        println!();
    }
}

fn main() {
    for speed in [10.0, 100.0] {
        let scenario = context_scenario(speed);
        for dim in [
            Dimension::Throughput,
            Dimension::Isolation,
            Dimension::AppCompatibility,
        ] {
            section(&format!("Figure 1 [{dim}] at {speed} Gbps"));
            matrix(&scenario, &dim);
        }
    }

    section("Paper-stated edge checks");
    let slow = context_scenario(10.0);
    let fast = context_scenario(100.0);
    let checks: Vec<(&str, &str, &str, Dimension, &Scenario, Comparison)> = vec![
        ("NetChannel ≈ Linux below 40G", "NETCHANNEL", "LINUX", Dimension::Throughput, &slow, Comparison::Equal),
        ("NetChannel ≻ Linux at/above 40G", "NETCHANNEL", "LINUX", Dimension::Throughput, &fast, Comparison::Better),
        ("Pony ≻ TCP engine (throughput)", "SNAP_PONY", "SNAP_TCP", Dimension::Throughput, &fast, Comparison::Better),
        ("TCP engine ≻ Pony (app-compat)", "SNAP_TCP", "SNAP_PONY", Dimension::AppCompatibility, &fast, Comparison::Better),
        ("Linux ≻ Shenango (isolation)", "LINUX", "SHENANGO", Dimension::Isolation, &fast, Comparison::Better),
        ("Shenango ⋈ Demikernel (isolation — deliberate gap)", "SHENANGO", "DEMIKERNEL", Dimension::Isolation, &fast, Comparison::Incomparable),
    ];
    let mut pass = 0;
    for (label, a, b, dim, scenario, expected) in &checks {
        let got = scenario.catalog.order().compare(
            &SystemId::new(*a),
            &SystemId::new(*b),
            dim,
            *scenario,
        );
        let ok = got == *expected;
        pass += usize::from(ok);
        println!("  [{}] {label}: got {got:?}", if ok { "PASS" } else { "FAIL" });
    }
    println!("\n{pass}/{} paper-stated edges reproduced", checks.len());
    assert_eq!(pass, checks.len(), "Figure 1 reproduction incomplete");
}
