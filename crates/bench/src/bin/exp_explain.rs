//! Experiment E14 (extension) — the paper's §6 future-work features,
//! implemented: disambiguation ("identify a minimal-effort ordering for
//! the architect to provide to make the solution unique") and proof
//! modularity (update one system's encoding without touching the rest).

use netarch_bench::section;
use netarch_core::disambiguate::render_plan;
use netarch_core::prelude::*;
use netarch_corpus::case_study;

fn main() {
    section("Disambiguation: from many compliant designs to one");
    // Under-specify: the case study without objectives has many designs.
    // Ancillary optional roles are closed off so the ambiguity lives in
    // the five §2.3 roles and the enumeration is exhaustive.
    // The architect has already settled congestion control and the
    // virtual switch; stack/monitoring/load-balancing remain open.
    let demo_scenario = || {
        let mut s = case_study::scenario();
        s.objectives.clear();
        s.with_role(Category::Transport, RoleRule::Forbidden)
            .with_role(Category::Firewall, RoleRule::Forbidden)
            .with_role(Category::Custom("l2-address-resolution".into()), RoleRule::Forbidden)
            .with_role(Category::Custom("memory-pooling".into()), RoleRule::Forbidden)
            .with_pin(Pin::Require(SystemId::new("SWIFT")))
            .with_pin(Pin::Require(SystemId::new("OVS")))
    };
    let mut engine = Engine::new(demo_scenario()).expect("compiles");
    let plan = engine.disambiguate(512).expect("runs");
    println!("{}", render_plan(&plan));
    assert!(plan.classes > 1, "the under-specified scenario must be ambiguous");
    assert!(
        !plan.questions.is_empty(),
        "a question plan must exist for an ambiguous scenario"
    );
    assert!(
        plan.questions.len() <= 6,
        "a handful of questions should suffice, got {}",
        plan.questions.len()
    );

    section("Answering the first question shrinks the space");
    let first = &plan.questions[0];
    let answer = first.options.iter().flatten().next().expect("a concrete option");
    println!("  architect answers: {} = {answer}", first.category);
    let narrowed = demo_scenario().with_pin(Pin::Require(answer.clone()));
    let mut engine = Engine::new(narrowed).expect("compiles");
    let plan2 = engine.disambiguate(512).expect("runs");
    println!(
        "  classes: {} → {} after one answer",
        plan.classes, plan2.classes
    );
    assert!(plan2.classes < plan.classes);

    section("Proof modularity: SIMON v2 swaps in without touching the rest");
    // v2: suppose a new Simon release drops the SmartNIC dependency.
    let truth = netarch_corpus::full_catalog();
    let mut v2 = truth.system(&SystemId::new("SIMON")).unwrap().clone();
    v2.resources.retain(|d| d.resource != Resource::SmartNicCapacity);
    v2.notes = Some("v2: host-only collector, no SmartNIC offload".into());

    let mut scenario_v1 = case_study::scenario().with_pin(Pin::Require(SystemId::new("SIMON")));
    // Restrict NICs to timestamping-but-not-Smart models: v1 cannot run.
    scenario_v1.inventory.nic_candidates =
        vec![HardwareId::new("MLX_CX5_100"), HardwareId::new("INTEL_E810_100")];
    let mut engine = Engine::new(scenario_v1.clone()).expect("compiles");
    let v1_outcome = engine.check().expect("runs");
    println!(
        "  SIMON v1 (needs SmartNIC capacity) on plain timestamping NICs: {}",
        if v1_outcome.design().is_some() { "feasible" } else { "INFEASIBLE" }
    );
    assert!(v1_outcome.diagnosis().is_some());

    let mut scenario_v2 = scenario_v1;
    scenario_v2
        .catalog
        .apply(CatalogDelta::update_system(v2))
        .expect("modular update applies");
    let mut engine = Engine::new(scenario_v2).expect("compiles");
    let v2_outcome = engine.check().expect("runs");
    println!(
        "  SIMON v2 (encoding updated in isolation):                     {}",
        if v2_outcome.design().is_some() { "feasible" } else { "INFEASIBLE" }
    );
    assert!(v2_outcome.design().is_some());

    println!("\nPASS: §6's explainability and modularity extensions work end-to-end.");
}
