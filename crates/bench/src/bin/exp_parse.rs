//! Experiment: DSL frontend throughput.
//!
//! The paper's pitch is *lightweight* reasoning — the text frontend must
//! not become the bottleneck in the edit-check loop. This experiment
//! parses and lowers the full committed `.narch` corpus repeatedly and
//! reports tokenize/parse-only and parse+lower throughput, then verifies
//! the lowered catalog matches the Rust-built corpus scale.

use netarch_bench::section;
use netarch_corpus::narch::SOURCES;
use netarch_dsl::Loader;

fn main() {
    section("DSL frontend: parse + lower throughput over the committed corpus");

    let total_bytes: usize = SOURCES.iter().map(|(_, text)| text.len()).sum();
    let total_lines: usize =
        SOURCES.iter().map(|(_, text)| text.lines().count()).sum();
    println!(
        "  corpus: {} files, {} lines, {:.1} KiB\n",
        SOURCES.len(),
        total_lines,
        total_bytes as f64 / 1024.0
    );

    const ITERS: u32 = 20;

    // Parse only: text -> block tree, no lowering.
    let t0 = std::time::Instant::now();
    for _ in 0..ITERS {
        for (name, text) in SOURCES {
            let doc = netarch_rt::text::parse(text)
                .unwrap_or_else(|e| panic!("{name} must parse: {e}"));
            assert!(!doc.blocks.is_empty(), "{name} is empty");
        }
    }
    let parse_time = t0.elapsed() / ITERS;

    // Full load: parse + lower + two-phase catalog registration.
    let t1 = std::time::Instant::now();
    let mut doc = None;
    for _ in 0..ITERS {
        let mut loader = Loader::new();
        for (name, text) in SOURCES {
            loader.add_source(name, text).expect("corpus parses");
        }
        doc = Some(loader.finish().expect("corpus lowers"));
    }
    let load_time = t1.elapsed() / ITERS;
    let doc = doc.expect("at least one iteration ran");

    let mib = total_bytes as f64 / (1024.0 * 1024.0);
    let parse_ms = parse_time.as_secs_f64() * 1e3;
    let load_ms = load_time.as_secs_f64() * 1e3;
    let parse_mib_s = mib / parse_time.as_secs_f64();
    let load_mib_s = mib / load_time.as_secs_f64();
    println!("  parse only        {parse_ms:>8.2} ms   {parse_mib_s:>8.1} MiB/s");
    println!("  parse + lower     {load_ms:>8.2} ms   {load_mib_s:>8.1} MiB/s");

    // The lowered catalog must be the real corpus, not a fragment.
    let reference = netarch_corpus::full_catalog();
    assert_eq!(doc.catalog.num_systems(), reference.num_systems());
    assert_eq!(doc.catalog.num_hardware(), reference.num_hardware());
    assert!(doc.scenario.is_some(), "case study scenario present");

    let summary = netarch_rt::jobj! {
        "experiment": "parse",
        "files": SOURCES.len(),
        "lines": total_lines,
        "bytes": total_bytes,
        "parse_ms": parse_ms,
        "load_ms": load_ms,
        "parse_mib_per_s": parse_mib_s,
        "load_mib_per_s": load_mib_s,
        "systems": doc.catalog.num_systems(),
        "hardware": doc.catalog.num_hardware(),
    };
    println!("RESULT_JSON: {}", netarch_rt::json::to_string(&summary));
    netarch_bench::persist_result("parse", &summary);

    assert!(
        load_ms < 1000.0,
        "loading the corpus took {load_ms:.0} ms; the frontend is not lightweight"
    );
    println!("\nPASS: full corpus loads from text well under a second.");
}
