//! Experiment E8 — §5.2: the SAT engine vs the greedy whiteboard
//! architect vs the simulated LLM, judged by the independent semantic
//! validator on a suite of scenario variants.

use netarch_bench::section;
use netarch_core::baseline::{validate_design, GreedyArchitect, Reasoner, SimulatedLlm};
use netarch_core::ordering::Comparison;
use netarch_core::prelude::*;
use netarch_corpus::case_study;

fn scenario_suite() -> Vec<(String, Scenario)> {
    vec![
        ("case-study".into(), case_study::scenario()),
        (
            "case-study+batch".into(),
            case_study::scenario().with_workload(case_study::batch_workload()),
        ),
        (
            "simon-pinned".into(),
            case_study::scenario().with_pin(Pin::Require(SystemId::new("SIMON"))),
        ),
        (
            "sonata-pinned".into(),
            case_study::scenario().with_pin(Pin::Require(SystemId::new("SONATA"))),
        ),
        (
            "no-spray".into(),
            case_study::scenario().with_pin(Pin::Forbid(SystemId::new("PACKET_SPRAY"))),
        ),
        (
            "rdma".into(),
            case_study::scenario()
                .with_role(Category::Transport, RoleRule::Required)
                .with_pin(Pin::Require(SystemId::new("ROCEV2"))),
        ),
    ]
}

fn main() {
    section("Design-proposal accuracy (validator-judged)");
    let suite = scenario_suite();
    println!(
        "  {:18} {:>12} {:>12} {:>12}",
        "scenario", "sat-engine", "greedy", "simulated-llm"
    );
    let mut engine_ok = 0;
    let mut greedy_ok = 0;
    let mut llm_ok = 0;
    for (name, scenario) in &suite {
        let engine_verdict = {
            let mut engine = Engine::new(scenario.clone()).expect("compiles");
            match engine.check().expect("runs") {
                Outcome::Feasible(d) => {
                    let valid = validate_design(scenario, &d).is_empty();
                    assert!(valid, "engine produced an invalid design on {name}");
                    "valid"
                }
                // Infeasible-with-diagnosis counts as a correct answer.
                Outcome::Infeasible(_) => "infeasible✓",
            }
        };
        engine_ok += 1;
        let greedy_verdict = match GreedyArchitect::new().propose(scenario) {
            Some(d) if validate_design(scenario, &d).is_empty() => {
                greedy_ok += 1;
                "valid"
            }
            Some(_) => "INVALID",
            None => "gave up",
        };
        let llm_verdict = match SimulatedLlm::new(7).propose(scenario) {
            Some(d) if validate_design(scenario, &d).is_empty() => {
                llm_ok += 1;
                "valid"
            }
            Some(_) => "INVALID",
            None => "gave up",
        };
        println!("  {name:18} {engine_verdict:>12} {greedy_verdict:>12} {llm_verdict:>12}");
    }
    println!(
        "\n  correct: engine {}/{n}, greedy {}/{n}, llm {}/{n}",
        engine_ok,
        greedy_ok,
        llm_ok,
        n = suite.len()
    );
    assert_eq!(engine_ok, suite.len(), "the engine must never err");
    assert!(llm_ok < suite.len(), "the simulated LLM must trip on nuances (§5.2)");

    section("Comparison-question honesty");
    // Ground truth: SNAP_TCP vs DEMIKERNEL is incomparable on throughput
    // in the corpus (the §5.2 'Snap vs Demikernel in a given context'
    // nuance). The engine reports incomparability; the LLM never does.
    let ctx = netarch_bench::context_scenario(100.0);
    let a = SystemId::new("SNAP_TCP");
    let b = SystemId::new("DEMIKERNEL");
    let truth = ctx.catalog.order().compare(&a, &b, &Dimension::Throughput, &ctx);
    let mut llm = SimulatedLlm::new(3);
    let llm_answer = llm.compare(&ctx, &a, &b, &Dimension::Throughput);
    println!("  ground truth: SNAP_TCP vs DEMIKERNEL (throughput) = {truth:?}");
    println!("  simulated LLM says: {llm_answer:?} (confident, no basis)");
    assert_eq!(truth, Comparison::Incomparable);
    assert_ne!(llm_answer, Comparison::Incomparable);

    println!("\nPASS: §5.2's shape reproduced (engine exact; LLM wrong on nuances, fine on aggregates).");
}
