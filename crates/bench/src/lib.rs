//! # netarch-bench
//!
//! Experiment runners and Criterion benches regenerating every figure,
//! listing, and evaluation claim of the paper. Each `exp_*` binary prints
//! the paper-shaped rows recorded in EXPERIMENTS.md; the Criterion
//! benches measure the performance dimensions (solve time scaling,
//! encoding growth, solver ablations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netarch_core::ordering::Comparison;
use netarch_core::prelude::*;

/// Pretty-prints a section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Renders a comparison verdict as the symbols used in Figure 1.
pub fn verdict_symbol(c: Comparison) -> &'static str {
    match c {
        Comparison::Better => "≻",
        Comparison::Worse => "≺",
        Comparison::Equal => "≈",
        Comparison::Incomparable => "⋈",
    }
}

/// Builds a scenario over the full corpus with one descriptive workload
/// and a link-speed parameter — the standard context for ordering
/// experiments.
pub fn context_scenario(link_speed_gbps: f64) -> Scenario {
    Scenario::new(netarch_corpus::full_catalog())
        .with_workload(Workload::builder("ctx").property("dc_flows").build())
        .with_param("link_speed_gbps", link_speed_gbps)
}

/// A sub-catalog with the first `n_systems` systems (per category,
/// round-robin to keep all roles populated) and first `n_hardware`
/// hardware models — used by the scaling experiments.
pub fn subset_catalog(n_systems: usize, n_hardware: usize) -> Catalog {
    let full = netarch_corpus::full_catalog();
    let mut catalog = Catalog::new();
    // Round-robin over categories so every prefix spans the roles.
    let mut per_category: Vec<Vec<SystemSpec>> = Vec::new();
    let mut categories: Vec<Category> = full.systems().map(|s| s.category.clone()).collect();
    categories.sort();
    categories.dedup();
    for cat in &categories {
        per_category.push(full.systems_in(cat).into_iter().cloned().collect());
    }
    let mut taken: Vec<SystemSpec> = Vec::new();
    let mut index = 0;
    while taken.len() < n_systems {
        let mut advanced = false;
        for bucket in &per_category {
            if let Some(spec) = bucket.get(index) {
                if taken.len() < n_systems {
                    taken.push(spec.clone());
                    advanced = true;
                }
            }
        }
        if !advanced {
            break;
        }
        index += 1;
    }
    let ids: std::collections::BTreeSet<SystemId> = taken.iter().map(|s| s.id.clone()).collect();
    for mut spec in taken {
        spec.conflicts.retain(|c| ids.contains(c));
        spec.requires.retain(|r| {
            r.condition.referenced_systems().iter().all(|s| ids.contains(s))
        });
        catalog.add_system(spec).expect("unique");
    }
    for h in full.hardware_specs().take(n_hardware) {
        catalog.add_hardware(h.clone()).expect("unique");
    }
    for edge in full.order().edges() {
        if ids.contains(&edge.better) && ids.contains(&edge.worse) {
            catalog.add_ordering(edge.clone()).expect("endpoints exist");
        }
    }
    catalog
}

/// Persists an experiment's `RESULT_JSON` summary to `BENCH_<area>.json` so
/// the repo carries a perf trajectory across commits.
///
/// The file lands in `$NETARCH_BENCH_DIR` (default: the current directory,
/// i.e. the repo root when run via `cargo run`). Failure to write is a
/// warning, not an error — benches must still report on read-only checkouts.
pub fn persist_result(area: &str, summary: &netarch_rt::Json) {
    let dir = std::env::var("NETARCH_BENCH_DIR").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{area}.json"));
    let mut text = netarch_rt::json::to_string_pretty(summary);
    text.push('\n');
    if let Err(err) = std::fs::write(&path, text) {
        eprintln!("warning: could not persist {}: {err}", path.display());
    } else {
        println!("persisted summary to {}", path.display());
    }
}

/// Like [`persist_result`], but gated for smoke runs: a smoke summary is
/// persisted only when `NETARCH_BENCH_DIR` is explicitly set (CI pointing
/// the output at a scratch dir for shape checks and the regression gate).
/// A bare smoke run never overwrites the committed trajectory files,
/// whose numbers come from full runs only.
pub fn persist_result_gated(area: &str, summary: &netarch_rt::Json, smoke: bool) {
    if smoke && std::env::var_os("NETARCH_BENCH_DIR").is_none() {
        println!("smoke run without NETARCH_BENCH_DIR: not persisting BENCH_{area}.json");
        return;
    }
    persist_result(area, summary);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_catalog_is_valid_at_every_size() {
        for n in [5, 10, 20, 40, 70] {
            let c = subset_catalog(n, 30);
            assert!(c.validate().is_empty(), "n={n}");
            assert!(c.num_systems() <= n);
        }
    }

    #[test]
    fn subset_spans_categories() {
        let c = subset_catalog(16, 0);
        let cats: std::collections::BTreeSet<_> =
            c.systems().map(|s| s.category.clone()).collect();
        assert!(cats.len() >= 7, "round-robin must cover roles: {cats:?}");
    }

    #[test]
    fn context_scenario_compiles() {
        let s = context_scenario(100.0);
        assert!(netarch_core::compile::compile(&s).is_ok());
    }
}
