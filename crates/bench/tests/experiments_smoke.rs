//! Smoke tests: every experiment binary must run to completion (each
//! carries its own internal assertions and exits non-zero on failure).
//! The slowest experiments (downstream, extraction sweeps) are exercised
//! by their own unit/integration tests and excluded here to keep the
//! suite fast in debug builds.

use std::process::Command;

fn run(binary: &str) -> (bool, String) {
    let output = Command::new(binary)
        // Keep smoke runs from rewriting the committed BENCH_*.json
        // trajectory files; only deliberate top-level runs update those.
        .env("NETARCH_BENCH_DIR", std::env::temp_dir())
        .output()
        .expect("binary runs");
    (
        output.status.success(),
        format!(
            "{}\n{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        ),
    )
}

macro_rules! smoke {
    ($name:ident, $env:literal, $marker:literal) => {
        #[test]
        fn $name() {
            let (ok, output) = run(env!($env));
            assert!(ok, "experiment failed:\n{output}");
            assert!(output.contains($marker), "missing marker in:\n{output}");
        }
    };
}

smoke!(fig1, "CARGO_BIN_EXE_exp_fig1", "6/6 paper-stated edges reproduced");
smoke!(listing1, "CARGO_BIN_EXE_exp_listing1", "100% field accuracy");
smoke!(listing2, "CARGO_BIN_EXE_exp_listing2", "Listing 2 encoding expressed and enforced");
smoke!(pfc, "CARGO_BIN_EXE_exp_pfc", "caught and repaired");
smoke!(checking, "CARGO_BIN_EXE_exp_checking", "existence checks easy");
smoke!(case_study, "CARGO_BIN_EXE_exp_case_study", "case study reproduced end-to-end");
smoke!(queries, "CARGO_BIN_EXE_exp_queries", "all three §5.1 queries answered");
smoke!(reasoners, "CARGO_BIN_EXE_exp_reasoners", "engine exact");
smoke!(explain, "CARGO_BIN_EXE_exp_explain", "explainability and modularity extensions");
smoke!(capacity, "CARGO_BIN_EXE_exp_capacity", "fleet-sizing queries exactly");
smoke!(measure, "CARGO_BIN_EXE_exp_measure", "measurement-triage workflow");
smoke!(scaling, "CARGO_BIN_EXE_exp_scaling", "spec growth linear");
smoke!(
    incremental,
    "CARGO_BIN_EXE_exp_incremental",
    "one solver session serves the whole query stream"
);

/// The scaling experiment's machine-readable summary must be valid JSON
/// that parses back through the runtime's own parser.
#[test]
fn scaling_emits_parseable_json_summary() {
    let (ok, output) = run(env!("CARGO_BIN_EXE_exp_scaling"));
    assert!(ok, "experiment failed:\n{output}");
    let line = output
        .lines()
        .find_map(|l| l.strip_prefix("RESULT_JSON: "))
        .expect("RESULT_JSON line present");
    let value: netarch_rt::Json = netarch_rt::json::from_str(line).expect("valid JSON");
    assert_eq!(value["experiment"].as_str(), Some("scaling"));
    assert!(value["marginal_spec_units_per_system"].as_f64().unwrap() < 20.0);
    let rows = value["rows"].as_array().expect("rows array");
    assert_eq!(rows.len(), 7);
    for row in rows {
        assert!(row["systems"].is_u64());
        assert!(row["spec_units"].is_u64());
        assert!(row["clauses"].is_u64());
    }
}
